#!/usr/bin/env python3
"""Quickstart: the P2PLab workflow in one page.

1. Describe a network of virtual nodes (groups + access links).
2. Deploy it onto a few emulated physical nodes (folding).
3. Run real applications — here `ping` and a tiny BitTorrent swarm —
   inside the emulated conditions.

Run:  python examples/quickstart.py
"""

from repro.bittorrent import Swarm
from repro.core import Experiment, ScenarioSpec
from repro.net.ping import ping
from repro.topology.presets import bittorrent_profile, uniform_swarm
from repro.units import MB, fmt_duration


def main() -> None:
    # ------------------------------------------------------------------
    # 1+2. Ten DSL nodes (2 Mbps down / 128 kbps up / 30 ms) on two
    #      emulated physical machines. One ScenarioSpec holds the
    #      cluster knobs every stage below shares.
    # ------------------------------------------------------------------
    scenario = ScenarioSpec(seed=42, num_pnodes=2)
    exp = Experiment("quickstart", uniform_swarm(10), scenario=scenario)
    vnodes = exp.deploy()
    print(f"deployed {len(vnodes)} virtual nodes "
          f"on {len(exp.testbed.pnodes)} physical nodes")
    print(f"emulation state: {exp.emulation_stats()}")

    # ------------------------------------------------------------------
    # 3a. Measure what a node actually sees: RTT between two virtual
    #     nodes is dominated by their emulated access latency (2 x 30 ms
    #     per direction).
    # ------------------------------------------------------------------
    a, b = vnodes[0], vnodes[5]
    probe = ping(exp.sim, a.pnode.stack, a.address, b.address, count=3)
    exp.run()
    print(f"ping {a.address} -> {b.address}: {probe.result}")

    # ------------------------------------------------------------------
    # 3b. A real BitTorrent swarm under the same conditions — the
    #     scenario (seed, pnodes) carries over from the experiment, so
    #     nothing is specified twice.
    # ------------------------------------------------------------------
    swarm = Swarm.from_experiment(
        exp, leechers=8, seeders=2, file_size=2 * MB, stagger=2.0,
    )
    last = swarm.run(max_time=10000)
    times = swarm.completion_times()
    print(f"\nBitTorrent: 8 clients downloaded 2 MiB each")
    print(f"  first completion: {fmt_duration(times[0])}")
    print(f"  last completion:  {fmt_duration(last)}")
    print(f"  leecher uploads:  {sum(c.bytes_uploaded for c in swarm.leechers) / MB:.1f} MiB "
          "(reciprocation at work)")


if __name__ == "__main__":
    main()
