#!/usr/bin/env python3
"""Studying locality with node groups (the paper's Figure 7 model).

P2PLab's network model adds latency between *groups* of nodes (same
ISP / country / continent) precisely to allow studying "problems
involving locality of the nodes". This example does exactly that:

1. build the paper's Figure 7 topology (scaled down) and print the
   inter-group RTT matrix;
2. run one BitTorrent swarm whose peers are split across two continents
   (400 ms apart) and compare per-group download times.

Run:  python examples/locality_groups.py
"""

from repro.analysis.tables import Table
from repro.bittorrent.client import BitTorrentClient
from repro.bittorrent.metainfo import Torrent
from repro.bittorrent.tracker import TrackerServer
from repro.core import Experiment
from repro.net.ping import ping
from repro.topology.presets import figure7_topology
from repro.topology.spec import TopologySpec
from repro.units import MB, kbps, mbps, ms


def rtt_matrix() -> None:
    exp = Experiment("figure7", figure7_topology(scale=0.02), num_pnodes=8, seed=7)
    exp.deploy()
    groups = list(exp.spec.groups)
    table = Table(["from \\ to", *groups], title="inter-group RTT (ms), Figure 7 topology")
    for src_name in groups:
        row = [src_name]
        src = exp.vnodes(src_name)[0]
        for dst_name in groups:
            if dst_name == src_name:
                row.append("-")
                continue
            dst = exp.vnodes(dst_name)[0]
            probe = ping(exp.sim, src.pnode.stack, src.address, dst.address,
                         count=1, timeout=10.0)
            exp.run()
            row.append(f"{probe.result.avg * 1e3:.0f}")
        table.add_row(*row)
    print(table)
    print()


def two_continent_swarm() -> None:
    """Seeders sit in continent A; how much slower is continent B?

    The inter-continent latency is 1 s (the Figure 7 topology's worst
    edge). At that distance a request pipeline of 5 x 16 KiB blocks can
    no longer cover the bandwidth-delay product (2 s RTT x 250 KiB/s =
    500 KiB), so cross-continent transfers are latency-throttled — the
    locality effect the group model exists to study.
    """
    spec = TopologySpec("two-continents")
    spec.add_group("continent-a", "10.1.0.0/16", 11,
                   down_bw=mbps(2), up_bw=kbps(128), latency=ms(30))
    spec.add_group("continent-b", "10.2.0.0/16", 10,
                   down_bw=mbps(2), up_bw=kbps(128), latency=ms(30))
    spec.add_group("infra", "10.254.0.0/24", 1, latency=ms(1))
    spec.add_latency("continent-a", "continent-b", 1.0)

    exp = Experiment(
        "locality", spec, num_pnodes=4, seed=3,
        trace_categories=("bt.progress", "bt.complete"),
    )
    exp.deploy()

    tracker = TrackerServer(exp.vnodes("infra")[0])
    torrent = Torrent("locality.dat", total_size=4 * MB, tracker_addr=tracker.address)
    tracker.start()

    group_a = exp.vnodes("continent-a")
    group_b = exp.vnodes("continent-b")
    clients = []
    # One seeder, in continent A only.
    seeder = BitTorrentClient(group_a[0], torrent, seeder=True)
    exp.sim.schedule(0.05, seeder.start)
    for i, vnode in enumerate(group_a[1:] + group_b):
        client = BitTorrentClient(vnode, torrent)
        clients.append(client)
        exp.sim.schedule(0.1 + 2.0 * i, client.start)

    done = {"n": 0}

    def on_complete(_rec):
        done["n"] += 1
        if done["n"] == len(clients):
            exp.sim.stop()

    exp.trace.subscribe("bt.complete", on_complete)
    exp.run(until=50000)

    first_piece_at = {}
    for rec in exp.trace.select("bt.progress"):
        first_piece_at.setdefault(rec.get("node"), rec.time)

    table = Table(
        ["group", "clients", "mean download (s)", "mean wait for 1st piece (s)"],
        title="seeder in continent A; 1 s of latency to continent B",
    )
    for name, vnodes in (("continent-a", group_a[1:]), ("continent-b", group_b)):
        mine = [c for c in clients if c.vnode in vnodes]
        durations = [c.completed_at - c.started_at for c in mine if c.completed_at]
        waits = [
            first_piece_at[c.vnode.name] - c.started_at
            for c in mine
            if c.vnode.name in first_piece_at
        ]
        table.add_row(
            name,
            len(mine),
            sum(durations) / len(durations) if durations else float("nan"),
            sum(waits) / len(waits) if waits else float("nan"),
        )
    print(table)
    print("(identical bandwidths everywhere, so any difference is pure locality.")
    print(" The headline finding is BitTorrent's robustness: once continent B")
    print(" holds a few pieces, its peers trade locally and the 2 s RTT only")
    print(" taxes the warm-up — exactly the kind of question the paper built")
    print(" the group model to ask)")


def main() -> None:
    rtt_matrix()
    two_continent_swarm()


if __name__ == "__main__":
    main()
