#!/usr/bin/env python3
"""The folding-ratio validation (paper Figure 9), plus its failure mode.

The experiment that justifies P2PLab's whole approach: run the same
swarm with 1, then many virtual nodes per physical node, and check the
results do not change. Then break it on purpose (undersized physical
ports) to see what folding overhead looks like.

Run:  python examples/folding_study.py            (~1 min)
"""

from repro.experiments.ablations import (
    print_uplink_report,
    run_uplink_saturation_ablation,
)
from repro.experiments.fig9_folding import print_report, run_fig9
from repro.units import MB, gbps, mbps


def main() -> None:
    result = run_fig9(
        pnode_counts=(24, 8, 4, 2, 1),
        leechers=24,
        seeders=2,
        file_size=4 * MB,
        stagger=2.0,
    )
    print(print_report(result))
    print("\n-> up to 26 virtual nodes per physical node with no visible")
    print("   overhead: process-level virtualization is nearly free here.\n")

    ablation = run_uplink_saturation_ablation(
        port_bandwidths=(gbps(1), mbps(0.5), mbps(0.25), mbps(0.15))
    )
    print(print_uplink_report(ablation))
    print("\n-> fidelity is lost exactly when the physical network can no")
    print("   longer carry the folded traffic — the paper's 'first limiting")
    print("   factor was the network speed'.")


if __name__ == "__main__":
    main()
