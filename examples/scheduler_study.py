#!/usr/bin/env python3
"""The FreeBSD suitability study (paper Figures 1-3).

Before trusting an emulation platform that folds many virtual nodes
onto one machine, the paper checks the host OS: does the scheduler
scale to hundreds of concurrent processes, what happens when memory
runs out, and is CPU time shared fairly? This example reruns all three
checks on the scheduler models.

Run:  python examples/scheduler_study.py
"""

from repro.analysis.tables import render_ascii_series
from repro.experiments.fig1_cpu_scalability import print_report as report1, run_fig1
from repro.experiments.fig2_memory_pressure import print_report as report2, run_fig2
from repro.experiments.fig3_fairness import print_report as report3, run_fig3


def main() -> None:
    print(report1(run_fig1(counts=(1, 10, 100, 500, 1000))))
    print("\n-> no scheduler drowns under 1000 concurrent processes;")
    print("   the slight decrease is the amortized cold-start cost.\n")

    print(report2(run_fig2()))
    print("\n-> FreeBSD thrashes past the 2 GB knee; Linux 2.6 degrades")
    print("   gracefully. Experiments must keep working sets in RAM.\n")

    result3 = run_fig3(instances=100)
    print(report3(result3))
    print()
    print(render_ascii_series(result3.cdf("ULE scheduler"),
                              title="ULE completion-time CDF (the spread Figure 3 shows)"))
    print()
    print(render_ascii_series(result3.cdf("4BSD scheduler"),
                              title="4BSD completion-time CDF (steep = fair)"))
    print("\n-> P2PLab uses the 4BSD scheduler for its experiments.")


if __name__ == "__main__":
    main()
