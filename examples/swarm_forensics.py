#!/usr/bin/env python3
"""Forensics tooling on a live swarm: sniffer, monitor, statistics.

The paper's methodology relies on instrumenting everything — the
BitTorrent client got time-stamped logging, and "we monitored the
system load, the memory usage, and the disk I/O on every physical
node". This example shows the reproduction's equivalents:

* a :class:`~repro.net.sniffer.Sniffer` (tcpdump for the emulation) on
  the tracker's node, capturing the announce traffic;
* a :class:`~repro.core.monitor.ResourceMonitor` sampling every
  physical node, with the saturation check that validates a folded run;
* swarm statistics: share ratios, piece availability, and the
  seeder/leecher population evolution of the measurement literature.

Run:  python examples/swarm_forensics.py
"""

from repro.analysis.tables import Table, render_ascii_series
from repro.bittorrent import Swarm, SwarmConfig
from repro.bittorrent.stats import (
    connectivity,
    piece_availability,
    seeder_leecher_evolution,
    share_ratios,
)
from repro.core.monitor import ResourceMonitor
from repro.net.sniffer import Sniffer
from repro.units import MB, fmt_rate


def main() -> None:
    swarm = Swarm(SwarmConfig(
        leechers=16, seeders=2, file_size=4 * MB, stagger=2.0,
        num_pnodes=4, seed=11,
    ))

    # Attach instrumentation before launch.
    tracker_stack = swarm.tracker.vnode.pnode.stack
    sniffer = Sniffer(tracker_stack, port=swarm.tracker.port, max_packets=40)
    monitor = ResourceMonitor(swarm.testbed, period=30.0)
    monitor.start()

    last = swarm.run(max_time=20000)
    monitor.stop()
    sniffer.stop()

    print(f"swarm of 16 clients drained at t={last:.0f}s\n")

    print("--- tracker traffic (first announces), tcpdump-style ---")
    print(sniffer.dump(limit=8))
    print(f"... {len(sniffer)} packets captured on port {swarm.tracker.port}\n")

    print("--- physical-node resource peaks ---")
    table = Table(["pnode", "vnodes", "peak cpu", "peak tx", "peak rx"])
    for s in monitor.summarize():
        table.add_row(
            s.pnode, s.vnodes, f"{100 * s.peak_cpu:.2f}%",
            fmt_rate(s.peak_tx_rate), fmt_rate(s.peak_rx_rate),
        )
    print(table)
    saturated = monitor.saturated_nodes(swarm.testbed.switch.port_bandwidth)
    print(f"saturated nodes: {saturated or 'none'} -> folded results are trustworthy\n")

    print("--- swarm statistics ---")
    shares = share_ratios(swarm.leechers)
    print(f"share ratios: mean {shares.mean_ratio:.2f}, "
          f"min {shares.min_ratio:.2f}, max {shares.max_ratio:.2f}, "
          f"upload Gini {shares.gini:.2f}")
    availability = piece_availability(swarm.clients)
    print(f"piece availability: every piece now has {availability.min_copies} copies")
    degrees = connectivity(swarm.clients)
    print(f"peer graph: mean degree {degrees.mean_degree:.1f}, "
          f"isolated nodes {degrees.isolated}")

    print()
    evolution = seeder_leecher_evolution(swarm.sim.trace, total_clients=16)
    print(render_ascii_series(
        [(t, s) for t, s, _l in evolution],
        title="seeders over time (leechers = 16 - seeders)",
    ))


if __name__ == "__main__":
    main()
