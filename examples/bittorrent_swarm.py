#!/usr/bin/env python3
"""The paper's BitTorrent experiment (Figure 8), configurable.

Default parameters are the paper's: 160 clients + 4 seeders download a
16 MB file over 2 Mbps / 128 kbps / 30 ms DSL links, starting 10 s
apart, folded onto 16 emulated physical nodes. Expect ~10-20 s of wall
time at the defaults (4.7 M simulated events).

Run:  python examples/bittorrent_swarm.py [--leechers N] [--file-mb M]
      python examples/bittorrent_swarm.py --leechers 40 --file-mb 8   # quick
"""

import argparse

from repro.analysis.tables import render_ascii_series
from repro.bittorrent import Swarm, SwarmConfig
from repro.core.collector import completion_curve, progress_series
from repro.core.report import download_phases, summarize_swarm
from repro.units import MB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--leechers", type=int, default=160)
    parser.add_argument("--seeders", type=int, default=4)
    parser.add_argument("--file-mb", type=int, default=16)
    parser.add_argument("--stagger", type=float, default=10.0)
    parser.add_argument("--pnodes", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    swarm = Swarm(SwarmConfig(
        leechers=args.leechers,
        seeders=args.seeders,
        file_size=args.file_mb * MB,
        stagger=args.stagger,
        num_pnodes=args.pnodes,
        seed=args.seed,
    ))
    print(f"running: {args.leechers} clients, {args.file_mb} MiB, "
          f"stagger {args.stagger}s, {args.pnodes} pnodes ...")
    last = swarm.run(max_time=50000)
    trace = swarm.sim.trace

    summary = summarize_swarm(trace)
    for name, value in summary.as_rows():
        print(f"  {name:<26} {value:.1f}" if isinstance(value, float) else f"  {name:<26} {value}")

    first_client = swarm.leechers[0].vnode.name
    phases = download_phases(trace, first_client)
    print(f"\nfirst client's three phases (paper Figure 8 narrative):")
    print(f"  seeders-only start : first piece after {phases['first_piece'] - 0.1:.0f}s")
    print(f"  reciprocation      : to 50% in {phases['to_half']:.0f}s")
    print(f"  seeder-assisted end: to 100% in {phases['to_done']:.0f}s")

    print()
    print(render_ascii_series(
        progress_series(trace, first_client)[first_client],
        title=f"progress of {first_client} (% vs seconds)",
    ))
    print()
    print(render_ascii_series(
        completion_curve(trace),
        title="clients having completed (Figure 11 shape)",
    ))
    print(f"\nsimulated {swarm.sim.events_processed} events "
          f"to t={swarm.sim.now:.0f}s; last completion {last:.0f}s")


if __name__ == "__main__":
    main()
