"""Parallel, fault-tolerant execution of an :class:`ExecutionPlan`.

The engine fans plan points out over a pool of worker *processes*
(one process per point — each point is a whole emulation run, so
process startup is noise) with three robustness mechanisms:

* **wall-clock timeouts** — a worker past its per-point deadline is
  terminated and the point is retried;
* **crash/exception capture** — a worker that raises, or dies without
  reporting (segfault, ``os._exit``, OOM-kill), surfaces as a failed
  attempt instead of hanging the sweep;
* **bounded retry with exponential backoff** — each point gets up to
  ``max_attempts`` tries; a point that exhausts them is recorded as
  ``status="failed"`` and the sweep continues.

Completed points stream into an incremental JSONL checkpoint
(:mod:`repro.runtime.checkpoint`); re-running with ``resume=True``
skips them. Because every point's seed is fixed by the plan (not by
scheduling), results are byte-identical whatever ``parallel`` is —
including ``parallel=0``, which runs points inline in the calling
process (no isolation, but convenient under a debugger).

Worker start method defaults to ``fork`` where available (closures in
custom runners work, module import cost is not repaid per point) and
``spawn`` elsewhere; pass ``mp_context="spawn"`` explicitly to test
the pickling path. The engine instruments itself through
:mod:`repro.obs` metrics (``runtime.points_*``,
``runtime.workers_active``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.api import RunRequest, RunResult
from repro.obs.metrics import MetricsRegistry
from repro.runtime.aggregate import SweepOutcome
from repro.runtime.checkpoint import CheckpointWriter, load_checkpoint
from repro.runtime.plan import ExecutionPlan

#: Environment variable exposing the current attempt number (1-based)
#: to the code running a point — used by fault-injection tests.
ATTEMPT_ENV = "REPRO_RUNTIME_ATTEMPT"

Runner = Callable[[RunRequest], RunResult]


def registry_runner(request: RunRequest) -> RunResult:
    """Default runner: resolve the experiment registry entry and
    execute it through the unified RunRequest→RunResult protocol."""
    from repro.experiments import get_experiment

    return get_experiment(request.experiment_id).execute(request)


def _worker_main(conn: Connection, runner: Runner, request: RunRequest, attempt: int) -> None:
    """Child-process entry point: run one point, ship the result back."""
    os.environ[ATTEMPT_ENV] = str(attempt)
    try:
        result = runner(request)
        conn.send(("ok", result.as_dict()))
    except BaseException as exc:  # noqa: BLE001 — must never escape silently
        try:
            conn.send(
                (
                    "error",
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:  # conn already broken — parent sees a crash
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _command_worker_main(conn: Connection, handler_factory, init_payload) -> None:
    """Child entry point for a :class:`CommandWorker`.

    Builds the handler once, then serves ``(command, payload)`` requests
    until ``("close", None)`` — the long-lived dual of the one-shot
    :func:`_worker_main` (a partition worker holds live simulators
    across barrier windows, so it cannot be respawned per request).
    """
    try:
        handler = handler_factory(init_payload)
        conn.send(("ready", None))
        while True:
            command, payload = conn.recv()
            if command == "close":
                break
            conn.send(("ok", handler(command, payload)))
    except BaseException as exc:  # noqa: BLE001 — must never escape silently
        try:
            conn.send(
                (
                    "error",
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class WorkerCrashed(RuntimeError):
    """A :class:`CommandWorker` child died or reported an exception."""


class CommandWorker:
    """A persistent worker process serving ``(command, payload)`` calls.

    The sweep pool above spawns one process per point because each
    point is a whole run; the partition driver
    (:mod:`repro.sim.partition`) instead needs workers that *retain
    state* (their cells' simulators) between short synchronous calls.
    This wraps the same ``Pipe``/``Process``/crash-capture machinery in
    a request/response shape:

    ``handler_factory(init_payload)`` runs once in the child and
    returns a ``handler(command, payload)`` callable; :meth:`request`
    round-trips one command. A child that raises ships the traceback
    back and every subsequent call raises :class:`WorkerCrashed`.
    """

    def __init__(
        self,
        handler_factory,
        init_payload=None,
        mp_context: Optional[str] = None,
        name: str = "repro-worker",
    ) -> None:
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        ctx = multiprocessing.get_context(mp_context)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_command_worker_main,
            args=(child_conn, handler_factory, init_payload),
            daemon=True,
            name=name,
        )
        self._process.start()
        child_conn.close()
        self._dead = False
        self._recv()  # wait for ("ready", None) / surface build failures

    def _recv(self):
        try:
            kind, payload = self._conn.recv()
        except (EOFError, OSError):
            self._dead = True
            self._process.join(timeout=5.0)
            raise WorkerCrashed(
                f"{self._process.name} crashed "
                f"(exitcode {self._process.exitcode})"
            ) from None
        if kind == "error":
            self._dead = True
            raise WorkerCrashed(
                f"{self._process.name} failed: {payload['error']}\n"
                f"{payload['traceback']}"
            )
        return payload

    def send(self, command: str, payload=None) -> None:
        """Dispatch a command without waiting (pair with :meth:`receive`).

        The split form lets a coordinator fan a command out to every
        worker before collecting any reply — the barrier-window driver
        would otherwise serialize its workers."""
        if self._dead:
            raise WorkerCrashed(f"{self._process.name} is no longer running")
        self._conn.send((command, payload))

    def receive(self):
        """Block for the reply to the oldest un-received :meth:`send`."""
        return self._recv()

    def request(self, command: str, payload=None):
        """Send one command and block for its reply."""
        self.send(command, payload)
        return self._recv()

    def close(self) -> None:
        """Shut the child down (idempotent)."""
        if not self._dead:
            try:
                self._conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
            self._dead = True
        try:
            self._conn.close()
        except Exception:
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.kill()
            self._process.join(timeout=5.0)


@dataclass
class _Pending:
    request: RunRequest
    attempt: int = 1  # the attempt number the *next* launch will be
    not_before: float = 0.0  # monotonic time gate (retry backoff)


@dataclass
class _Active:
    request: RunRequest
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    deadline: Optional[float] = None
    result: Optional[RunResult] = None
    error: Optional[str] = None

    def reap(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join(timeout=5.0)


@dataclass
class _Book:
    """Mutable execution state shared by the scheduling helpers."""

    results: Dict[str, RunResult] = field(default_factory=dict)
    pending: List[_Pending] = field(default_factory=list)
    active: List[_Active] = field(default_factory=list)


class SweepExecutor:
    """Drives one plan to completion; reusable only via :func:`execute_plan`."""

    def __init__(
        self,
        plan: ExecutionPlan,
        parallel: int = 1,
        runner: Optional[Runner] = None,
        timeout: Optional[float] = None,
        max_attempts: int = 3,
        retry_backoff: float = 0.05,
        checkpoint_path: Optional[Union[str, os.PathLike]] = None,
        resume: bool = False,
        mp_context: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if parallel < 0:
            raise ValueError("parallel must be >= 0 (0 = inline)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.plan = plan
        self.parallel = parallel
        self.runner: Runner = runner if runner is not None else registry_runner
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._m_completed = m.counter("runtime.points_completed")
        self._m_failed = m.counter("runtime.points_failed")
        self._m_retried = m.counter("runtime.points_retried")
        self._m_timeout = m.counter("runtime.points_timeout")
        self._m_resumed = m.counter("runtime.points_resumed")
        self._m_workers = m.gauge("runtime.workers_active")

    # ------------------------------------------------------------------
    def run(self) -> SweepOutcome:
        started = time.perf_counter()
        book = _Book()
        resumed = 0

        if self.checkpoint_path is not None and self.resume:
            done = load_checkpoint(self.checkpoint_path)
            for point in self.plan:
                stored = done.get(point.key)
                # Only successful points are final; failed ones get a
                # fresh round of attempts on resume.
                if stored is not None and stored.is_ok:
                    book.results[point.key] = stored
                    resumed += 1
            self._m_resumed.inc(resumed)

        for point in self.plan:
            if point.key not in book.results:
                book.pending.append(_Pending(point))

        writer: Optional[CheckpointWriter] = None
        if self.checkpoint_path is not None:
            writer = CheckpointWriter(self.checkpoint_path)
        try:
            if self.parallel == 0:
                self._run_inline(book, writer)
            else:
                self._run_pool(book, writer)
        finally:
            if writer is not None:
                writer.close()
            for active in book.active:  # pragma: no cover - interrupt path
                active.process.terminate()
                active.reap()

        ordered = [book.results[p.key] for p in self.plan]
        return SweepOutcome(
            plan=self.plan,
            results=ordered,
            metrics=self.metrics.snapshot(),
            wall_time_seconds=time.perf_counter() - started,
            resumed_points=resumed,
        )

    # -- inline (parallel=0) -------------------------------------------
    def _run_inline(self, book: _Book, writer: Optional[CheckpointWriter]) -> None:
        saved = os.environ.get(ATTEMPT_ENV)
        try:
            for item in book.pending:
                request = item.request
                last_error = "never attempted"
                for attempt in range(1, self.max_attempts + 1):
                    os.environ[ATTEMPT_ENV] = str(attempt)
                    try:
                        result = self.runner(request).with_attempts(attempt)
                    except Exception as exc:  # noqa: BLE001
                        last_error = f"{type(exc).__name__}: {exc}"
                        if attempt < self.max_attempts:
                            self._m_retried.inc()
                            time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                        continue
                    self._record(book, writer, result)
                    break
                else:
                    self._record(
                        book,
                        writer,
                        RunResult.failed(request, last_error, attempts=self.max_attempts),
                    )
            book.pending.clear()
        finally:
            if saved is None:
                os.environ.pop(ATTEMPT_ENV, None)
            else:
                os.environ[ATTEMPT_ENV] = saved

    # -- process pool ---------------------------------------------------
    def _launch(self, book: _Book, item: _Pending) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.runner, item.request, item.attempt),
            daemon=True,
            name=f"repro-sweep-{item.request.replication}",
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        book.active.append(
            _Active(item.request, item.attempt, process, parent_conn, deadline)
        )
        self._m_workers.inc()

    def _run_pool(self, book: _Book, writer: Optional[CheckpointWriter]) -> None:
        while book.pending or book.active:
            now = time.monotonic()
            # Launch every ready point up to the concurrency cap.
            launchable = [
                p for p in book.pending if p.not_before <= now
            ][: max(0, self.parallel - len(book.active))]
            for item in launchable:
                book.pending.remove(item)
                self._launch(book, item)

            if not book.active:
                # Everything left is backoff-gated; sleep until the gate.
                if book.pending:
                    gate = min(p.not_before for p in book.pending)
                    time.sleep(max(0.0, min(gate - time.monotonic(), 0.25)))
                continue

            # Wait for results, bounded by the nearest deadline.
            wait_for = 0.25
            for active in book.active:
                if active.deadline is not None:
                    wait_for = min(wait_for, max(0.0, active.deadline - now))
            ready = connection_wait(
                [a.conn for a in book.active], timeout=wait_for
            )
            now = time.monotonic()

            finished: List[_Active] = []
            for active in book.active:
                if active.conn in ready:
                    try:
                        kind, payload = active.conn.recv()
                    except (EOFError, OSError):
                        active.process.join(timeout=5.0)
                        code = active.process.exitcode
                        active.error = f"worker crashed (exitcode {code})"
                    else:
                        if kind == "ok":
                            active.result = RunResult.from_dict(payload).with_attempts(
                                active.attempt
                            )
                        else:
                            active.error = payload["error"]
                    finished.append(active)
                elif not active.process.is_alive() and not active.conn.poll():
                    # Died without a word (hard crash before send()).
                    code = active.process.exitcode
                    active.error = f"worker crashed (exitcode {code})"
                    finished.append(active)
                elif active.deadline is not None and now >= active.deadline:
                    active.process.terminate()
                    active.error = f"timeout after {self.timeout:g}s"
                    self._m_timeout.inc()
                    finished.append(active)

            for active in finished:
                book.active.remove(active)
                active.reap()
                self._m_workers.dec()
                if active.result is not None:
                    self._record(book, writer, active.result)
                elif active.attempt < self.max_attempts:
                    self._m_retried.inc()
                    backoff = self.retry_backoff * (2 ** (active.attempt - 1))
                    book.pending.append(
                        _Pending(
                            active.request,
                            attempt=active.attempt + 1,
                            not_before=time.monotonic() + backoff,
                        )
                    )
                else:
                    self._record(
                        book,
                        writer,
                        RunResult.failed(
                            active.request,
                            active.error or "unknown failure",
                            attempts=active.attempt,
                        ),
                    )

    # ------------------------------------------------------------------
    def _record(
        self, book: _Book, writer: Optional[CheckpointWriter], result: RunResult
    ) -> None:
        book.results[result.request.key] = result
        if result.is_ok:
            self._m_completed.inc()
        else:
            self._m_failed.inc()
        if writer is not None:
            writer.record(result)


def execute_plan(
    plan: ExecutionPlan,
    parallel: int = 1,
    runner: Optional[Runner] = None,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    retry_backoff: float = 0.05,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    mp_context: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SweepOutcome:
    """Execute ``plan`` and return its :class:`SweepOutcome`.

    ``parallel`` is the worker-process count (``0`` = inline in this
    process). See :class:`SweepExecutor` for the remaining knobs.
    """
    return SweepExecutor(
        plan,
        parallel=parallel,
        runner=runner,
        timeout=timeout,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
        checkpoint_path=checkpoint_path,
        resume=resume,
        mp_context=mp_context,
        metrics=metrics,
    ).run()
