"""Parallel, fault-tolerant execution of an :class:`ExecutionPlan`.

The engine fans plan points out over a pool of worker *processes*
(one process per point — each point is a whole emulation run, so
process startup is noise) with three robustness mechanisms:

* **wall-clock timeouts** — a worker past its per-point deadline is
  terminated and the point is retried;
* **crash/exception capture** — a worker that raises, or dies without
  reporting (segfault, ``os._exit``, OOM-kill), surfaces as a failed
  attempt instead of hanging the sweep;
* **bounded retry with exponential backoff** — each point gets up to
  ``max_attempts`` tries; a point that exhausts them is recorded as
  ``status="failed"`` and the sweep continues.

Completed points stream into an incremental JSONL checkpoint
(:mod:`repro.runtime.checkpoint`); re-running with ``resume=True``
skips them. Because every point's seed is fixed by the plan (not by
scheduling), results are byte-identical whatever ``parallel`` is —
including ``parallel=0``, which runs points inline in the calling
process (no isolation, but convenient under a debugger).

Worker start method defaults to ``fork`` where available (closures in
custom runners work, module import cost is not repaid per point) and
``spawn`` elsewhere; pass ``mp_context="spawn"`` explicitly to test
the pickling path. The engine instruments itself through
:mod:`repro.obs` metrics (``runtime.points_*``,
``runtime.workers_active``).

Live telemetry: pass a :class:`~repro.obs.telemetry.TelemetryHub` and
workers interleave wall-clock-only ``("telemetry", event)`` messages
(heartbeats, per-point lifecycle) with their protocol replies on the
same pipes; the parent folds them into the hub as they arrive. The
per-point ``started/finished/retried/crashed/failed`` records are also
appended to the checkpoint JSONL (telemetry or not), which is how a
``--resume`` run reports what previously failed. None of this touches
the deterministic path — results and aggregates are byte-identical
with telemetry on or off.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Union

from repro.experiments.api import RunRequest, RunResult
from repro.obs import telemetry as obs_telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryHub
from repro.runtime.aggregate import SweepOutcome
from repro.runtime.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    load_checkpoint_events,
)
from repro.runtime.plan import ExecutionPlan

#: Environment variable exposing the current attempt number (1-based)
#: to the code running a point — used by fault-injection tests.
ATTEMPT_ENV = "REPRO_RUNTIME_ATTEMPT"

Runner = Callable[[RunRequest], RunResult]


def registry_runner(request: RunRequest) -> RunResult:
    """Default runner: resolve the experiment registry entry and
    execute it through the unified RunRequest→RunResult protocol."""
    from repro.experiments import get_experiment

    return get_experiment(request.experiment_id).execute(request)


def _worker_main(
    conn: Connection,
    runner: Runner,
    request: RunRequest,
    attempt: int,
    telemetry_on: bool = False,
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Child-process entry point: run one point, ship the result back.

    With ``telemetry_on`` the worker installs a pipe emitter as the
    process-ambient telemetry emitter and starts a heartbeat thread;
    both share ``conn`` with the final reply, serialized by a lock so
    a heartbeat can never tear a result message.
    """
    os.environ[ATTEMPT_ENV] = str(attempt)
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    # A forked child inherits the parent's ambient emitter and probe
    # table — neither may leak into this process's stream.
    obs_telemetry.clear_probes()
    obs_telemetry.set_emitter(None)
    heartbeat: Optional[obs_telemetry.Heartbeat] = None
    if telemetry_on:
        emitter = obs_telemetry.pipe_emitter(
            conn,
            send_lock,
            f"sweep/pid{os.getpid()}",
            static={"point": request.key},
        )
        obs_telemetry.set_emitter(emitter)
        heartbeat = obs_telemetry.Heartbeat(
            emitter,
            interval=(
                heartbeat_interval
                if heartbeat_interval is not None
                else obs_telemetry.HEARTBEAT_INTERVAL
            ),
        ).start()

    def stop_heartbeat() -> None:
        nonlocal heartbeat
        if heartbeat is not None:
            try:
                heartbeat.stop()
            except Exception:
                pass
            heartbeat = None

    try:
        result = runner(request)
        stop_heartbeat()
        send(("ok", result.as_dict()))
    except BaseException as exc:  # noqa: BLE001 — must never escape silently
        stop_heartbeat()
        try:
            send(
                (
                    "error",
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:  # conn already broken — parent sees a crash
            pass
    finally:
        stop_heartbeat()
        try:
            conn.close()
        except Exception:
            pass


def _command_worker_main(
    conn: Connection,
    handler_factory,
    init_payload,
    telemetry_on: bool = False,
    telemetry_source: Optional[str] = None,
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Child entry point for a :class:`CommandWorker`.

    Builds the handler once, then serves ``(command, payload)`` requests
    until ``("close", None)`` — the long-lived dual of the one-shot
    :func:`_worker_main` (a partition worker holds live simulators
    across barrier windows, so it cannot be respawned per request).

    With ``telemetry_on`` the ambient emitter and heartbeat thread are
    installed *before* ``handler_factory`` runs, so the factory (e.g.
    the partition driver building its cells) can register progress
    probes that the heartbeats will sample.
    """
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    obs_telemetry.clear_probes()  # fork inherits the parent's probe table
    obs_telemetry.set_emitter(None)
    heartbeat: Optional[obs_telemetry.Heartbeat] = None
    if telemetry_on:
        emitter = obs_telemetry.pipe_emitter(
            conn,
            send_lock,
            telemetry_source or f"cells/pid{os.getpid()}",
        )
        obs_telemetry.set_emitter(emitter)
        heartbeat = obs_telemetry.Heartbeat(
            emitter,
            interval=(
                heartbeat_interval
                if heartbeat_interval is not None
                else obs_telemetry.HEARTBEAT_INTERVAL
            ),
        ).start()
    try:
        handler = handler_factory(init_payload)
        send(("ready", None))
        while True:
            command, payload = conn.recv()
            if command == "close":
                break
            send(("ok", handler(command, payload)))
    except BaseException as exc:  # noqa: BLE001 — must never escape silently
        try:
            send(
                (
                    "error",
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:
            pass
    finally:
        if heartbeat is not None:
            try:
                heartbeat.stop()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


class WorkerCrashed(RuntimeError):
    """A :class:`CommandWorker` child died or reported an exception."""


class CommandWorker:
    """A persistent worker process serving ``(command, payload)`` calls.

    The sweep pool above spawns one process per point because each
    point is a whole run; the partition driver
    (:mod:`repro.sim.partition`) instead needs workers that *retain
    state* (their cells' simulators) between short synchronous calls.
    This wraps the same ``Pipe``/``Process``/crash-capture machinery in
    a request/response shape:

    ``handler_factory(init_payload)`` runs once in the child and
    returns a ``handler(command, payload)`` callable; :meth:`request`
    round-trips one command. A child that raises ships the traceback
    back and every subsequent call raises :class:`WorkerCrashed`.

    With ``telemetry=True`` the child streams heartbeat events on the
    same pipe; :meth:`_recv` transparently skips them past the
    request/response protocol, handing each one to ``on_telemetry``
    (typically the ambient emitter's ``forward``, relaying cell events
    up to whatever hub owns this process).
    """

    def __init__(
        self,
        handler_factory,
        init_payload=None,
        mp_context: Optional[str] = None,
        name: str = "repro-worker",
        telemetry: bool = False,
        on_telemetry: Optional[Callable[[Dict[str, Any]], None]] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        ctx = multiprocessing.get_context(mp_context)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._on_telemetry = on_telemetry
        self._process = ctx.Process(
            target=_command_worker_main,
            args=(
                child_conn,
                handler_factory,
                init_payload,
                telemetry,
                name,
                heartbeat_interval,
            ),
            daemon=True,
            name=name,
        )
        self._process.start()
        child_conn.close()
        self._dead = False
        self._recv()  # wait for ("ready", None) / surface build failures

    def _recv(self):
        while True:
            try:
                kind, payload = self._conn.recv()
            except (EOFError, OSError):
                self._dead = True
                self._process.join(timeout=5.0)
                raise WorkerCrashed(
                    f"{self._process.name} crashed "
                    f"(exitcode {self._process.exitcode})"
                ) from None
            if kind == "telemetry":
                self._handle_telemetry(payload)
                continue
            if kind == "error":
                self._dead = True
                raise WorkerCrashed(
                    f"{self._process.name} failed: {payload['error']}\n"
                    f"{payload['traceback']}"
                )
            return payload

    def send(self, command: str, payload=None) -> None:
        """Dispatch a command without waiting (pair with :meth:`receive`).

        The split form lets a coordinator fan a command out to every
        worker before collecting any reply — the barrier-window driver
        would otherwise serialize its workers."""
        if self._dead:
            raise WorkerCrashed(f"{self._process.name} is no longer running")
        self._conn.send((command, payload))

    def receive(self):
        """Block for the reply to the oldest un-received :meth:`send`."""
        return self._recv()

    def request(self, command: str, payload=None):
        """Send one command and block for its reply."""
        self.send(command, payload)
        return self._recv()

    def _handle_telemetry(self, payload) -> None:
        if self._on_telemetry is not None:
            try:
                self._on_telemetry(payload)
            except Exception:
                pass

    def close(self) -> None:
        """Shut the child down (idempotent)."""
        if not self._dead:
            try:
                self._conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
            self._dead = True
        try:
            self._conn.close()
        except Exception:
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.kill()
            self._process.join(timeout=5.0)


def receive_all(workers: List["CommandWorker"]) -> List[Any]:
    """Collect one reply from every worker, processing messages in
    *arrival* order across all their pipes.

    The sequential alternative (``[w.receive() for w in workers]``)
    blocks on worker 0's reply while workers 1..N's telemetry queues
    unseen — a long barrier window would go dark. Multiplexing with
    :func:`multiprocessing.connection.wait` keeps every stream live.
    Replies are returned in worker order; a crash or shipped error
    raises :class:`WorkerCrashed` exactly as :meth:`CommandWorker.
    receive` would.
    """
    replies: Dict[int, Any] = {}
    by_conn = {worker._conn: worker for worker in workers}
    while len(replies) < len(workers):
        for conn in connection_wait(
            [w._conn for w in workers if id(w) not in replies]
        ):
            worker = by_conn[conn]
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                worker._dead = True
                worker._process.join(timeout=5.0)
                raise WorkerCrashed(
                    f"{worker._process.name} crashed "
                    f"(exitcode {worker._process.exitcode})"
                ) from None
            if kind == "telemetry":
                worker._handle_telemetry(payload)
            elif kind == "error":
                worker._dead = True
                raise WorkerCrashed(
                    f"{worker._process.name} failed: {payload['error']}\n"
                    f"{payload['traceback']}"
                )
            else:
                replies[id(worker)] = payload
    return [replies[id(worker)] for worker in workers]


@dataclass
class _Pending:
    request: RunRequest
    attempt: int = 1  # the attempt number the *next* launch will be
    not_before: float = 0.0  # monotonic time gate (retry backoff)


@dataclass
class _Active:
    request: RunRequest
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    deadline: Optional[float] = None
    result: Optional[RunResult] = None
    error: Optional[str] = None

    def reap(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join(timeout=5.0)


@dataclass
class _Book:
    """Mutable execution state shared by the scheduling helpers."""

    results: Dict[str, RunResult] = field(default_factory=dict)
    pending: List[_Pending] = field(default_factory=list)
    active: List[_Active] = field(default_factory=list)


class SweepExecutor:
    """Drives one plan to completion; reusable only via :func:`execute_plan`."""

    def __init__(
        self,
        plan: ExecutionPlan,
        parallel: int = 1,
        runner: Optional[Runner] = None,
        timeout: Optional[float] = None,
        max_attempts: int = 3,
        retry_backoff: float = 0.05,
        checkpoint_path: Optional[Union[str, os.PathLike]] = None,
        resume: bool = False,
        mp_context: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[TelemetryHub] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if parallel < 0:
            raise ValueError("parallel must be >= 0 (0 = inline)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.plan = plan
        self.parallel = parallel
        self.runner: Runner = runner if runner is not None else registry_runner
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.telemetry = telemetry
        self.heartbeat_interval = heartbeat_interval
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._m_completed = m.counter("runtime.points_completed")
        self._m_failed = m.counter("runtime.points_failed")
        self._m_retried = m.counter("runtime.points_retried")
        self._m_timeout = m.counter("runtime.points_timeout")
        self._m_resumed = m.counter("runtime.points_resumed")
        self._m_workers = m.gauge("runtime.workers_active")

    # -- telemetry seams ------------------------------------------------
    def _emit(self, kind: str, **fields: Any) -> None:
        """Hub-only lifecycle event (no checkpoint line)."""
        if self.telemetry is not None:
            self.telemetry.ingest(
                {"ts": time.time(), "kind": kind, "source": "executor", **fields}
            )

    def _point_event(
        self,
        writer: Optional[CheckpointWriter],
        kind: str,
        key: str,
        **fields: Any,
    ) -> None:
        """Per-point lifecycle record: into the hub (when streaming)
        AND the checkpoint JSONL (always — resume reads it back)."""
        doc = {"ts": time.time(), "kind": kind, "source": "executor",
               "key": key, **fields}
        if self.telemetry is not None:
            self.telemetry.ingest(doc)
        if writer is not None:
            writer.event(doc)

    def _prior_failures(self) -> List[Dict[str, Any]]:
        """Failure/retry history from the checkpoint being resumed
        (timestamp-free, so reports stay deterministic)."""
        failures: List[Dict[str, Any]] = []
        for event in load_checkpoint_events(self.checkpoint_path):
            if event.get("kind") not in (
                "point_crashed", "point_retried", "point_failed"
            ):
                continue
            failures.append({
                "key": event.get("key"),
                "kind": event.get("kind"),
                "error": event.get("error"),
                "attempt": event.get("attempt"),
            })
        return failures

    # ------------------------------------------------------------------
    def run(self) -> SweepOutcome:
        started = time.perf_counter()
        book = _Book()
        resumed = 0
        prior_failures: List[Dict[str, Any]] = []

        if self.checkpoint_path is not None and self.resume:
            done = load_checkpoint(self.checkpoint_path)
            for point in self.plan:
                stored = done.get(point.key)
                # Only successful points are final; failed ones get a
                # fresh round of attempts on resume.
                if stored is not None and stored.is_ok:
                    book.results[point.key] = stored
                    resumed += 1
            self._m_resumed.inc(resumed)
            prior_failures = self._prior_failures()

        for point in self.plan:
            if point.key not in book.results:
                book.pending.append(_Pending(point))

        self._emit(
            "run_started",
            experiment=self.plan.experiment_id,
            points=len(self.plan),
            pending=len(book.pending),
            resumed=resumed,
            parallel=self.parallel,
        )
        if prior_failures:
            self._emit(
                "resume_report",
                failures=prior_failures,
                resumed=resumed,
            )

        writer: Optional[CheckpointWriter] = None
        if self.checkpoint_path is not None:
            writer = CheckpointWriter(self.checkpoint_path)
        try:
            if self.parallel == 0:
                self._run_inline(book, writer)
            else:
                self._run_pool(book, writer)
        finally:
            if writer is not None:
                writer.close()
            for active in book.active:  # pragma: no cover - interrupt path
                active.process.terminate()
                active.reap()

        ordered = [book.results[p.key] for p in self.plan]
        outcome = SweepOutcome(
            plan=self.plan,
            results=ordered,
            metrics=self.metrics.snapshot(),
            wall_time_seconds=time.perf_counter() - started,
            resumed_points=resumed,
            prior_failures=prior_failures,
        )
        self._emit(
            "run_finished",
            completed=len(outcome.completed),
            failed=len(outcome.failed),
            wall_seconds=outcome.wall_time_seconds,
        )
        return outcome

    # -- inline (parallel=0) -------------------------------------------
    def _run_inline(self, book: _Book, writer: Optional[CheckpointWriter]) -> None:
        saved = os.environ.get(ATTEMPT_ENV)
        # Inline points run in *this* process: feed the hub directly
        # through the ambient emitter so partition drivers (and any
        # other deep layer) stream exactly as they would from a worker.
        emitter = (
            self.telemetry.emitter("inline")
            if self.telemetry is not None
            else obs_telemetry.NULL_EMITTER
        )
        try:
            with obs_telemetry.use_emitter(emitter):
                for item in book.pending:
                    request = item.request
                    last_error = "never attempted"
                    for attempt in range(1, self.max_attempts + 1):
                        os.environ[ATTEMPT_ENV] = str(attempt)
                        self._point_event(
                            writer, "point_started", request.key, attempt=attempt
                        )
                        try:
                            result = self.runner(request).with_attempts(attempt)
                        except Exception as exc:  # noqa: BLE001
                            last_error = f"{type(exc).__name__}: {exc}"
                            self._point_event(
                                writer, "point_crashed", request.key,
                                attempt=attempt, error=last_error,
                            )
                            if attempt < self.max_attempts:
                                self._m_retried.inc()
                                self._point_event(
                                    writer, "point_retried", request.key,
                                    attempt=attempt, error=last_error,
                                )
                                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                            continue
                        self._record(book, writer, result)
                        break
                    else:
                        self._record(
                            book,
                            writer,
                            RunResult.failed(
                                request, last_error, attempts=self.max_attempts
                            ),
                        )
                book.pending.clear()
        finally:
            if saved is None:
                os.environ.pop(ATTEMPT_ENV, None)
            else:
                os.environ[ATTEMPT_ENV] = saved

    # -- process pool ---------------------------------------------------
    def _launch(
        self, book: _Book, item: _Pending, writer: Optional[CheckpointWriter]
    ) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        telemetry_on = self.telemetry is not None or bool(item.request.telemetry)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.runner,
                item.request,
                item.attempt,
                telemetry_on,
                self.heartbeat_interval,
            ),
            daemon=True,
            name=f"repro-sweep-{item.request.replication}",
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        book.active.append(
            _Active(item.request, item.attempt, process, parent_conn, deadline)
        )
        self._m_workers.inc()
        self._point_event(
            writer, "point_started", item.request.key, attempt=item.attempt
        )

    def _run_pool(self, book: _Book, writer: Optional[CheckpointWriter]) -> None:
        while book.pending or book.active:
            now = time.monotonic()
            # Launch every ready point up to the concurrency cap.
            launchable = [
                p for p in book.pending if p.not_before <= now
            ][: max(0, self.parallel - len(book.active))]
            for item in launchable:
                book.pending.remove(item)
                self._launch(book, item, writer)

            if not book.active:
                # Everything left is backoff-gated; sleep until the gate.
                if book.pending:
                    gate = min(p.not_before for p in book.pending)
                    time.sleep(max(0.0, min(gate - time.monotonic(), 0.25)))
                continue

            # Wait for results, bounded by the nearest deadline.
            wait_for = 0.25
            for active in book.active:
                if active.deadline is not None:
                    wait_for = min(wait_for, max(0.0, active.deadline - now))
            ready = connection_wait(
                [a.conn for a in book.active], timeout=wait_for
            )
            now = time.monotonic()

            finished: List[_Active] = []
            for active in book.active:
                if active.conn in ready:
                    try:
                        # Drain interleaved telemetry; the first
                        # non-telemetry message (if any is ready) is
                        # the worker's final reply.
                        message = active.conn.recv()
                        while message[0] == "telemetry":
                            if self.telemetry is not None:
                                self.telemetry.ingest(message[1])
                            if not active.conn.poll():
                                message = None
                                break
                            message = active.conn.recv()
                    except (EOFError, OSError):
                        active.process.join(timeout=5.0)
                        code = active.process.exitcode
                        active.error = f"worker crashed (exitcode {code})"
                    else:
                        if message is None:
                            continue  # still running — only heartbeats so far
                        kind, payload = message
                        if kind == "ok":
                            active.result = RunResult.from_dict(payload).with_attempts(
                                active.attempt
                            )
                        else:
                            active.error = payload["error"]
                    finished.append(active)
                elif not active.process.is_alive() and not active.conn.poll():
                    # Died without a word (hard crash before send()).
                    code = active.process.exitcode
                    active.error = f"worker crashed (exitcode {code})"
                    finished.append(active)
                elif active.deadline is not None and now >= active.deadline:
                    active.process.terminate()
                    active.error = f"timeout after {self.timeout:g}s"
                    self._m_timeout.inc()
                    finished.append(active)

            for active in finished:
                book.active.remove(active)
                active.reap()
                self._m_workers.dec()
                if active.result is not None:
                    self._record(book, writer, active.result)
                    continue
                self._point_event(
                    writer, "point_crashed", active.request.key,
                    attempt=active.attempt, error=active.error,
                )
                if active.attempt < self.max_attempts:
                    self._m_retried.inc()
                    self._point_event(
                        writer, "point_retried", active.request.key,
                        attempt=active.attempt, error=active.error,
                    )
                    backoff = self.retry_backoff * (2 ** (active.attempt - 1))
                    book.pending.append(
                        _Pending(
                            active.request,
                            attempt=active.attempt + 1,
                            not_before=time.monotonic() + backoff,
                        )
                    )
                else:
                    self._record(
                        book,
                        writer,
                        RunResult.failed(
                            active.request,
                            active.error or "unknown failure",
                            attempts=active.attempt,
                        ),
                    )

    # ------------------------------------------------------------------
    def _record(
        self, book: _Book, writer: Optional[CheckpointWriter], result: RunResult
    ) -> None:
        book.results[result.request.key] = result
        if result.is_ok:
            self._m_completed.inc()
            self._point_event(
                writer, "point_finished", result.request.key,
                attempt=result.attempts, status=result.status,
            )
        else:
            self._m_failed.inc()
            self._point_event(
                writer, "point_failed", result.request.key,
                attempt=result.attempts, error=result.error,
            )
        if writer is not None:
            writer.record(result)


def execute_plan(
    plan: ExecutionPlan,
    parallel: int = 1,
    runner: Optional[Runner] = None,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    retry_backoff: float = 0.05,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    mp_context: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    telemetry: Optional[TelemetryHub] = None,
    heartbeat_interval: Optional[float] = None,
) -> SweepOutcome:
    """Execute ``plan`` and return its :class:`SweepOutcome`.

    ``parallel`` is the worker-process count (``0`` = inline in this
    process). ``telemetry`` streams live health into the given hub.
    See :class:`SweepExecutor` for the remaining knobs.
    """
    return SweepExecutor(
        plan,
        parallel=parallel,
        runner=runner,
        timeout=timeout,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
        checkpoint_path=checkpoint_path,
        resume=resume,
        mp_context=mp_context,
        metrics=metrics,
        telemetry=telemetry,
        heartbeat_interval=heartbeat_interval,
    ).run()
