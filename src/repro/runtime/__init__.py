"""repro.runtime — the parallel, fault-tolerant experiment runtime.

Turns a sweep (*experiment id × parameter grid × replication seeds*)
into an :class:`ExecutionPlan`, fans the points out over a worker
pool, and aggregates results deterministically:

* :mod:`repro.runtime.plan` — grid expansion + per-point seed
  derivation (BLAKE2b child streams, scheduling-independent);
* :mod:`repro.runtime.executor` — the worker pool: timeouts,
  crash/exception capture, bounded retry+backoff;
* :mod:`repro.runtime.checkpoint` — incremental JSONL checkpointing
  and resume;
* :mod:`repro.runtime.aggregate` — plan-ordered aggregation through
  the :mod:`repro.obs` manifest and :mod:`repro.analysis.export`
  JSON machinery.

Quick use::

    from repro.runtime import ExecutionPlan, execute_plan

    plan = ExecutionPlan.build("fig6", grid={"rule_count": [0, 10000]})
    outcome = execute_plan(plan, parallel=4)
    print(outcome.json())  # byte-identical to parallel=1

CLI: ``python -m repro sweep <id> --parallel N --resume``.
"""

from repro.experiments.api import RunRequest, RunResult
from repro.runtime.aggregate import SweepOutcome
from repro.runtime.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    load_checkpoint_events,
)
from repro.runtime.executor import (
    ATTEMPT_ENV,
    CommandWorker,
    SweepExecutor,
    execute_plan,
    receive_all,
    registry_runner,
)
from repro.runtime.plan import ExecutionPlan

__all__ = [
    "ATTEMPT_ENV",
    "CheckpointWriter",
    "CommandWorker",
    "ExecutionPlan",
    "RunRequest",
    "RunResult",
    "SweepExecutor",
    "SweepOutcome",
    "execute_plan",
    "load_checkpoint",
    "load_checkpoint_events",
    "receive_all",
    "registry_runner",
]
