"""Deterministic aggregation of sweep results.

A :class:`SweepOutcome` collects every point's
:class:`~repro.experiments.api.RunResult` in *plan order* (never
completion order) and renders the canonical aggregate document::

    {"manifest": {...}, "sweep": {...}, "points": [...], "summary": {...}}

* ``manifest`` reuses :class:`repro.obs.manifest.RunManifest` — the
  same provenance record every single-run export carries.
* ``points`` lists each request (params/seed/replication), its status
  and its artifacts.
* ``summary`` has mean/min/max per numeric artifact across completed
  points.

The document is deterministic by default: wall-clock, attempt counts
and host fields are excluded unless ``deterministic_only=False``, so
``--parallel N`` and ``--parallel 1`` serialize byte-identically
(JSON with sorted keys — the same convention as
:func:`repro.analysis.export.metrics_json`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.api import RunResult
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Snapshot
from repro.runtime.plan import ExecutionPlan


@dataclass
class SweepOutcome:
    """Everything one sweep execution produced."""

    plan: ExecutionPlan
    results: List[RunResult]
    metrics: Snapshot = field(default_factory=dict)
    wall_time_seconds: Optional[float] = None
    resumed_points: int = 0
    #: Failure/retry history recovered from the checkpoint on
    #: ``--resume`` (``{"key", "kind", "error", "attempt"}`` docs, no
    #: wall timestamps). Excluded from the deterministic document: it
    #: describes a *previous* process, not this run's results.
    prior_failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> List[RunResult]:
        return [r for r in self.results if r.is_ok]

    @property
    def failed(self) -> List[RunResult]:
        return [r for r in self.results if not r.is_ok]

    @property
    def retried(self) -> int:
        return sum(max(0, r.attempts - 1) for r in self.results)

    # ------------------------------------------------------------------
    def manifest(self, deterministic_only: bool = True) -> RunManifest:
        """Sweep-level provenance via the standard manifest machinery."""
        from repro import __version__

        return RunManifest(
            seed=self.plan.base_seed,
            package_version=__version__,
            topology_hash=None,
            sim_time=0.0,
            wall_time_seconds=None if deterministic_only else self.wall_time_seconds,
            events_processed=0,
            events_pending=0,
            extra={
                "kind": "sweep",
                "experiment": self.plan.experiment_id,
                "points": len(self.plan),
                "completed": len(self.completed),
                "failed": len(self.failed),
            },
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """mean/min/max per numeric artifact over completed points."""
        columns: Dict[str, List[float]] = {}
        for result in self.completed:
            for name, value in result.artifacts.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                columns.setdefault(name, []).append(float(value))
        return {
            name: {
                "mean": sum(vals) / len(vals),
                "min": min(vals),
                "max": max(vals),
                "count": len(vals),
            }
            for name, vals in sorted(columns.items())
        }

    def document(self, deterministic_only: bool = True) -> Dict[str, Any]:
        """The canonical aggregate document (see module docstring)."""
        points: List[Dict[str, Any]] = []
        for result in self.results:
            point: Dict[str, Any] = {
                "request": result.request.as_dict(),
                "status": result.status,
                "artifacts": result.artifacts,
                "error": result.error,
            }
            if not deterministic_only:
                point["attempts"] = result.attempts
            points.append(point)
        doc: Dict[str, Any] = {
            "manifest": self.manifest(deterministic_only).as_dict(deterministic_only),
            "sweep": self.plan.describe(),
            "points": points,
            "summary": self.summary(),
        }
        if not deterministic_only:
            doc["runtime_metrics"] = self.metrics
            doc["resumed_points"] = self.resumed_points
            doc["prior_failures"] = list(self.prior_failures)
        return doc

    def json(self, deterministic_only: bool = True, indent: Optional[int] = 2) -> str:
        from repro.analysis.export import sweep_json

        return sweep_json(self, deterministic_only=deterministic_only, indent=indent)
