"""Execution plans: a sweep expanded into concrete run requests.

A sweep is *experiment id × parameter grid × replications*.
:meth:`ExecutionPlan.build` expands that cross product into an ordered
list of :class:`~repro.experiments.api.RunRequest` points with
deterministic per-point seeds derived from the base seed through the
same BLAKE2b child-stream derivation the simulator's
:class:`~repro.sim.rng.RngRegistry` uses — so a point's seed depends
only on (base seed, experiment id, parameter values, replication
index), never on scheduling order. That is the property that makes
``--parallel N`` byte-identical to ``--parallel 1``: every point is a
self-contained deterministic run, and the aggregate orders points by
plan position, not completion order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.api import RunRequest
from repro.sim.rng import derive_seed


def _point_name(experiment_id: str, params: Mapping[str, Any], replication: int) -> str:
    """Stable stream name for per-point seed derivation."""
    parts = [f"{k}={params[k]!r}" for k in sorted(params)]
    return f"runtime.point/{experiment_id}/{','.join(parts)}/rep{replication}"


@dataclass(frozen=True)
class ExecutionPlan:
    """An ordered, fully-expanded sweep."""

    experiment_id: str
    points: Tuple[RunRequest, ...]
    base_seed: int = 0
    replications: int = 1
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    base_params: Tuple[Tuple[str, Any], ...] = ()

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def grid_dict(self) -> Dict[str, Tuple[Any, ...]]:
        return dict(self.grid)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary used by the aggregate manifest."""
        return {
            "experiment_id": self.experiment_id,
            "base_seed": self.base_seed,
            "replications": self.replications,
            "grid": {k: list(v) for k, v in self.grid},
            "base_params": dict(self.base_params),
            "points": len(self.points),
        }

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        experiment_id: str,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        base_params: Optional[Mapping[str, Any]] = None,
        replications: int = 1,
        base_seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        partitions: Optional[int] = None,
        fluid: Optional[bool] = None,
        telemetry: Optional[bool] = None,
    ) -> "ExecutionPlan":
        """Expand ``grid`` × ``replications`` into run requests.

        ``partitions`` (a pure execution knob, excluded from point
        keys) is stamped on every request so experiments that support
        the partitioned kernel shard each point's run. ``fluid`` (a
        model knob, part of each point's key when set) selects the
        fluid-flow transfer model for experiments that accept it.
        ``telemetry`` (wall-clock observability, excluded from both
        keys and serialized requests) tells each point's worker to
        stream live events back to the parent's
        :class:`~repro.obs.telemetry.TelemetryHub`.

        * ``grid`` maps parameter names to the values to sweep; the
          cross product is taken in sorted-key order (deterministic).
        * ``base_params`` are passed to every point unchanged.
        * Each point's seed is ``derive_seed(base_seed, point_name)``
          unless ``seeds`` pins an explicit seed per replication
          (then ``len(seeds)`` overrides ``replications`` and
          replication *i* runs with ``seeds[i]`` verbatim — the
          classic seed-sweep).
        """
        grid = dict(grid or {})
        base_params = dict(base_params or {})
        if seeds is not None:
            replications = len(seeds)
        if replications < 1:
            raise ValueError("replications must be >= 1")

        axes = sorted(grid)
        combos: List[Dict[str, Any]]
        if axes:
            combos = [
                dict(zip(axes, values))
                for values in itertools.product(*(tuple(grid[a]) for a in axes))
            ]
        else:
            combos = [{}]

        points: List[RunRequest] = []
        for combo in combos:
            params = dict(base_params)
            params.update(combo)
            for rep in range(replications):
                if seeds is not None:
                    seed = int(seeds[rep])
                else:
                    seed = derive_seed(
                        base_seed, _point_name(experiment_id, params, rep)
                    )
                points.append(
                    RunRequest.make(
                        experiment_id,
                        params,
                        seed=seed,
                        replication=rep,
                        partitions=partitions,
                        fluid=fluid,
                        telemetry=telemetry,
                    )
                )
        return cls(
            experiment_id=experiment_id,
            points=tuple(points),
            base_seed=base_seed,
            replications=replications,
            grid=tuple((a, tuple(grid[a])) for a in axes),
            base_params=tuple(sorted(base_params.items())),
        )
