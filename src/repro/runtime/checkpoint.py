"""Incremental JSONL checkpointing for sweep execution.

One line per finished point, appended and flushed the moment the
executor records it::

    {"key": "<request key>", "result": {<RunResult.as_dict()>}}

An interrupted sweep re-run with ``resume=True`` loads the file, skips
every point whose key is already present, and seeds the aggregate with
the stored results — no finished work is redone. Keys are the stable
:attr:`~repro.experiments.api.RunRequest.key`, so a checkpoint written
by a ``--parallel 8`` run resumes correctly under ``--parallel 1`` and
vice versa. Unparseable trailing lines (a crash mid-write) are
ignored, which makes the format append-crash-safe.

The executor also interleaves per-point *lifecycle event* lines::

    {"event": {"kind": "point_retried", "point": "<key>", ...}}

Events carry wall-clock context (what crashed, how often a point was
retried) that the result lines deliberately flatten away. They are
invisible to :func:`load_checkpoint` (no ``"key"`` field → skipped),
so old checkpoints and new ones resume identically; a ``--resume``
run reads them back via :func:`load_checkpoint_events` to report what
previously failed instead of silently swallowing the history.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, TextIO, Union

from repro.experiments.api import RunResult

PathLike = Union[str, pathlib.Path]


class CheckpointWriter:
    """Append-only JSONL sink; one flushed line per completed point."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = None
        self.lines_written = 0

    def record(self, result: RunResult) -> None:
        if self._fh is None:
            self._fh = self.path.open("a")
        line = json.dumps(
            {"key": result.request.key, "result": result.as_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        self.lines_written += 1

    def event(self, doc: Mapping[str, Any]) -> None:
        """Append one lifecycle-event line (``{"event": {...}}``).

        Best-effort durability for *observability* data: serialization
        failures are swallowed so a weird event payload can never take
        down the sweep it is describing.
        """
        if self._fh is None:
            self._fh = self.path.open("a")
        try:
            line = json.dumps(
                {"event": dict(doc)}, sort_keys=True, separators=(",", ":")
            )
        except (TypeError, ValueError):
            return
        self._fh.write(line + "\n")
        self._fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_checkpoint(path: PathLike) -> Dict[str, RunResult]:
    """Load ``key -> RunResult`` from a checkpoint file.

    Missing file → empty dict. Corrupt lines (partial writes from a
    crash) are skipped; later duplicates of a key win, so a point that
    was retried across interruptions resolves to its final outcome.
    """
    path = pathlib.Path(path)
    done: Dict[str, RunResult] = {}
    if not path.exists():
        return done
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                done[doc["key"]] = RunResult.from_dict(doc["result"])
            except (ValueError, KeyError, TypeError):
                continue  # torn write or event line — ignore
    return done


def load_checkpoint_events(path: PathLike) -> List[Dict[str, Any]]:
    """Load the lifecycle-event lines from a checkpoint file, in order.

    Missing file → empty list; torn writes and result lines are
    skipped. Used by ``--resume`` to report what crashed or was
    retried in the interrupted run.
    """
    path = pathlib.Path(path)
    events: List[Dict[str, Any]] = []
    if not path.exists():
        return events
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn write — ignore
            event = doc.get("event") if isinstance(doc, dict) else None
            if isinstance(event, dict):
                events.append(event)
    return events
