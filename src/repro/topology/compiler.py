"""Compile a topology spec into decentralized per-node emulation state.

For every physical node the compiler installs exactly what the paper
describes for the node hosting 10.1.3.207:

* two rules (and two pipes) per hosted virtual node — outgoing traffic
  through the node's upload pipe, incoming traffic through its download
  pipe, both carrying the access-link latency and loss rate;
* one outgoing delay rule per inter-group latency entry whose source
  prefix covers at least one hosted virtual node ("the opposite rule
  being on the nodes hosting" the other group).

Rule numbering: vnode rules from 1000 upward (two per vnode, numbered
in hosting order per physical node), group latency rules from 100000
upward, so per-node shaping happens before group delays — matching the
example rule list in the paper.

Scale model (the million-vnode path):

* the spec is consumed as a *stream* — ``TopologySpec.iter_placements``
  feeds ``Testbed.place`` and rules are installed per vnode as it is
  created, so no intermediate address or vnode list is materialised;
* shaping state is *flyweight* — each group's bandwidth/delay/loss
  constants live in one interned :class:`ShapingProfile`, and the
  per-vnode :class:`DummynetPipe` pair is only built when (if ever) a
  packet first matches the vnode's rule, via the firewall's
  ``pipe_factory`` seam. An idle vnode costs two slim rules and an
  address — no pipes, no name string, no libc.

Laziness is observationally invisible: a pipe materialised at its
first matching packet is in exactly the state (idle, zero backlog,
name-derived RNG stream) the eager pipe would be in at that moment,
and registration bypasses the flow-cache/generation invalidation
because nothing can have cached a path through a pipe that did not
exist. ``REPRO_SLOW_PATH=1`` keeps the eager reference path; the
subprocess A/B tests prove byte-identity.
"""

from __future__ import annotations

import gc
from typing import Dict, List, Optional

from repro.errors import FirewallError, TopologyError
from repro.hotpath import SLOW_PATH
from repro.net.ipfw import ACTION_PIPE, DIR_IN, DIR_OUT, Firewall, Rule
from repro.net.pipe import DummynetPipe, ShapingProfile
from repro.obs.metrics import NULL_REGISTRY
from repro.topology.spec import GroupSpec, TopologySpec
from repro.virt.deployment import PLACEMENT_BLOCK, Testbed
from repro.virt.vnode import VirtualNode

#: Rule number bases.
VNODE_RULE_BASE = 1000
GROUP_RULE_BASE = 100000


class _PipeLedger:
    """Wall-side accounting of deferred vs. materialised pipes.

    The registry twins are ``wall=True`` so deterministic metric
    snapshots never see them (how many pipes happen to have
    materialised is a memory fact, not an emulation observable).
    """

    __slots__ = ("pending", "materialized", "_g_pending", "_c_materialized")

    def __init__(self, registry) -> None:
        self.pending = 0
        self.materialized = 0
        self._g_pending = registry.gauge("topo.lazy_pipes_pending", wall=True)
        self._c_materialized = registry.counter("topo.pipes_materialized", wall=True)

    def defer(self, n: int = 1) -> None:
        self.pending += n
        self._g_pending.inc(n)

    def materialize(self) -> None:
        self.pending -= 1
        self.materialized += 1
        self._g_pending.dec()
        self._c_materialized.inc()


class _AccessPipeFactory:
    """Builds one vnode access pipe on the first matched packet.

    Shared per (physical node, group, direction): the factory carries
    only the flyweight profile and owner label; the concrete address —
    hence the pipe id ``2 * addr`` (up) / ``2 * addr + 1`` (down) and
    name — is recovered from the rule that fired.
    """

    __slots__ = ("sim", "fw", "profile", "direction", "owner", "ledger")

    def __init__(
        self, sim, fw: Firewall, profile: ShapingProfile, direction: str,
        owner: str, ledger: _PipeLedger,
    ) -> None:
        self.sim = sim
        self.fw = fw
        self.profile = profile
        self.direction = direction
        self.owner = owner
        self.ledger = ledger

    def __call__(self, rule: Rule) -> DummynetPipe:
        if self.direction == DIR_OUT:
            addr = rule.src
            pipe = self.profile.up_pipe(self.sim, f"up/{addr}", self.owner)
            self.fw.register_lazy_pipe(2 * addr.value, pipe)
        else:
            addr = rule.dst
            pipe = self.profile.down_pipe(self.sim, f"down/{addr}", self.owner)
            self.fw.register_lazy_pipe(2 * addr.value + 1, pipe)
        self.ledger.materialize()
        return pipe


class _GroupPipeFactory:
    """Builds one inter-group delay pipe on the first matched packet.

    Shared per physical node: the latency is looked up from the spec's
    entry table by the rule's (src, dst) prefixes, so the factory adds
    no per-rule state.
    """

    __slots__ = ("sim", "owner", "latencies", "ledger")

    def __init__(self, sim, owner: str, latencies: Dict, ledger: _PipeLedger) -> None:
        self.sim = sim
        self.owner = owner
        self.latencies = latencies
        self.ledger = ledger

    def __call__(self, rule: Rule) -> DummynetPipe:
        latency = self.latencies[(rule.src, rule.dst)]
        pipe = DummynetPipe(
            self.sim,
            delay=latency,
            name=f"grp/{self.owner}/{rule.src}->{rule.dst}",
            owner=self.owner,
        )
        self.ledger.materialize()
        return pipe


class TopologyCompiler:
    """Deploys a :class:`TopologySpec` onto a :class:`Testbed`.

    ``lazy=None`` (default) follows the hot-path switch: pipes are
    deferred to first use unless ``REPRO_SLOW_PATH=1`` selects the
    eager reference path. ``lazy=False`` forces eager compilation (the
    seed behaviour — every pipe, name and libc built up front), which
    is what the topology benchmark measures against.
    """

    def __init__(
        self, spec: TopologySpec, testbed: Testbed, lazy: Optional[bool] = None
    ) -> None:
        spec.validate()
        self.spec = spec
        self.testbed = testbed
        self.lazy = (not SLOW_PATH) if lazy is None else lazy
        self.vnodes_by_group: Dict[str, List[VirtualNode]] = {}
        self.rules_installed = 0
        self.pipes_installed = 0
        registry = getattr(testbed.sim, "metrics", None) or NULL_REGISTRY
        self._ledger = _PipeLedger(registry)
        #: One interned flyweight profile per group.
        self._profiles: Dict[str, ShapingProfile] = {
            name: ShapingProfile(g.down_bw, g.up_bw, g.latency, g.plr)
            for name, g in spec.groups.items()
        }
        #: group name -> hosting pnodes in first-hosting order (the
        #: prefix coverage index for group-rule installation).
        self._group_pnodes: Dict[str, Dict] = {}
        #: (id(pnode), group) -> shared (up, down) access factories,
        #: with a last-hit memo for the block-contiguous common case.
        self._access_factories: Dict[tuple, tuple] = {}
        self._fact_key: Optional[tuple] = None
        self._fact: Optional[tuple] = None
        #: id(pnode) -> shared group-delay factory.
        self._group_factories: Dict[int, _GroupPipeFactory] = {}

    # ------------------------------------------------------------------
    def deploy(self, placement: str = PLACEMENT_BLOCK) -> List[VirtualNode]:
        """Create all virtual nodes and install all emulation rules.

        All groups are deployed in a single placement pass so block
        placement keeps each group on contiguous physical nodes (the
        paper's "32 virtual nodes per physical node" style). Placement
        streams: each vnode's rules are installed as it is created.
        """
        self.vnodes_by_group = {name: [] for name in self.spec.groups}
        self._group_pnodes = {name: {} for name in self.spec.groups}
        groups = self.spec.groups
        created: List[VirtualNode] = []
        # The bulk build allocates no reference cycles (vnodes, rules
        # and blocks are all acyclic and freed by refcounting), but the
        # cyclic collector's full-heap passes scale with the number of
        # live objects and dominate large builds. Pause it for the
        # duration; the eager reference path keeps the seed behaviour.
        pause_gc = self.lazy and gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            # Stream in placement order. Consecutive vnodes almost
            # always share a group and physical node (block placement),
            # so the per-vnode group/pnode bookkeeping is memoised on
            # change.
            group = None
            group_list = group_pnodes = None
            last_group_name = None
            last_pnode = None
            install = self._install_vnode_rules
            for vnode in self.testbed.place(
                self.spec.iter_placements(),
                count=self.spec.total_nodes(),
                placement=placement,
                name_prefix="node",
                block_register=self.lazy,
            ):
                name = vnode.group
                if name is not last_group_name:
                    last_group_name = name
                    group = groups[name]
                    group_list = self.vnodes_by_group[name]
                    group_pnodes = self._group_pnodes[name]
                    last_pnode = None
                group_list.append(vnode)
                if vnode.pnode is not last_pnode:
                    last_pnode = vnode.pnode
                    group_pnodes[last_pnode] = None
                install(vnode, group)
                created.append(vnode)
            if self.lazy:
                self._ledger.defer(2 * len(created))
            self._install_group_rules()
        finally:
            if pause_gc:
                gc.enable()
        return created

    def _install_vnode_rules(self, vnode: VirtualNode, group: GroupSpec) -> None:
        """Two rules (and, eagerly or lazily, two pipes) per vnode."""
        pnode = vnode.pnode
        fw = pnode.stack.fw
        addr = vnode.address
        number = VNODE_RULE_BASE + 2 * pnode.folding_ratio
        if self.lazy:
            # The pipe deferral is accounted in bulk by deploy();
            # per-vnode ledger calls would be pure loop overhead.
            up_f, down_f = self._factories_for(pnode, group)
            fw.add_access_pair(addr, number, up_factory=up_f, down_factory=down_f)
        else:
            sim = self.testbed.sim
            profile = self._profiles[group.name]
            pipe_base = 2 * addr.value  # unique, stable pipe ids per address
            up = profile.up_pipe(sim, f"up/{addr}", pnode.name)
            down = profile.down_pipe(sim, f"down/{addr}", pnode.name)
            fw.add_pipe(pipe_base, up)
            fw.add_pipe(pipe_base + 1, down)
            fw.add_access_pair(addr, number, up_pipe=up, down_pipe=down)
            # The eager reference keeps the seed's footprint: name
            # string and libc built at deploy time.
            _ = vnode.name
            _ = vnode.libc
        self.pipes_installed += 2
        self.rules_installed += 2

    def _factories_for(self, pnode, group: GroupSpec):
        key = (id(pnode), group.name)
        if key == self._fact_key:
            return self._fact
        factories = self._access_factories.get(key)
        if factories is None:
            profile = self._profiles[group.name]
            sim = self.testbed.sim
            fw = pnode.stack.fw
            factories = (
                _AccessPipeFactory(sim, fw, profile, DIR_OUT, pnode.name, self._ledger),
                _AccessPipeFactory(sim, fw, profile, DIR_IN, pnode.name, self._ledger),
            )
            self._access_factories[key] = factories
        self._fact_key = key
        self._fact = factories
        return factories

    def _install_group_rules(self) -> None:
        """Outgoing inter-group delay rules on hosting physical nodes.

        A physical node needs the rule for a latency entry iff the
        entry's source prefix covers one of its hosted vnodes. Instead
        of scanning every hosted address per (pnode x entry) — the old
        O(entries x vnodes) pass — the coverage is classified per
        (entry, group) once: CIDR prefixes either nest or are disjoint,
        so a source prefix that contains a group's prefix covers every
        hosting pnode of that group, a prefix strictly inside it needs
        a per-vnode check for just that group, and anything else is
        disjoint.
        """
        sim = self.testbed.sim
        entries = list(self.spec.iter_latency_entries())
        if not entries:
            return
        covered: List[set] = []
        for src_net, _dst_net, _latency in entries:
            pnodes: set = set()
            for gname, group in self.spec.groups.items():
                hosting = self._group_pnodes.get(gname)
                if not hosting:
                    continue
                if src_net.contains_network(group.prefix):
                    pnodes.update(hosting)
                elif group.prefix.contains_network(src_net):
                    pnodes.update(
                        v.pnode
                        for v in self.vnodes_by_group[gname]
                        if src_net.contains_value(v.address.value)
                    )
            covered.append(pnodes)
        lazy = self.lazy
        for pnode in self.testbed.pnodes:
            if not pnode.folding_ratio:
                continue
            number = GROUP_RULE_BASE
            fw = pnode.stack.fw
            for (src_net, dst_net, latency), pset in zip(entries, covered):
                if pnode not in pset:
                    continue
                if lazy:
                    factory = self._group_factories.get(id(pnode))
                    if factory is None:
                        factory = _GroupPipeFactory(
                            sim, pnode.name, self.spec._latencies, self._ledger
                        )
                        self._group_factories[id(pnode)] = factory
                    fw.add(
                        ACTION_PIPE, number=number, pipe_factory=factory,
                        src=src_net, dst=dst_net, direction=DIR_OUT,
                    )
                    self._ledger.defer(1)
                else:
                    pipe = DummynetPipe(
                        sim,
                        delay=latency,
                        name=f"grp/{pnode.name}/{src_net}->{dst_net}",
                        owner=pnode.name,
                    )
                    fw.add(
                        ACTION_PIPE, number=number, pipe=pipe,
                        src=src_net, dst=dst_net, direction=DIR_OUT,
                    )
                number += 1
                self.pipes_installed += 1
                self.rules_installed += 1

    # ------------------------------------------------------------------
    def access_pipes(self, vnode: VirtualNode):
        """The vnode's (up, down) access pipes, materialising any
        still pending — the control-plane hook for runtime
        reconfiguration (``ipfw pipe N config`` style), which must work
        whether or not a packet has ever matched the vnode's rules.
        """
        fw = vnode.pnode.stack.fw
        addr = vnode.address
        base = 2 * addr.value
        out: List[DummynetPipe] = []
        for pipe_id, src, dst, direction in (
            (base, addr, None, DIR_OUT),
            (base + 1, None, addr, DIR_IN),
        ):
            try:
                out.append(fw.pipe(pipe_id))
            except FirewallError:
                rule = next(
                    r
                    for r in fw.rules_for(src=src, dst=dst)
                    if r.action == ACTION_PIPE and r.direction == direction
                )
                out.append(fw.materialize(rule))
        return out[0], out[1]

    def vnodes(self, group: str) -> List[VirtualNode]:
        try:
            return list(self.vnodes_by_group[group])
        except KeyError:
            raise TopologyError(f"no deployed group {group!r}") from None

    def all_vnodes(self) -> List[VirtualNode]:
        out: List[VirtualNode] = []
        for vnodes in self.vnodes_by_group.values():
            out.extend(vnodes)
        return out

    def stats(self) -> Dict[str, int]:
        """Deterministic footprint (vnodes/rules/pipes as *defined*)
        plus the wall-side lazy-pipe ledger: ``pipes_materialized`` /
        ``lazy_pipes_pending`` report how much Dummynet state actually
        exists — what telemetry ``/health`` surfaces for capacity
        planning. The ledger keys are wall-only diagnostics and must
        never enter deterministic output comparisons.
        """
        return {
            "vnodes": sum(len(v) for v in self.vnodes_by_group.values()),
            "rules": self.rules_installed,
            "pipes": self.pipes_installed,
            "pipes_materialized": self.pipes_installed - self._ledger.pending,
            "lazy_pipes_pending": self._ledger.pending,
        }


def compile_topology(
    spec: TopologySpec,
    testbed: Testbed,
    placement: str = PLACEMENT_BLOCK,
    lazy: Optional[bool] = None,
) -> TopologyCompiler:
    """One-shot helper: deploy ``spec`` onto ``testbed`` and return the
    compiler (for group lookups and stats)."""
    compiler = TopologyCompiler(spec, testbed, lazy=lazy)
    compiler.deploy(placement=placement)
    return compiler
