"""Compile a topology spec into decentralized per-node emulation state.

For every physical node the compiler installs exactly what the paper
describes for the node hosting 10.1.3.207:

* two rules (and two pipes) per hosted virtual node — outgoing traffic
  through the node's upload pipe, incoming traffic through its download
  pipe, both carrying the access-link latency and loss rate;
* one outgoing delay rule per inter-group latency entry whose source
  prefix covers at least one hosted virtual node ("the opposite rule
  being on the nodes hosting" the other group).

Rule numbering: vnode rules from 1000 upward (two per vnode), group
latency rules from 100000 upward, so per-node shaping happens before
group delays — matching the example rule list in the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TopologyError
from repro.net.ipfw import ACTION_PIPE, DIR_IN, DIR_OUT
from repro.net.pipe import DummynetPipe
from repro.topology.spec import GroupSpec, TopologySpec
from repro.virt.deployment import PLACEMENT_BLOCK, Testbed
from repro.virt.vnode import VirtualNode

#: Rule number bases.
VNODE_RULE_BASE = 1000
GROUP_RULE_BASE = 100000


class TopologyCompiler:
    """Deploys a :class:`TopologySpec` onto a :class:`Testbed`."""

    def __init__(self, spec: TopologySpec, testbed: Testbed) -> None:
        spec.validate()
        self.spec = spec
        self.testbed = testbed
        self.vnodes_by_group: Dict[str, List[VirtualNode]] = {}
        self.rules_installed = 0
        self.pipes_installed = 0

    # ------------------------------------------------------------------
    def deploy(self, placement: str = PLACEMENT_BLOCK) -> List[VirtualNode]:
        """Create all virtual nodes and install all emulation rules.

        All groups are deployed in a single placement pass so block
        placement keeps each group on contiguous physical nodes (the
        paper's "32 virtual nodes per physical node" style).
        """
        created = self.testbed.deploy(
            self.spec.all_addresses(),
            placement=placement,
            name_prefix="node",
            group_of=self.spec.group_of,
        )
        self.vnodes_by_group = {name: [] for name in self.spec.groups}
        for vnode in created:
            group = self.spec.groups[vnode.group]
            self.vnodes_by_group[group.name].append(vnode)
            self._install_vnode_rules(vnode, group)
        self._install_group_rules()
        return created

    def _install_vnode_rules(self, vnode: VirtualNode, group: GroupSpec) -> None:
        """Two pipes + two rules per hosted virtual node."""
        sim = self.testbed.sim
        fw = vnode.pnode.stack.fw
        addr = vnode.address
        pipe_base = 2 * addr.value  # unique, stable pipe ids per address
        up = DummynetPipe(
            sim,
            bandwidth=group.up_bw,
            delay=group.latency,
            plr=group.plr,
            name=f"up/{addr}",
            owner=vnode.pnode.name,
        )
        down = DummynetPipe(
            sim,
            bandwidth=group.down_bw,
            delay=group.latency,
            plr=group.plr,
            name=f"down/{addr}",
            owner=vnode.pnode.name,
        )
        fw.add_pipe(pipe_base, up)
        fw.add_pipe(pipe_base + 1, down)
        number = VNODE_RULE_BASE + 2 * len(vnode.pnode.vnodes)
        fw.add(ACTION_PIPE, number=number, pipe=up, src=addr, direction=DIR_OUT)
        fw.add(ACTION_PIPE, number=number + 1, pipe=down, dst=addr, direction=DIR_IN)
        self.pipes_installed += 2
        self.rules_installed += 2

    def _install_group_rules(self) -> None:
        """Outgoing inter-group delay rules on hosting physical nodes."""
        sim = self.testbed.sim
        for pnode in self.testbed.pnodes:
            hosted_values = [v.address.value for v in pnode.vnodes.values()]
            if not hosted_values:
                continue
            number = GROUP_RULE_BASE
            for src_net, dst_net, latency in self.spec.iter_latency_entries():
                if not any(src_net.contains_value(v) for v in hosted_values):
                    continue
                pipe = DummynetPipe(
                    sim,
                    delay=latency,
                    name=f"grp/{pnode.name}/{src_net}->{dst_net}",
                    owner=pnode.name,
                )
                pnode.stack.fw.add(
                    ACTION_PIPE,
                    number=number,
                    pipe=pipe,
                    src=src_net,
                    dst=dst_net,
                    direction=DIR_OUT,
                )
                number += 1
                self.pipes_installed += 1
                self.rules_installed += 1

    # ------------------------------------------------------------------
    def vnodes(self, group: str) -> List[VirtualNode]:
        try:
            return list(self.vnodes_by_group[group])
        except KeyError:
            raise TopologyError(f"no deployed group {group!r}") from None

    def all_vnodes(self) -> List[VirtualNode]:
        out: List[VirtualNode] = []
        for vnodes in self.vnodes_by_group.values():
            out.extend(vnodes)
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "vnodes": sum(len(v) for v in self.vnodes_by_group.values()),
            "rules": self.rules_installed,
            "pipes": self.pipes_installed,
        }


def compile_topology(
    spec: TopologySpec,
    testbed: Testbed,
    placement: str = PLACEMENT_BLOCK,
) -> TopologyCompiler:
    """One-shot helper: deploy ``spec`` onto ``testbed`` and return the
    compiler (for group lookups and stats)."""
    compiler = TopologyCompiler(spec, testbed)
    compiler.deploy(placement=placement)
    return compiler
