"""Canned topologies and access-link profiles from the paper.

* :func:`bittorrent_profile` — the experiment conditions of the
  BitTorrent study: "a download rate of 2 mbps, an upload rate of
  128 kbps, and a latency of 30 ms, reproducing the conditions of a DSL
  connection";
* :func:`uniform_swarm` — N identical nodes with that (or any) profile;
* :func:`figure7_topology` — the exact hierarchical topology of
  Figure 7 (three DSL /24 subnets inside 10.1.0.0/16, plus the 10.2/16
  and 10.3/16 groups, with 100 ms / 400 ms / 600 ms / 1 s latencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addr import IPv4Network
from repro.topology.spec import TopologySpec
from repro.units import kbps, mbps, ms


@dataclass(frozen=True)
class LinkProfile:
    """An access-link profile (bandwidths in bytes/s, latency in s)."""

    down_bw: Optional[float]
    up_bw: Optional[float]
    latency: float
    plr: float = 0.0


def bittorrent_profile() -> LinkProfile:
    """The DSL profile used for all BitTorrent experiments in the paper."""
    return LinkProfile(down_bw=mbps(2), up_bw=kbps(128), latency=ms(30))


def adsl_8m() -> LinkProfile:
    """Figure 7's fast DSL class (8 Mbps / 1 Mbps, 20 ms)."""
    return LinkProfile(down_bw=mbps(8), up_bw=mbps(1), latency=ms(20))


def adsl_512k() -> LinkProfile:
    """Figure 7's mid DSL class (512 kbps / 128 kbps, 40 ms)."""
    return LinkProfile(down_bw=kbps(512), up_bw=kbps(128), latency=ms(40))


def modem_56k() -> LinkProfile:
    """Figure 7's modem class (56 kbps / 33.6 kbps, 100 ms)."""
    return LinkProfile(down_bw=kbps(56), up_bw=kbps(33.6), latency=ms(100))


def uniform_swarm(
    count: int,
    profile: Optional[LinkProfile] = None,
    prefix: str = "10.0.0.0/16",
    name: str = "swarm",
) -> TopologySpec:
    """N identical nodes in one group — the BitTorrent experiments'
    network (every node sees the same DSL conditions)."""
    profile = profile if profile is not None else bittorrent_profile()
    spec = TopologySpec(name=name)
    spec.add_group(
        "peers",
        prefix,
        count,
        down_bw=profile.down_bw,
        up_bw=profile.up_bw,
        latency=profile.latency,
        plr=profile.plr,
    )
    return spec


def figure7_topology(scale: float = 1.0) -> TopologySpec:
    """The paper's Figure 7 topology.

    ``scale`` shrinks group sizes (e.g. 0.04 gives 10/10/10/40/40 nodes)
    for tests; the network structure and latencies are unchanged.
    """

    def n(count: int) -> int:
        return max(1, round(count * scale))

    spec = TopologySpec(name="figure7")
    spec.add_group(
        "modem", "10.1.1.0/24", n(250),
        down_bw=kbps(56), up_bw=kbps(33.6), latency=ms(100),
    )
    spec.add_group(
        "dsl-mid", "10.1.2.0/24", n(250),
        down_bw=kbps(512), up_bw=kbps(128), latency=ms(40),
    )
    spec.add_group(
        "dsl-fast", "10.1.3.0/24", n(250),
        down_bw=mbps(8), up_bw=mbps(1), latency=ms(20),
    )
    spec.add_group(
        "group2", "10.2.0.0/16", n(1000),
        down_bw=mbps(10), up_bw=mbps(10), latency=ms(5),
    )
    spec.add_group(
        "group3", "10.3.0.0/16", n(1000),
        down_bw=mbps(1), up_bw=mbps(1), latency=ms(10),
    )

    # 100 ms between the DSL subnets of 10.1.0.0/16.
    spec.add_latency("modem", "dsl-mid", ms(100))
    spec.add_latency("modem", "dsl-fast", ms(100))
    spec.add_latency("dsl-mid", "dsl-fast", ms(100))

    # Continental latencies between the /16 super-groups (Figure 7's
    # 400 ms / 600 ms / 1 s edges). Expressed on the /16 prefixes so one
    # rule covers all of 10.1.0.0/16, exactly as the paper's rule list.
    parent = IPv4Network("10.1.0.0/16")
    spec.add_latency(parent, "group2", ms(400))
    spec.add_latency(parent, "group3", ms(600))
    spec.add_latency("group2", "group3", 1.0)
    return spec
