"""The edge-centric network model (paper, "Network Emulation").

P2PLab "models the Internet from the point of view of the participating
node": each virtual node has an access link to its ISP (bandwidth up
and down, latency, loss), and *groups* of nodes (same ISP, country or
continent) are separated by additional latency. There is no modeled
core network — that is the paper's deliberate contrast with ModelNet.

* :mod:`repro.topology.spec` — declarative description of groups and
  inter-group latencies;
* :mod:`repro.topology.compiler` — turns a spec into decentralized
  per-physical-node IPFW rules and Dummynet pipes;
* :mod:`repro.topology.presets` — DSL profiles, the paper's Figure 7
  topology, and the BitTorrent experiment profile.
"""

from repro.topology.compiler import TopologyCompiler, compile_topology
from repro.topology.spec import GroupSpec, TopologySpec

__all__ = ["GroupSpec", "TopologySpec", "TopologyCompiler", "compile_topology"]
