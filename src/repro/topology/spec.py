"""Declarative topology specification.

A :class:`TopologySpec` lists *groups* — sets of nodes drawn from one
IP prefix and sharing one access-link profile — plus pairwise one-way
latencies between groups (or between arbitrary prefixes, which lets a
hierarchy like the paper's Figure 7 be expressed compactly: the three
DSL /24 subnets have 100 ms pairwise latency, while their /16 parent
has a single 400 ms rule towards another /16).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import TopologyError
from repro.net.addr import IPv4Address, IPv4Network, network


@dataclass(frozen=True)
class GroupSpec:
    """One group of nodes with a common access-link profile.

    Attributes
    ----------
    name:
        Group identifier (e.g. ``"dsl-fast"``).
    prefix:
        IP prefix node addresses are allocated from.
    count:
        Number of nodes in the group.
    down_bw / up_bw:
        Access-link bandwidth in bytes/second towards / from the node;
        ``None`` = unshaped. Symmetric links use the same value twice.
    latency:
        Access-link one-way latency (applied to both the node's
        outgoing and incoming pipes, as in the paper's decomposition
        where 10.1.3.207's 20 ms appears once per traversal direction).
    plr:
        Packet loss rate on the access link.
    """

    name: str
    prefix: IPv4Network
    count: int
    down_bw: Optional[float] = None
    up_bw: Optional[float] = None
    latency: float = 0.0
    plr: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise TopologyError(f"group {self.name!r}: negative count")
        if self.count >= self.prefix.num_addresses - 1:
            raise TopologyError(
                f"group {self.name!r}: {self.count} nodes do not fit in {self.prefix}"
            )

    def addresses(self) -> List[IPv4Address]:
        """The node addresses of this group (host 1 .. count)."""
        return list(self.iter_addresses())

    def iter_addresses(self) -> Iterator[IPv4Address]:
        """Generate the node addresses (host 1 .. count) one at a time —
        the streaming form: a million-node group never needs to exist
        as a list. Values are range-checked once at construction
        (``__post_init__``), so the fast wrap-only constructor applies.
        """
        base = self.prefix._net
        from_value = IPv4Address.from_value
        for value in range(base + 1, base + 1 + self.count):
            yield from_value(value)


class TopologySpec:
    """A set of groups plus inter-group latency entries."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.groups: Dict[str, GroupSpec] = {}
        # (src_prefix, dst_prefix) -> one-way latency seconds
        self._latencies: Dict[Tuple[IPv4Network, IPv4Network], float] = {}

    # ------------------------------------------------------------------
    def add_group(
        self,
        name: str,
        prefix: Union[str, IPv4Network],
        count: int,
        down_bw: Optional[float] = None,
        up_bw: Optional[float] = None,
        latency: float = 0.0,
        plr: float = 0.0,
    ) -> GroupSpec:
        # Interned: the group name is shared by every vnode record and
        # rule bucket of the group rather than copied around.
        name = sys.intern(name)
        if name in self.groups:
            raise TopologyError(f"duplicate group {name!r}")
        prefix = network(prefix)
        for other in self.groups.values():
            if prefix == other.prefix:
                raise TopologyError(
                    f"group {name!r} reuses prefix {prefix} of {other.name!r}"
                )
        group = GroupSpec(name, prefix, count, down_bw, up_bw, latency, plr)
        self.groups[name] = group
        return group

    def _resolve_prefix(self, spec: Union[str, IPv4Network]) -> IPv4Network:
        if isinstance(spec, str) and spec in self.groups:
            return self.groups[spec].prefix
        return network(spec)

    def add_latency(
        self,
        src: Union[str, IPv4Network],
        dst: Union[str, IPv4Network],
        latency: float,
        symmetric: bool = True,
    ) -> None:
        """Add one-way latency from ``src`` to ``dst`` prefixes.

        Arguments may be group names or raw prefixes (for hierarchy
        levels above the groups). ``symmetric`` also installs the
        reverse entry, which is the common case.
        """
        if latency < 0:
            raise TopologyError(f"negative latency {latency}")
        src_net, dst_net = self._resolve_prefix(src), self._resolve_prefix(dst)
        if src_net == dst_net:
            raise TopologyError(f"latency from {src_net} to itself")
        self._latencies[(src_net, dst_net)] = latency
        if symmetric:
            self._latencies[(dst_net, src_net)] = latency

    # ------------------------------------------------------------------
    @property
    def latencies(self) -> Dict[Tuple[IPv4Network, IPv4Network], float]:
        return dict(self._latencies)

    def total_nodes(self) -> int:
        return sum(g.count for g in self.groups.values())

    def all_addresses(self) -> List[IPv4Address]:
        """All node addresses, in group insertion order."""
        return list(self.iter_addresses())

    def iter_addresses(self) -> Iterator[IPv4Address]:
        """All node addresses in group insertion order, streamed."""
        for group in self.groups.values():
            yield from group.iter_addresses()

    def hierarchical(self) -> bool:
        """Do any two group prefixes nest (hierarchy)?"""
        groups = list(self.groups.values())
        for i, a in enumerate(groups):
            for b in groups[i + 1 :]:
                if a.prefix.overlaps(b.prefix):
                    return True
        return False

    def iter_placements(self) -> Iterator[Tuple[IPv4Address, Optional[str]]]:
        """``(address, group-name)`` pairs in placement order, streamed.

        The streaming equivalent of ``zip(all_addresses(), map(group_of,
        all_addresses()))`` without the per-address linear group scan:
        when no group prefixes nest, an address generated by a group
        belongs to that group. With nesting (hierarchy) the most
        specific prefix wins, so the slow resolution is kept for
        exactly that case.
        """
        if self.hierarchical():
            for group in self.groups.values():
                for addr in group.iter_addresses():
                    yield addr, self.group_of(addr)
        else:
            for group in self.groups.values():
                name = group.name
                for addr in group.iter_addresses():
                    yield addr, name

    def group_of(self, addr: IPv4Address) -> Optional[str]:
        """The most specific group whose prefix contains ``addr``."""
        best: Optional[GroupSpec] = None
        for group in self.groups.values():
            if addr in group.prefix and (
                best is None or group.prefix.prefixlen > best.prefix.prefixlen
            ):
                best = group
        return best.name if best is not None else None

    def validate(self) -> None:
        """Check group prefixes for conflicts (overlap is allowed only
        for distinct prefix lengths, i.e. hierarchy, not for peers)."""
        groups = list(self.groups.values())
        for i, a in enumerate(groups):
            for b in groups[i + 1 :]:
                if a.prefix.prefixlen == b.prefix.prefixlen and a.prefix.overlaps(b.prefix):
                    raise TopologyError(
                        f"groups {a.name!r} and {b.name!r} overlap: "
                        f"{a.prefix} vs {b.prefix}"
                    )

    def iter_latency_entries(self) -> Iterator[Tuple[IPv4Network, IPv4Network, float]]:
        for (src, dst), lat in self._latencies.items():
            yield src, dst, lat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopologySpec({self.name!r}, groups={len(self.groups)}, "
            f"nodes={self.total_nodes()}, latency_entries={len(self._latencies)})"
        )
