"""Pre-flight suitability checks for an emulation host.

The paper's host study ends in operational rules: many concurrent
processes are fine (Figure 1), "we will have to make sure that we are
in experimental conditions where virtual memory is not needed"
(Figure 2), and the 4BSD scheduler is the fair choice (Figure 3 — "In
the following experiments, we used the 4BSD scheduler in P2PLab").
This module encodes those rules as an advisory API an experimenter can
run before committing to a folding plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hostos.memory import MemoryModel, POLICY_THRASH
from repro.hostos.scheduler.ule import FREEBSD6_BIAS_SIGMA

#: Fairness spreads measured by the Figure 3 reproduction.
SCHEDULER_FAIRNESS_SPREAD = {
    "4bsd": 0.001,
    "linux26": 0.001,
    "ule": 0.23,
}

#: Spread beyond which per-node timing results should not be trusted.
FAIRNESS_SPREAD_LIMIT = 0.05


@dataclass(frozen=True)
class SuitabilityReport:
    """Outcome of a pre-flight check."""

    vnodes_per_pnode: int
    memory_demand_mb: float
    ram_mb: float
    fits_in_memory: bool
    expected_memory_slowdown: float
    scheduler: str
    scheduler_fair: bool
    suitable: bool
    notes: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        verdict = "SUITABLE" if self.suitable else "NOT SUITABLE"
        lines = [
            f"{verdict}: {self.vnodes_per_pnode} vnodes/pnode, "
            f"{self.memory_demand_mb:.0f}/{self.ram_mb:.0f} MB, "
            f"scheduler {self.scheduler}",
        ]
        lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def check_suitability(
    vnodes_per_pnode: int,
    memory_per_vnode_mb: float,
    ram_mb: float = 2048.0,
    scheduler: str = "4bsd",
    os_overhead_mb: float = 256.0,
) -> SuitabilityReport:
    """Apply the paper's three host rules to a folding plan."""
    notes: List[str] = []

    # Rule 1 (Figure 1): raw process count is not a concern.
    if vnodes_per_pnode > 1000:
        notes.append(
            f"{vnodes_per_pnode} processes exceeds the studied range (1000); "
            "scheduler behaviour unvalidated"
        )

    # Rule 2 (Figure 2): stay out of swap.
    demand = os_overhead_mb + vnodes_per_pnode * memory_per_vnode_mb
    memory = MemoryModel(ram_mb=ram_mb, policy=POLICY_THRASH)
    slowdown = memory.slowdown(demand)
    fits = not memory.swapping(demand)
    if not fits:
        notes.append(
            f"working set {demand:.0f} MB exceeds {ram_mb:.0f} MB RAM: "
            f"expect ~{slowdown:.1f}x execution-time inflation "
            "(paper: 'make sure ... virtual memory is not needed')"
        )

    # Rule 3 (Figure 3): fair scheduler required.
    key = scheduler.lower()
    spread = SCHEDULER_FAIRNESS_SPREAD.get(key)
    if spread is None:
        notes.append(f"unknown scheduler {scheduler!r}; fairness unvalidated")
        fair = False
    else:
        fair = spread <= FAIRNESS_SPREAD_LIMIT
        if not fair:
            notes.append(
                f"{scheduler} fairness spread ~{spread:.2f} exceeds "
                f"{FAIRNESS_SPREAD_LIMIT}; the paper uses 4BSD for its experiments"
            )

    return SuitabilityReport(
        vnodes_per_pnode=vnodes_per_pnode,
        memory_demand_mb=demand,
        ram_mb=ram_mb,
        fits_in_memory=fits,
        expected_memory_slowdown=slowdown,
        scheduler=scheduler,
        scheduler_fair=fair,
        suitable=fits and fair and vnodes_per_pnode <= 1000,
        notes=notes,
    )
