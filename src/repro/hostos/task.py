"""Tasks: units of CPU work with a memory footprint."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchedulerError


class Task:
    """One process in the scheduler study.

    Attributes
    ----------
    work:
        CPU seconds required at full speed (excluding overheads).
    memory_mb:
        Resident set size while the task is alive.
    cold_penalty:
        Extra CPU seconds paid for cold caches / program setup; the
        machine computes it at submission (first instances pay more,
        later ones find the program text and data warm — the paper's
        explanation for Figure 1's slight decrease).
    """

    __slots__ = (
        "name",
        "work",
        "memory_mb",
        "remaining",
        "cold_penalty",
        "service_time",
        "submit_time",
        "start_time",
        "finish_time",
        "preemptions",
        "cpu_affinity",
        "burst",
        "sleep",
        "_burst_left",
        "run_time",
        "sleep_time",
        "wakeups",
    )

    def __init__(
        self,
        name: str,
        work: float,
        memory_mb: float = 2.0,
        burst: Optional[float] = None,
        sleep: float = 0.0,
    ) -> None:
        """
        ``burst``/``sleep`` describe interactive behaviour: the task
        computes for ``burst`` seconds, then sleeps (blocked on I/O or
        the user) for ``sleep`` seconds, repeating until ``work`` CPU
        seconds are done. ``burst=None`` (default) is a pure CPU hog —
        the paper's workloads.
        """
        if work <= 0:
            raise SchedulerError(f"task {name!r}: work must be positive")
        if memory_mb < 0:
            raise SchedulerError(f"task {name!r}: negative memory")
        if burst is not None and burst <= 0:
            raise SchedulerError(f"task {name!r}: burst must be positive")
        if sleep < 0:
            raise SchedulerError(f"task {name!r}: negative sleep")
        self.name = name
        self.work = work
        self.memory_mb = memory_mb
        self.remaining = work
        self.cold_penalty = 0.0
        self.service_time = 0.0
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.preemptions = 0
        self.cpu_affinity: Optional[int] = None
        self.burst = burst
        self.sleep = sleep
        self._burst_left = burst
        self.run_time = 0.0
        self.sleep_time = 0.0
        self.wakeups = 0

    @property
    def interactive_ratio(self) -> float:
        """Fraction of this task's lifetime spent voluntarily sleeping
        — what ULE's interactivity scoring estimates."""
        total = self.run_time + self.sleep_time
        return self.sleep_time / total if total > 0 else 0.0

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else f"remaining={self.remaining:.3f}"
        return f"Task({self.name!r}, work={self.work}, {state})"


@dataclass(frozen=True)
class TaskResult:
    """Measured outcome of one task.

    ``execution_time`` is the quantity the paper's figures plot: the
    per-process execution time as measured from inside the process
    (CPU service including paging stalls and its cold-start cost).
    ``turnaround`` is submission-to-finish wall time (Figure 3's CDF
    plots turnaround of simultaneously started tasks).
    """

    name: str
    execution_time: float
    turnaround: float
    start_time: float
    finish_time: float
    preemptions: int

    @staticmethod
    def from_task(task: Task) -> "TaskResult":
        if task.finish_time is None or task.submit_time is None or task.start_time is None:
            raise SchedulerError(f"task {task.name!r} has not finished")
        return TaskResult(
            name=task.name,
            execution_time=task.service_time,
            turnaround=task.finish_time - task.submit_time,
            start_time=task.start_time,
            finish_time=task.finish_time,
            preemptions=task.preemptions,
        )
