"""Memory model: RAM, swap, and per-OS paging behaviour.

Figure 2 of the paper contrasts two behaviours once the aggregate
working set exceeds physical memory:

* **FreeBSD** ("thrash" policy): "the execution time increases a lot as
  soon as virtual memory (swap) is used" — modeled as a progress
  slowdown growing linearly with the overcommit ratio;
* **Linux 2.6** ("graceful" policy): "the scheduler and/or the memory
  management prevent the execution time from increasing" — modeled as a
  near-flat slowdown with a small residual paging cost.

The model is deliberately first-order: it reproduces where the knee
sits (aggregate demand = RAM) and the post-knee growth rate, which is
all the figure shows.
"""

from __future__ import annotations

from repro.errors import SchedulerError

POLICY_THRASH = "thrash"      # FreeBSD in the paper's experiment
POLICY_GRACEFUL = "graceful"  # Linux 2.6

#: Post-knee slowdown per unit of overcommit for the thrash policy,
#: calibrated so 50 matrix processes on 2 GB land near the paper's
#: ~8x execution-time inflation.
THRASH_FACTOR = 3.7

#: Residual paging cost for the graceful policy (near-flat curve).
GRACEFUL_FACTOR = 0.02


class MemoryModel:
    """Computes the machine-wide progress slowdown from memory demand."""

    def __init__(
        self,
        ram_mb: float = 2048.0,
        policy: str = POLICY_THRASH,
        thrash_factor: float = THRASH_FACTOR,
        graceful_factor: float = GRACEFUL_FACTOR,
    ) -> None:
        if ram_mb <= 0:
            raise SchedulerError(f"ram_mb must be positive, got {ram_mb}")
        if policy not in (POLICY_THRASH, POLICY_GRACEFUL):
            raise SchedulerError(f"unknown memory policy {policy!r}")
        self.ram_mb = ram_mb
        self.policy = policy
        self.thrash_factor = thrash_factor
        self.graceful_factor = graceful_factor

    def slowdown(self, demand_mb: float) -> float:
        """Progress slowdown factor (>= 1) at the given resident demand."""
        overcommit = (demand_mb - self.ram_mb) / self.ram_mb
        if overcommit <= 0.0:
            return 1.0
        if self.policy == POLICY_THRASH:
            return 1.0 + self.thrash_factor * overcommit
        return 1.0 + self.graceful_factor * overcommit

    def swapping(self, demand_mb: float) -> bool:
        """Is virtual memory in use at this demand?"""
        return demand_mb > self.ram_mb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryModel({self.ram_mb:.0f} MB, {self.policy})"
