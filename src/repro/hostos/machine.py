"""A multi-CPU machine executing tasks under a pluggable scheduler.

Quantum-granularity discrete-event execution: a CPU picks a task,
runs it for the scheduler-granted slice (or until the task finishes),
charges context-switch overhead per dispatch, and hands the task back
to the scheduler. Memory pressure slows progress globally through the
:class:`~repro.hostos.memory.MemoryModel` (paging stalls affect every
runnable process), and a cold-start cost — largest for the first
instance of a program, amortized for later ones — reproduces the
slight per-process speedup the paper observed at high process counts
(Figure 1: "cache effects and costs that don't depend on the number of
processes").
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchedulerError
from repro.hostos.memory import MemoryModel
from repro.hostos.scheduler.base import Scheduler
from repro.hostos.task import Task, TaskResult

#: Direct + indirect cost of one context switch (cache refill included).
DEFAULT_CTX_SWITCH = 20e-6

#: Cold-start cost of the first instance of a program (cache/page-in of
#: program text); instance k pays DEFAULT_COLD_COST / k.
DEFAULT_COLD_COST = 0.04


class Machine:
    """One physical machine of the suitability study (dual-CPU Opteron)."""

    def __init__(
        self,
        sim,
        scheduler: Scheduler,
        ncpus: int = 2,
        memory: Optional[MemoryModel] = None,
        ctx_switch: float = DEFAULT_CTX_SWITCH,
        cold_cost: float = DEFAULT_COLD_COST,
    ) -> None:
        if ncpus < 1:
            raise SchedulerError(f"ncpus must be >= 1, got {ncpus}")
        self.sim = sim
        self.scheduler = scheduler
        self.ncpus = ncpus
        self.memory = memory if memory is not None else MemoryModel()
        self.ctx_switch = ctx_switch
        self.cold_cost = cold_cost
        self._cpu_busy = [False] * ncpus
        self._submitted = 0
        self._finished = 0
        self._demand_mb = 0.0
        self.results: List[TaskResult] = []
        self.swap_used = False
        scheduler.attach(self)

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Tasks submitted but not yet finished."""
        return self._submitted - self._finished

    @property
    def demand_mb(self) -> float:
        """Current resident memory demand of active tasks."""
        return self._demand_mb

    def submit(self, task: Task, at: float = 0.0) -> Task:
        """Submit a task at absolute time ``at`` (>= now)."""
        self._submitted += 1
        self.sim.schedule_at(max(at, self.sim.now), self._admit, task, self._submitted)
        return task

    def _admit(self, task: Task, index: int) -> None:
        task.submit_time = self.sim.now
        task.cold_penalty = self.cold_cost / index
        task.remaining = task.work + task.cold_penalty
        self._demand_mb += task.memory_mb
        if self.memory.swapping(self._demand_mb):
            self.swap_used = True
        self.scheduler.enqueue(task)
        self.kick()

    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Try to dispatch work onto every idle CPU."""
        for cpu in range(self.ncpus):
            if not self._cpu_busy[cpu]:
                self._dispatch(cpu)

    def _dispatch(self, cpu: int) -> None:
        task = self.scheduler.pick(cpu)
        if task is None:
            task = self.scheduler.steal(cpu)
        if task is None:
            return  # stay idle; enqueue()/kick() will retry
        self._cpu_busy[cpu] = True
        if task.start_time is None:
            task.start_time = self.sim.now
        slowdown = self.memory.slowdown(self._demand_mb)
        slice_s = self.scheduler.slice_for(task)
        # Wall time needed to finish at the current paging slowdown.
        run_for = task.remaining * slowdown
        if run_for > slice_s:
            run_for = slice_s
        if task.burst is not None:
            # Interactive tasks yield the CPU at their burst boundary.
            burst_wall = task._burst_left * slowdown
            if run_for > burst_wall:
                run_for = burst_wall
        self.sim.schedule(
            self.ctx_switch + run_for, self._quantum_end, cpu, task, run_for, slowdown
        )

    def _quantum_end(self, cpu: int, task: Task, ran: float, slowdown: float) -> None:
        task.service_time += ran
        task.run_time += ran
        progress = ran / slowdown
        task.remaining -= progress
        self._cpu_busy[cpu] = False
        if task.remaining <= 1e-12:
            task.remaining = 0.0
            task.finish_time = self.sim.now
            self._finished += 1
            self._demand_mb -= task.memory_mb
            self.results.append(TaskResult.from_task(task))
        elif task.burst is not None and (task._burst_left - progress) <= 1e-12:
            # Burst over: voluntarily sleep (I/O / think time).
            task._burst_left = task.burst
            task.sleep_time += task.sleep
            self.sim.schedule(task.sleep, self._wake, task)
        else:
            if task.burst is not None:
                task._burst_left -= progress
            task.preemptions += 1
            self.scheduler.enqueue(task, preempted=True)
        self._dispatch(cpu)
        # Freed memory may speed everyone up only at their next quantum
        # boundary — matching the model's quantum granularity.

    def _wake(self, task: Task) -> None:
        task.wakeups += 1
        self.scheduler.enqueue(task)
        self.kick()

    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return self._submitted > 0 and self._finished == self._submitted

    def utilization_window(self) -> float:
        """Wall time from first start to last finish across results."""
        if not self.results:
            return 0.0
        start = min(r.start_time for r in self.results)
        finish = max(r.finish_time for r in self.results)
        return finish - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.scheduler.name}, ncpus={self.ncpus}, "
            f"active={self.active_count}, finished={self._finished})"
        )
