"""The two benchmark programs of the paper's suitability study.

* the non-memory-intensive program "calculating Ackermann's function,
  requiring about 1.65 seconds to complete when run alone" (Figures 1
  and, with 5 s of work, 3);
* the memory-intensive program "doing simple operations on large
  matrices" (Figure 2).
"""

from __future__ import annotations

from repro.hostos.task import Task

#: Solo execution time of the Ackermann benchmark (paper: ~1.65 s).
ACKERMANN_SOLO_SECONDS = 1.65

#: Solo execution time of the fairness benchmark (paper: ~5 s).
FAIRNESS_SOLO_SECONDS = 5.0

#: Working set of one matrix-benchmark process. With 2 GB of RAM the
#: knee of Figure 2 then falls around 20 concurrent processes, matching
#: the figure's 5-50 process x-range.
MATRIX_MEMORY_MB = 100.0

#: Solo execution time of the matrix benchmark.
MATRIX_SOLO_SECONDS = 1.2


def ackermann_task(index: int, work: float = ACKERMANN_SOLO_SECONDS) -> Task:
    """A CPU-intensive, non-memory-intensive process."""
    return Task(name=f"ack{index}", work=work, memory_mb=2.0)


def fairness_task(index: int) -> Task:
    """The 5-second CPU-intensive program of the fairness experiment."""
    return Task(name=f"fair{index}", work=FAIRNESS_SOLO_SECONDS, memory_mb=2.0)


def matrix_task(index: int, memory_mb: float = MATRIX_MEMORY_MB) -> Task:
    """A CPU- and memory-intensive process (large-matrix operations)."""
    return Task(name=f"mat{index}", work=MATRIX_SOLO_SECONDS, memory_mb=memory_mb)
