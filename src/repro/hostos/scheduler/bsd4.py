"""The classic 4BSD scheduler model.

4BSD keeps a single global run queue ordered by decay-usage priorities.
For the paper's workloads — batches of identical CPU-bound processes —
the decayed-usage feedback keeps every process at the same priority, so
the observable behaviour is global round-robin: any free CPU serves the
queue head, service is uniform, and Figure 3's CDF is steep (all
instances finish within roughly one scheduling round of each other).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.hostos.scheduler.base import Scheduler
from repro.hostos.task import Task


class Bsd4Scheduler(Scheduler):
    """Global run queue, uniform slices."""

    def __init__(self, quantum: float = 0.1) -> None:
        super().__init__()
        self.quantum = quantum
        self._queue: Deque[Task] = deque()

    def enqueue(self, task: Task, preempted: bool = False) -> None:
        self._queue.append(task)

    def pick(self, cpu: int) -> Optional[Task]:
        return self._queue.popleft() if self._queue else None

    def steal(self, cpu: int) -> Optional[Task]:
        # A global queue means every pick already sees all work.
        return self.pick(cpu)

    def queue_lengths(self) -> list[int]:
        return [len(self._queue)]
