"""The Linux 2.6 O(1) scheduler model.

Per-CPU active/expired arrays with uniform timeslices, plus aggressive
idle stealing and frequent load balancing — which is why Figure 3 shows
Linux as the steepest CDF: per-CPU structure like ULE, but the strong
balancing keeps service uniform.

The active/expired pair is modeled explicitly: an expired quantum moves
the task to the expired array; when the active array drains the arrays
swap. This preserves O(1)'s epoch behaviour (every runnable task gets
exactly one slice per epoch).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.hostos.scheduler.base import Scheduler
from repro.hostos.task import Task


class Linux26Scheduler(Scheduler):
    """Per-CPU active/expired arrays, idle stealing."""

    def __init__(self, quantum: float = 0.1) -> None:
        super().__init__()
        self.quantum = quantum
        self._active: List[Deque[Task]] = []
        self._expired: List[Deque[Task]] = []

    def on_attach(self) -> None:
        assert self.machine is not None
        n = self.machine.ncpus
        self._active = [deque() for _ in range(n)]
        self._expired = [deque() for _ in range(n)]

    # ------------------------------------------------------------------
    def _shortest_cpu(self) -> int:
        lengths = [
            len(a) + len(e) for a, e in zip(self._active, self._expired)
        ]
        return min(range(len(lengths)), key=lengths.__getitem__)

    def enqueue(self, task: Task, preempted: bool = False) -> None:
        if preempted and task.cpu_affinity is not None:
            # Expired slice: back to this CPU's expired array.
            self._expired[task.cpu_affinity].append(task)
            return
        cpu = self._shortest_cpu()
        task.cpu_affinity = cpu
        self._active[cpu].append(task)

    def pick(self, cpu: int) -> Optional[Task]:
        active, expired = self._active[cpu], self._expired[cpu]
        if not active and expired:
            # Array swap: the expired epoch becomes the active one.
            self._active[cpu], self._expired[cpu] = expired, active
            active = expired
        if active:
            return active.popleft()
        return None

    def steal(self, cpu: int) -> Optional[Task]:
        """Idle balancing: pull from the busiest CPU's arrays."""
        best: Optional[Tuple[int, int]] = None
        for i in range(len(self._active)):
            if i == cpu:
                continue
            load = len(self._active[i]) + len(self._expired[i])
            if load > 1 and (best is None or load > best[1]):
                best = (i, load)
        if best is None:
            return None
        src = best[0]
        task = (
            self._active[src].pop()
            if self._active[src]
            else self._expired[src].pop()
        )
        task.cpu_affinity = cpu
        return task

    def queue_lengths(self) -> list[int]:
        return [
            len(a) + len(e) for a, e in zip(self._active, self._expired)
        ]
