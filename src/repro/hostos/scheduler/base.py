"""Scheduler interface used by :class:`repro.hostos.machine.Machine`.

The machine executes tasks in quanta; the scheduler decides which task
a free CPU runs next and how long its time slice is. Three hooks model
the structural differences the paper's Figure 3 exposes:

* queue topology (one global run queue vs per-CPU queues);
* balancing (periodic migration, idle stealing, or none);
* per-task service bias (ULE's interactivity/priority scoring gave
  persistent advantages to some identical CPU hogs; 4BSD's decay-usage
  priorities and Linux's O(1) arrays treated them uniformly).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.hostos.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.hostos.machine import Machine


class Scheduler(ABC):
    """Base class for scheduler models."""

    #: Nominal time slice in seconds.
    quantum: float = 0.1

    def __init__(self) -> None:
        self.machine: Optional["Machine"] = None

    def attach(self, machine: "Machine") -> None:
        """Bind to the machine (called once by the machine)."""
        self.machine = machine
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for queue setup once ``machine``/CPU count are known."""

    @abstractmethod
    def enqueue(self, task: Task, preempted: bool = False) -> None:
        """Add a runnable task (new submission or expired quantum)."""

    @abstractmethod
    def pick(self, cpu: int) -> Optional[Task]:
        """Choose the next task for ``cpu``, or None if its queue is empty."""

    def steal(self, cpu: int) -> Optional[Task]:
        """Idle CPU asks for work from elsewhere (default: no stealing)."""
        return None

    def slice_for(self, task: Task) -> float:
        """Time slice granted to ``task`` (default: the nominal quantum)."""
        return self.quantum

    def queue_lengths(self) -> list[int]:
        """Current run-queue lengths (diagnostics/tests)."""
        return []

    @property
    def name(self) -> str:
        return type(self).__name__
