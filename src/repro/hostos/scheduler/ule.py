"""The ULE scheduler model (FreeBSD 5/6).

ULE keeps one run queue per CPU with strong affinity and only periodic
rebalancing. Two structural properties produce the wider fairness
spread the paper measures in Figure 3:

* **per-CPU queues with weak balancing** — tasks stay where they were
  placed; a length imbalance persists until the periodic balancer
  corrects it one migration at a time, and an idle CPU does not steal;
* **interactivity/priority scoring bias** — ULE derives slices from an
  interactivity score; for nominally identical CPU hogs the scoring
  gave some processes persistently larger slices. FreeBSD 5 was
  grossly unfair ("some processes were excessively privileged ... and
  allowed to run alone on a CPU", the paper's [12]); FreeBSD 6 reduced
  but did not eliminate the variation. We model the score as a
  per-task multiplicative slice bias drawn once from a lognormal
  distribution whose sigma is the calibration knob:
  :data:`FREEBSD6_BIAS_SIGMA` reproduces Figure 3's ~210-290 s spread,
  :data:`FREEBSD5_BIAS_SIGMA` the earlier gross unfairness.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.hostos.scheduler.base import Scheduler
from repro.hostos.task import Task

#: Lognormal sigma of the per-task slice bias, calibrated against Figure 3.
FREEBSD6_BIAS_SIGMA = 0.10
#: The FreeBSD 5 behaviour reported in the paper's reference [12].
FREEBSD5_BIAS_SIGMA = 0.60


class UleScheduler(Scheduler):
    """Per-CPU queues, periodic balancing, biased slices."""

    def __init__(
        self,
        quantum: float = 0.1,
        balance_interval: float = 5.0,
        bias_sigma: float = FREEBSD6_BIAS_SIGMA,
        interactivity_scoring: bool = False,
        interactive_threshold: float = 0.5,
    ) -> None:
        """
        ``interactivity_scoring`` enables ULE's distinguishing feature:
        tasks whose sleep/run history marks them interactive (ratio
        above ``interactive_threshold``) enqueue at the *head* of their
        CPU's run queue, getting wake-to-run latency a round-robin
        scheduler cannot offer. Off by default — the paper's workloads
        are pure CPU hogs, for which the scoring reduces to the
        lognormal slice bias calibrated against Figure 3.
        """
        super().__init__()
        self.quantum = quantum
        self.balance_interval = balance_interval
        self.bias_sigma = bias_sigma
        self.interactivity_scoring = interactivity_scoring
        self.interactive_threshold = interactive_threshold
        self._queues: List[Deque[Task]] = []
        self._bias: Dict[str, float] = {}
        self._balancer_started = False

    def on_attach(self) -> None:
        assert self.machine is not None
        self._queues = [deque() for _ in range(self.machine.ncpus)]
        self._rng = self.machine.sim.rng.stream("sched.ule")

    # ------------------------------------------------------------------
    def enqueue(self, task: Task, preempted: bool = False) -> None:
        if task.cpu_affinity is None:
            # Initial placement: ULE picks the least-loaded CPU, with
            # random tie-breaking among equals.
            lengths = [len(q) for q in self._queues]
            shortest = min(lengths)
            candidates = [i for i, n in enumerate(lengths) if n == shortest]
            task.cpu_affinity = self._rng.choice(candidates)
        queue = self._queues[task.cpu_affinity]
        if (
            self.interactivity_scoring
            and task.interactive_ratio > self.interactive_threshold
        ):
            # Interactive score earns a realtime-ish priority: the task
            # runs ahead of the timeshare queue.
            queue.appendleft(task)
        else:
            queue.append(task)
        if not self._balancer_started and self.balance_interval > 0:
            self._balancer_started = True
            self.machine.sim.schedule(self.balance_interval, self._balance)

    def pick(self, cpu: int) -> Optional[Task]:
        queue = self._queues[cpu]
        return queue.popleft() if queue else None

    # No steal(): an idle CPU waits for the balancer — the structural
    # weakness that widens ULE's completion spread.

    def slice_for(self, task: Task) -> float:
        bias = self._bias.get(task.name)
        if bias is None:
            if self.bias_sigma > 0.0:
                bias = math.exp(self._rng.gauss(0.0, self.bias_sigma))
            else:
                bias = 1.0
            self._bias[task.name] = bias
        return self.quantum * bias

    # ------------------------------------------------------------------
    def _balance(self) -> None:
        """Move one task from the longest to the shortest queue."""
        assert self.machine is not None
        lengths = [len(q) for q in self._queues]
        longest = max(range(len(lengths)), key=lengths.__getitem__)
        shortest = min(range(len(lengths)), key=lengths.__getitem__)
        if lengths[longest] - lengths[shortest] > 1:
            task = self._queues[longest].pop()
            task.cpu_affinity = shortest
            self._queues[shortest].append(task)
            self.machine.kick()
        if self.machine.active_count > 0:
            self.machine.sim.schedule(self.balance_interval, self._balance)
        else:
            self._balancer_started = False

    def queue_lengths(self) -> list[int]:
        return [len(q) for q in self._queues]
