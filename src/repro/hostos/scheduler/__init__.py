"""Scheduler models: FreeBSD 4BSD, FreeBSD ULE, Linux 2.6 O(1)."""

from repro.hostos.scheduler.base import Scheduler
from repro.hostos.scheduler.bsd4 import Bsd4Scheduler
from repro.hostos.scheduler.linux26 import Linux26Scheduler
from repro.hostos.scheduler.ule import UleScheduler

__all__ = ["Scheduler", "Bsd4Scheduler", "UleScheduler", "Linux26Scheduler"]
