"""Host operating-system model (paper, "Suitability of FreeBSD").

Before building P2PLab the authors verified that FreeBSD can run very
many concurrent processes fairly: Figure 1 (CPU-bound scalability),
Figure 2 (memory-bound workloads and swap behaviour) and Figure 3
(fairness CDF of 100 concurrent instances), comparing FreeBSD's 4BSD
and ULE schedulers with Linux 2.6.

This subpackage rebuilds that study as a quantum-granularity scheduler
simulation:

* :mod:`repro.hostos.task` — task descriptions and results;
* :mod:`repro.hostos.memory` — RAM/swap model with per-OS paging policy;
* :mod:`repro.hostos.scheduler` — 4BSD / ULE / Linux 2.6 models;
* :mod:`repro.hostos.machine` — a multi-CPU machine running tasks;
* :mod:`repro.hostos.workloads` — the paper's two benchmark programs.
"""

from repro.hostos.machine import Machine
from repro.hostos.memory import MemoryModel, POLICY_GRACEFUL, POLICY_THRASH
from repro.hostos.scheduler import Bsd4Scheduler, Linux26Scheduler, UleScheduler
from repro.hostos.suitability import SuitabilityReport, check_suitability
from repro.hostos.task import Task, TaskResult
from repro.hostos.workloads import ackermann_task, matrix_task

__all__ = [
    "Machine",
    "MemoryModel",
    "POLICY_GRACEFUL",
    "POLICY_THRASH",
    "Bsd4Scheduler",
    "UleScheduler",
    "Linux26Scheduler",
    "Task",
    "TaskResult",
    "ackermann_task",
    "matrix_task",
    "check_suitability",
    "SuitabilityReport",
]
