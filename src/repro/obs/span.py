"""Timeline spans keyed to simulation time.

A :class:`Span` is one named interval of *sim-time* with optional
key/value fields; a :class:`Tracer` manages a stack of open spans so
nested phases ("run", "announce", "rechoke-round") form a tree. Spans
complement the :class:`~repro.obs.metrics.MetricsRegistry`: metrics
aggregate, spans keep the timeline — which is what the paper's
download-evolution figures (Fig. 8/10) are, conceptually.

Because spans are stamped with the deterministic simulation clock,
their export is byte-identical across same-seed runs, unlike
wall-clock profilers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

Clock = Callable[[], float]


class Span:
    """One named sim-time interval, possibly nested under a parent."""

    __slots__ = ("name", "start", "end", "depth", "parent", "fields", "index")

    def __init__(
        self,
        name: str,
        start: float,
        depth: int,
        parent: Optional["Span"],
        index: int,
        **fields: Any,
    ) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.parent = parent
        self.index = index
        self.fields: Dict[str, Any] = dict(fields)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def annotate(self, **fields: Any) -> "Span":
        self.fields.update(fields)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
            "parent": None if self.parent is None else self.parent.index,
            "fields": dict(sorted(self.fields.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "open" if self.end is None else f"{self.end:.6f}"
        return f"Span({self.name!r}, {self.start:.6f}..{end}, depth={self.depth})"


class _SpanContext:
    """``with tracer.span("x"):`` support.

    ``__exit__`` must be safe under exception unwinds: if the span was
    already closed — e.g. an inner handler ended an *outer* span, which
    cascades and closes this one too — exiting is a no-op rather than
    an :class:`ObservabilityError` that would mask the in-flight
    exception. When an exception is propagating, the span is annotated
    with the exception type (deterministic: just the class name) before
    it closes, so traces show which phases aborted.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        if span.end is not None or span not in self._tracer._stack:
            return  # already closed by an outer unwind
        if exc_type is not None:
            span.annotate(error=exc_type.__name__)
        self._tracer.end(span)


class Tracer:
    """Span factory + stack bound to a clock (normally ``lambda: sim.now``)."""

    enabled = True

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._stack: List[Span] = []
        self.finished: List[Span] = []
        self._count = 0

    # -- span lifecycle ------------------------------------------------
    def begin(self, name: str, **fields: Any) -> Span:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            self._clock(),
            depth=len(self._stack),
            parent=parent,
            index=self._count,
            **fields,
        )
        self._count += 1
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` (and any deeper spans left open inside it)."""
        if span.end is not None:
            raise ObservabilityError(f"span {span.name!r} already ended")
        if span not in self._stack:
            raise ObservabilityError(f"span {span.name!r} is not open on this tracer")
        now = self._clock()
        while self._stack:
            top = self._stack.pop()
            top.end = now
            self.finished.append(top)
            if top is span:
                break
        return span

    def span(self, name: str, **fields: Any) -> _SpanContext:
        """Context manager form: ``with tracer.span("phase") as s: ...``"""
        return _SpanContext(self, self.begin(name, **fields))

    # -- introspection -------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def active(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def select(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name, in close order."""
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def as_list(self) -> List[Dict[str, Any]]:
        """Finished spans in *start* order, export-ready."""
        return [s.as_dict() for s in sorted(self.finished, key=lambda s: s.index)]

    def __len__(self) -> int:
        return len(self.finished)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(open={len(self._stack)}, finished={len(self.finished)})"


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullSpan:
    """Do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()
    name = "<null>"
    start = 0.0
    end: Optional[float] = 0.0
    depth = 0
    parent = None
    index = -1
    fields: Dict[str, Any] = {}
    open = False
    duration: Optional[float] = 0.0

    def annotate(self, **fields: Any) -> "NullSpan":
        return self

    def as_dict(self) -> Dict[str, Any]:  # pragma: no cover - never exported
        return {}


_NULL_SPAN = NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """No-op tracer: spans cost one empty method call."""

    enabled = False
    depth = 0
    active = None
    finished: Tuple[Span, ...] = ()

    def __init__(self, clock: Optional[Clock] = None) -> None:
        pass

    def begin(self, name: str, **fields: Any) -> NullSpan:
        return _NULL_SPAN

    def end(self, span: Any) -> Any:
        return span

    def span(self, name: str, **fields: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def select(self, name: Optional[str] = None) -> List[Span]:
        return []

    def as_list(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTracer()"


#: Shared disabled tracer.
NULL_TRACER = NullTracer()
