"""repro.obs — the unified observability layer.

One deterministic measurement substrate for the whole platform:

* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms shared by every layer (``layer.component.metric``);
* :class:`Tracer` / :class:`Span` — timeline spans keyed to sim-time;
* :class:`RunManifest` — per-run provenance (seed, topology hash,
  versions, clocks, event counts);
* ``NULL_REGISTRY`` / ``NULL_TRACER`` — shared no-op instruments for
  zero-overhead disabled mode (``Simulator(..., observe=False)``).

The rule that makes this trustworthy: anything recorded from
simulation state is deterministic and appears in
:meth:`MetricsRegistry.snapshot`; anything recorded from the host's
wall clock is flagged ``wall=True`` and stays out of the snapshot
(it belongs in the manifest or in explicitly wall-labelled exports).
"""

from repro.obs.manifest import RunManifest, topology_fingerprint
from repro.obs.metrics import (
    BYTES_EDGES,
    Counter,
    DEFAULT_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    Snapshot,
    diff_snapshots,
)
from repro.obs.span import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BYTES_EDGES",
    "Counter",
    "DEFAULT_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "RunManifest",
    "Snapshot",
    "Span",
    "Tracer",
    "diff_snapshots",
    "topology_fingerprint",
]
