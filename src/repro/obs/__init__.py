"""repro.obs — the unified observability layer.

One deterministic measurement substrate for the whole platform:

* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms shared by every layer (``layer.component.metric``);
* :class:`Tracer` / :class:`Span` — timeline spans keyed to sim-time;
* :class:`RunManifest` — per-run provenance (seed, topology hash,
  versions, clocks, event counts);
* :class:`FlightRecorder` — per-packet hop-by-hop lifecycle records
  (NIC → ipfw → pipes → delivery → ack) with exact latency
  decompositions;
* :class:`EventLoopProfiler` — wall-time per handler category on the
  sim kernel (wall data: never in deterministic snapshots);
* :class:`TimeSeriesSampler` — periodic registry diffs as
  deterministic per-metric series;
* :mod:`repro.obs.chrometrace` — Chrome Trace Event / Perfetto export
  merging flights, spans, trace records and time-series;
* :mod:`repro.obs.telemetry` — the live telemetry bus
  (:class:`TelemetryHub`, heartbeats, stall watchdog, ``repro watch``
  and the opt-in HTTP endpoint): wall-clock-only streaming of health
  out of *running* sweeps and partition cells;
* ``NULL_REGISTRY`` / ``NULL_TRACER`` / ``NULL_FLIGHT`` /
  ``NULL_PROFILER`` / ``NULL_EMITTER`` — shared no-op instruments for
  zero-overhead disabled mode (``Simulator(..., observe=False)``).

The rule that makes this trustworthy: anything recorded from
simulation state is deterministic and appears in
:meth:`MetricsRegistry.snapshot`; anything recorded from the host's
wall clock is flagged ``wall=True`` and stays out of the snapshot
(it belongs in the manifest or in explicitly wall-labelled exports).
"""

from repro.obs.chrometrace import (
    TraceLayout,
    chrome_trace_document,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flight import (
    FlightRecorder,
    Hop,
    NULL_FLIGHT,
    NullFlightRecorder,
    PacketFlight,
)
from repro.obs.manifest import RunManifest, topology_fingerprint
from repro.obs.metrics import (
    BYTES_EDGES,
    Counter,
    DEFAULT_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    Snapshot,
    diff_snapshots,
)
from repro.obs.profile import (
    EventLoopProfiler,
    NULL_PROFILER,
    NullEventLoopProfiler,
    categorize,
)
from repro.obs.span import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.telemetry import (
    CallbackEmitter,
    Heartbeat,
    NULL_EMITTER,
    NullEmitter,
    TelemetryHub,
    serve_http,
    watch,
)
from repro.obs.timeseries import TimeSeriesSampler

__all__ = [
    "BYTES_EDGES",
    "CallbackEmitter",
    "Counter",
    "DEFAULT_EDGES",
    "EventLoopProfiler",
    "FlightRecorder",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "Hop",
    "MetricsRegistry",
    "NULL_EMITTER",
    "NULL_FLIGHT",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullEmitter",
    "NullEventLoopProfiler",
    "NullFlightRecorder",
    "NullMetricsRegistry",
    "NullTracer",
    "PacketFlight",
    "RunManifest",
    "Snapshot",
    "Span",
    "TelemetryHub",
    "TimeSeriesSampler",
    "TraceLayout",
    "Tracer",
    "categorize",
    "serve_http",
    "watch",
    "chrome_trace_document",
    "chrome_trace_json",
    "diff_snapshots",
    "topology_fingerprint",
    "validate_chrome_trace",
    "write_chrome_trace",
]
