"""Time-series sampler: periodic registry diffs as per-metric series.

A snapshot tells you where the platform ended up; the paper's figures
need the *trajectory* (download evolution, load over time). The
:class:`TimeSeriesSampler` periodically snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` on the simulation clock,
diffs consecutive snapshots, and accumulates one deterministic series
per metric:

* counters → per-interval delta (a rate when divided by the period);
* gauges → sampled value;
* histograms → per-interval observation-count delta plus sum delta.

Because sampling is an ordinary simulation event and the snapshot
excludes wall-flagged instruments, the resulting series are
byte-identical across same-seed runs — they can sit inside determinism
checks and the Perfetto export (as counter tracks).

Export: :meth:`TimeSeriesSampler.as_dict` (JSON-ready),
:meth:`to_csv` (``time,metric,field,value`` rows).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import Snapshot

PathLike = Union[str, pathlib.Path]

#: One series: ``[(sim_time, value), ...]``.
Series = List[Tuple[float, float]]


class TimeSeriesSampler:
    """Periodic deterministic sampler over one metrics registry.

    Parameters
    ----------
    sim:
        The simulator whose clock and event queue drive sampling.
    registry:
        Registry to sample (default: ``sim.metrics``).
    period:
        Sampling period in sim-seconds.
    metrics:
        Optional name filter — only these metrics are tracked. ``None``
        tracks everything present at each sampling instant.
    process_gauges:
        Also record wall-only process resource gauges at every sample
        (RSS and CPU seconds via ``resource.getrusage``, the kernel's
        event-queue depth, packet-pool occupancy — see
        :func:`repro.obs.telemetry.process_gauges`). These live in
        :attr:`wall_series`, quarantined from the deterministic export
        exactly like the profiler: :meth:`as_dict` excludes them unless
        ``include_wall=True``, and :meth:`to_csv` never writes them.
    """

    def __init__(
        self,
        sim,
        registry=None,
        period: float = 10.0,
        metrics: Optional[List[str]] = None,
        process_gauges: bool = False,
    ) -> None:
        if period <= 0:
            raise ObservabilityError(f"sampling period must be positive, got {period}")
        self.sim = sim
        self.registry = registry if registry is not None else sim.metrics
        self.period = period
        self.filter = set(metrics) if metrics is not None else None
        self.process_gauges = process_gauges
        #: metric name -> field -> series. Fields: counters ``delta``;
        #: gauges ``value``; histograms ``count_delta`` and ``sum_delta``.
        self.series: Dict[str, Dict[str, Series]] = {}
        #: Wall-clock gauge series (``process.rss_bytes``, ...), keyed
        #: like :attr:`series` but NEVER part of deterministic exports.
        self.wall_series: Dict[str, Dict[str, Series]] = {}
        self.sample_times: List[float] = []
        self._prev: Optional[Snapshot] = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Take a baseline sample now and then one every ``period``."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        self.sim.schedule(self.period, self._tick)

    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Take one sample immediately (also usable without start())."""
        now = self.sim.now
        snap = self.registry.snapshot()
        prev = self._prev if self._prev is not None else {}
        self.sample_times.append(now)
        for name in sorted(snap):
            if self.filter is not None and name not in self.filter:
                continue
            cur = snap[name]
            old = prev.get(name)
            kind = cur["kind"]
            if kind == "counter":
                before = old["value"] if old else 0
                self._append(name, "delta", now, cur["value"] - before)  # type: ignore[operator]
            elif kind == "gauge":
                self._append(name, "value", now, cur["value"])  # type: ignore[arg-type]
            elif kind == "histogram":
                c0 = old["count"] if old else 0
                s0 = old["sum"] if old else 0.0
                self._append(name, "count_delta", now, cur["count"] - c0)  # type: ignore[operator]
                self._append(name, "sum_delta", now, cur["sum"] - s0)  # type: ignore[operator]
        self._prev = snap
        if self.process_gauges:
            self._sample_process_gauges(now)

    def _sample_process_gauges(self, now: float) -> None:
        """Wall-side resource sample (into :attr:`wall_series` only)."""
        from repro.obs import telemetry

        gauges = telemetry.process_gauges()
        gauges["event_queue_depth"] = float(
            len(getattr(self.sim, "_queue", ()))
            + getattr(self.sim, "_deferred_deliveries", 0)
        )
        for name in sorted(gauges):
            self.wall_series.setdefault(f"process.{name}", {}).setdefault(
                "value", []
            ).append((now, gauges[name]))

    def _append(self, name: str, field: str, t: float, value: float) -> None:
        self.series.setdefault(name, {}).setdefault(field, []).append((t, value))

    # -- views ---------------------------------------------------------
    def get(self, name: str, field: Optional[str] = None) -> Series:
        """One metric's series (field defaults to the metric's primary:
        counter→delta, gauge→value, histogram→count_delta)."""
        fields = self.series.get(name)
        if not fields:
            return []
        if field is None:
            for candidate in ("delta", "value", "count_delta"):
                if candidate in fields:
                    return list(fields[candidate])
            return []
        return list(fields.get(field, []))

    def rate(self, name: str) -> Series:
        """Counter deltas divided by the sampling period (per-second)."""
        return [(t, v / self.period) for t, v in self.get(name, "delta")]

    def names(self) -> List[str]:
        return sorted(self.series)

    def __len__(self) -> int:
        return len(self.sample_times)

    # -- export --------------------------------------------------------
    def as_dict(self, include_wall: bool = False) -> Dict[str, object]:
        """JSON-ready document — deterministic by default; passing
        ``include_wall=True`` adds the quarantined ``wall_series``
        (process gauges), making the output host-specific."""

        def render(table: Dict[str, Dict[str, Series]]) -> Dict[str, object]:
            return {
                name: {
                    field: [[t, v] for t, v in points]
                    for field, points in sorted(fields.items())
                }
                for name, fields in sorted(table.items())
            }

        doc: Dict[str, object] = {
            "period": self.period,
            "samples": len(self.sample_times),
            "series": render(self.series),
        }
        if include_wall:
            doc["wall_series"] = render(self.wall_series)
        return doc

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def to_csv(self, path: PathLike) -> pathlib.Path:
        """Long-format ``time,metric,field,value`` rows."""
        path = pathlib.Path(path)
        lines = ["time,metric,field,value"]
        rows: List[Tuple[float, str, str, float]] = []
        for name, fields in sorted(self.series.items()):
            for field, points in sorted(fields.items()):
                for t, v in points:
                    rows.append((t, name, field, v))
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        for t, name, field, v in rows:
            lines.append(f"{t},{name},{field},{v}")
        path.write_text("\n".join(lines) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeriesSampler(period={self.period}, "
            f"samples={len(self.sample_times)}, metrics={len(self.series)})"
        )
