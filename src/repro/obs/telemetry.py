"""Live telemetry bus: stream health out of *running* sweeps and cells.

Every other surface in :mod:`repro.obs` materializes after a run ends
(metrics snapshots, flight records, Chrome traces, time series). A
multi-minute distributed sweep is a black box while it executes. This
module is the in-flight complement: a **wall-clock-only** event stream
carried from :class:`~repro.runtime.executor.SweepExecutor` workers and
:class:`~repro.runtime.executor.CommandWorker` partition cells back to
the parent over the same duplex pipes that already carry results, where
a :class:`TelemetryHub` folds it into run-level health, appends it to a
``telemetry.jsonl`` flight log, and serves it live (``python -m repro
watch``, or an opt-in stdlib HTTP endpoint with Prometheus exposition).

Determinism quarantine
----------------------
Telemetry follows the same discipline as :mod:`repro.obs.profile`: it
*observes* wall-side state (process RSS, wall timestamps, weakly-held
simulator progress counters) and never touches simulation state, event
ordering, seeds or packet-id streams. Nothing it records enters a
deterministic snapshot, BENCH document or sweep aggregate; every run
output is byte-identical with telemetry on or off (enforced by the
subprocess A/B tests in ``tests/test_telemetry.py``). The bus speaks
plain JSON dicts so events cross process boundaries without importing
anything simulation-side.

Event schema (one JSON object per event)::

    {"ts": <unix wall clock>, "kind": <str>, "source": <str>, ...}

Kinds emitted by the runtime:

* ``run_started`` / ``run_finished`` — sweep lifecycle (experiment,
  point counts, parallelism).
* ``point_started`` / ``point_finished`` / ``point_retried`` /
  ``point_crashed`` / ``point_failed`` — per-point lifecycle from the
  sweep executor (also appended to the checkpoint JSONL so ``--resume``
  can report what previously failed).
* ``heartbeat`` — periodic worker sample: RSS/CPU gauges plus one
  probe entry per registered simulator (sim-time, events processed,
  event-queue depth). Emitted by a daemon thread, so a worker wedged
  in Python code still heartbeats — with frozen counters.
* ``partition_window`` — barrier-window progress from the partition
  driver (window index, horizon, live cells).
* ``stall`` — watchdog verdict: a source whose counters stopped
  advancing before any timeout fired (see :meth:`TelemetryHub.
  check_stalls`).
* ``resume_report`` — summary of previously-failed points found in a
  checkpoint when resuming.

Stall watchdog semantics
------------------------
A source is **stalled** when, for longer than ``stall_after`` wall
seconds, either (a) no heartbeat arrived at all (hard wedge: the
worker cannot even run its daemon thread, or the pipe is jammed), or
(b) heartbeats arrive but no progress signal advanced — no probe's
``events`` or sim clock moved and no point finished (soft wedge: the
worker is alive but the simulation is stuck). Check (b) applies only
to workers that registered probes; a probe-less worker promises
liveness, not visible progress. The watchdog names the wedged source
and its frozen probe labels instead of leaving a silent hang until
the per-point timeout.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import sys
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, List, Optional, Tuple, Union

PathLike = Union[str, pathlib.Path]
Event = Dict[str, Any]

#: Default heartbeat period (wall seconds) for worker-side threads.
HEARTBEAT_INTERVAL = 0.5
#: Default stall threshold (wall seconds) for the hub's watchdog.
STALL_AFTER = 30.0


# ----------------------------------------------------------------------
# Emitters — the child-side face of the bus
# ----------------------------------------------------------------------
class NullEmitter:
    """Do-nothing emitter (the ambient default: telemetry off)."""

    __slots__ = ()
    enabled = False
    source = "<null>"

    def emit(self, kind: str, **fields: Any) -> None:
        pass

    def forward(self, event: Event) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullEmitter()"


#: Shared disabled emitter.
NULL_EMITTER = NullEmitter()


class CallbackEmitter:
    """Emitter that hands each event dict to a sink callable.

    The sink is the transport: ``hub.ingest`` for in-process delivery,
    or a locked ``conn.send(("telemetry", event))`` for pipe delivery
    from a worker process. A sink that raises is swallowed — telemetry
    must never break or perturb the run it is watching.
    """

    __slots__ = ("_sink", "source", "static")

    enabled = True

    def __init__(
        self,
        sink: Callable[[Event], None],
        source: str,
        static: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._sink = sink
        self.source = source
        self.static = dict(static or {})

    def emit(self, kind: str, **fields: Any) -> None:
        event: Event = {"ts": time.time(), "kind": kind, "source": self.source}
        event.update(self.static)
        event.update(fields)
        self.forward(event)

    def forward(self, event: Event) -> None:
        """Relay an already-built event (used by parents forwarding a
        child's events upward without re-stamping them)."""
        try:
            self._sink(event)
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallbackEmitter({self.source!r})"


def pipe_emitter(conn, lock: threading.Lock, source: str,
                 static: Optional[Dict[str, Any]] = None) -> CallbackEmitter:
    """Emitter that ships events up a multiprocessing ``Connection`` as
    ``("telemetry", event)`` messages, interleaved (under ``lock``) with
    the worker's normal protocol replies."""

    def sink(event: Event) -> None:
        with lock:
            conn.send(("telemetry", event))

    return CallbackEmitter(sink, source, static)


# -- ambient emitter ----------------------------------------------------
# The process-wide emitter. Installed by whoever owns the transport
# (the CLI parent, a sweep worker's main, a CommandWorker child); read
# by layers that cannot be reached through an argument (the partition
# driver deep inside an experiment's run function). Telemetry is OFF
# unless someone installed an emitter, so the default cost is one
# attribute read at the few seams that check.
_ambient: Any = NULL_EMITTER


def get_emitter():
    """The process-ambient emitter (NULL_EMITTER when telemetry is off)."""
    return _ambient


def set_emitter(emitter) -> None:
    global _ambient
    _ambient = emitter if emitter is not None else NULL_EMITTER


def active() -> bool:
    """True when live telemetry is enabled in this process."""
    return _ambient.enabled


@contextmanager
def use_emitter(emitter):
    """Install ``emitter`` as the ambient emitter for a ``with`` scope."""
    previous = _ambient
    set_emitter(emitter)
    try:
        yield emitter
    finally:
        set_emitter(previous)


# ----------------------------------------------------------------------
# Progress probes — wall-side views of live simulators
# ----------------------------------------------------------------------
# label -> zero-arg callable returning a probe sample dict (or None when
# the probed object died). Probes are sampled from the heartbeat thread,
# so they must only *read* (plain attribute/len reads are safe under the
# GIL); they hold weak references so telemetry never extends a
# simulator's lifetime.
_probes: Dict[str, Callable[[], Optional[Dict[str, Any]]]] = {}
_probes_lock = threading.Lock()


def register_probe(label: str, fn: Callable[[], Optional[Dict[str, Any]]]) -> str:
    """Register a progress probe under ``label`` (last write wins)."""
    with _probes_lock:
        _probes[label] = fn
    return label


def unregister_probe(label: str) -> None:
    with _probes_lock:
        _probes.pop(label, None)


def clear_probes() -> None:
    with _probes_lock:
        _probes.clear()


def register_sim(sim, label: str) -> str:
    """Probe a live :class:`~repro.sim.kernel.Simulator` (weakly held).

    The sample reads the kernel's public progress counters: sim-time,
    events processed, and the current event-queue depth. Dead
    simulators are pruned on the next sample. Note the kernel commits
    ``events_processed`` at the end of each ``run()`` window, so
    mid-window samples see a stale event count — ``sim_time`` (updated
    per event) is the live progress signal the hub's watchdog relies
    on.
    """
    ref = weakref.ref(sim)

    def sample() -> Optional[Dict[str, Any]]:
        target = ref()
        if target is None:
            return None
        return {
            "label": label,
            "sim_time": float(target.now),
            "events": int(target.events_processed),
            "queue_depth": int(
                len(getattr(target, "_queue", ()))
                + getattr(target, "_deferred_deliveries", 0)
            ),
        }

    return register_probe(label, sample)


def register_topology(compiler, label: str) -> str:
    """Probe a deployed topology compiler's footprint (weakly held).

    Surfaces the lazy-pipe ledger on ``/health``: how many Dummynet
    pipes the topology *defines* versus how many have actually
    materialised — the capacity-planning signal for million-vnode
    deployments. The ledger counters are wall-side diagnostics (their
    registry twins are ``wall=True``) and never enter deterministic
    snapshots.
    """
    ref = weakref.ref(compiler)

    def sample() -> Optional[Dict[str, Any]]:
        target = ref()
        if target is None:
            return None
        stats = target.stats()
        return {
            "label": label,
            "vnodes": int(stats.get("vnodes", 0)),
            "rules": int(stats.get("rules", 0)),
            "pipes": int(stats.get("pipes", 0)),
            "pipes_materialized": int(stats.get("pipes_materialized", 0)),
            "lazy_pipes_pending": int(stats.get("lazy_pipes_pending", 0)),
        }

    return register_probe(label, sample)


def sample_probes() -> List[Dict[str, Any]]:
    """Sample every live probe (label-sorted); prune dead ones."""
    with _probes_lock:
        items = sorted(_probes.items())
    samples: List[Dict[str, Any]] = []
    dead: List[str] = []
    for label, fn in items:
        try:
            doc = fn()
        except Exception:
            doc = None
        if doc is None:
            dead.append(label)
        else:
            samples.append(doc)
    if dead:
        with _probes_lock:
            for label in dead:
                _probes.pop(label, None)
    return samples


def process_gauges() -> Dict[str, float]:
    """Wall-only resource gauges for the calling process.

    RSS via :func:`resource.getrusage` (``ru_maxrss`` is KiB on Linux,
    bytes on macOS), CPU seconds via the same call, plus the packet
    pool's current free-list occupancy. Never part of a deterministic
    snapshot — consumed by heartbeats and by the time-series sampler's
    opt-in wall series.
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    rss = usage.ru_maxrss
    if sys.platform != "darwin":
        rss *= 1024
    from repro.net import packet as _packet

    return {
        "rss_bytes": float(rss),
        "cpu_seconds": float(usage.ru_utime + usage.ru_stime),
        "packet_pool_free": float(len(_packet._pool)),
    }


# ----------------------------------------------------------------------
# Heartbeat thread — the worker-side pulse
# ----------------------------------------------------------------------
class Heartbeat:
    """Daemon thread emitting periodic ``heartbeat`` events.

    Runs entirely on the wall clock, outside the deterministic
    boundary; a worker stuck in a Python loop still heartbeats (the
    GIL is released at the interpreter's discretion), which is what
    lets the watchdog distinguish "alive but not advancing" from
    "dead". One beat is emitted immediately on start and one on stop,
    so even sub-interval runs leave a resource trace.
    """

    def __init__(self, emitter, interval: float = HEARTBEAT_INTERVAL) -> None:
        self.emitter = emitter
        self.interval = interval
        self._stop = threading.Event()
        self._seq = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-heartbeat", daemon=True
        )

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def beat(self) -> None:
        gauges = process_gauges()
        self.emitter.emit(
            "heartbeat", seq=self._seq, probes=sample_probes(), **gauges
        )
        self._seq += 1

    def _run(self) -> None:
        self.beat()
        while not self._stop.wait(self.interval):
            self.beat()

    def stop(self) -> None:
        if not self._stop.is_set():
            self._stop.set()
            self._thread.join(timeout=5.0)
            try:
                self.beat()  # final sample (sink swallows closed pipes)
            except Exception:
                pass


# ----------------------------------------------------------------------
# TelemetryHub — the parent-side aggregator
# ----------------------------------------------------------------------
class TelemetryHub:
    """Aggregates per-worker event streams into run-level health.

    Thread-safe: :meth:`ingest` is called from the executor's
    scheduling loop, the partition driver, HTTP handler threads and
    the optional watchdog thread. Every ingested event is appended to
    the ``telemetry.jsonl`` flight log (when ``path`` is set) before
    it updates the health state, so the log is a complete replayable
    record — ``python -m repro watch`` rebuilds health by replaying it
    through a fresh hub.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        stall_after: float = STALL_AFTER,
    ) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.stall_after = stall_after
        self._lock = threading.RLock()
        self._fh: Optional[IO[str]] = None
        self.events_seen = 0
        self.started_wall = time.time()
        self.run_info: Dict[str, Any] = {}
        self.finished: Optional[Dict[str, Any]] = None
        #: point key -> {"status", "attempts", "source", "error"}
        self.points: Dict[str, Dict[str, Any]] = {}
        self.counters: Dict[str, int] = {
            "started": 0, "finished": 0, "failed": 0,
            "retried": 0, "crashed": 0,
        }
        #: source -> worker health doc (see _apply_heartbeat)
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.windows: Dict[str, Dict[str, Any]] = {}
        self._stalled_flagged: Dict[str, float] = {}
        self._watchdog_stop: Optional[threading.Event] = None
        self._watchdog_thread: Optional[threading.Thread] = None

    # -- transport ------------------------------------------------------
    def emitter(self, source: str, **static: Any) -> CallbackEmitter:
        """An in-process emitter feeding this hub (for inline runs and
        for the executor's own lifecycle events)."""
        return CallbackEmitter(self.ingest, source, static or None)

    def ingest(self, event: Event) -> None:
        """Fold one event into the health state and the flight log."""
        with self._lock:
            self.events_seen += 1
            self._append(event)
            try:
                self._apply(event)
            except Exception:
                pass  # malformed events must never kill the parent

    def _append(self, event: Event) -> None:
        if self.path is None:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    # -- state folding --------------------------------------------------
    def _apply(self, event: Event) -> None:
        kind = event.get("kind")
        source = str(event.get("source", "?"))
        now = float(event.get("ts", time.time()))
        if kind == "heartbeat":
            self._apply_heartbeat(event, source, now)
        elif kind == "run_started":
            self.run_info = {
                k: v for k, v in event.items() if k not in ("kind", "source")
            }
        elif kind == "run_finished":
            self.finished = {
                k: v for k, v in event.items() if k not in ("kind", "source")
            }
        elif kind == "partition_window":
            self.windows[source] = {
                k: v for k, v in event.items() if k not in ("kind", "source")
            }
            self._mark_advance(source, now)
        elif kind in ("point_started", "point_finished", "point_retried",
                      "point_crashed", "point_failed"):
            self._apply_point(kind, event, source, now)
        # stall / resume_report events carry no additional state: they
        # exist for the flight log and the watch view.

    def _apply_point(self, kind: str, event: Event, source: str, now: float) -> None:
        key = str(event.get("key", "?"))
        doc = self.points.setdefault(key, {"status": "pending", "attempts": 0})
        doc["source"] = source
        if "attempt" in event:
            doc["attempts"] = max(doc["attempts"], int(event["attempt"]))
        if kind == "point_started":
            doc["status"] = "running"
            self.counters["started"] += 1
        elif kind == "point_finished":
            doc["status"] = str(event.get("status", "ok"))
            self.counters["finished"] += 1
        elif kind == "point_retried":
            doc["status"] = "retrying"
            doc["error"] = event.get("error")
            self.counters["retried"] += 1
        elif kind == "point_crashed":
            doc["status"] = "crashed"
            doc["error"] = event.get("error")
            self.counters["crashed"] += 1
        elif kind == "point_failed":
            doc["status"] = "failed"
            doc["error"] = event.get("error")
            self.counters["failed"] += 1
        self._mark_advance(source, now)

    def _worker(self, source: str) -> Dict[str, Any]:
        return self.workers.setdefault(source, {
            "first_ts": None, "last_ts": None, "last_advance_ts": None,
            "beats": 0, "rss_bytes": 0.0, "cpu_seconds": 0.0,
            "packet_pool_free": 0.0, "events": 0, "sim_time": 0.0,
            "queue_depth": 0, "events_per_sec": 0.0, "probes": {},
            "point": None,
        })

    def _mark_advance(self, source: str, now: float) -> None:
        worker = self._worker(source)
        worker["last_advance_ts"] = now
        if worker["last_ts"] is None or now > worker["last_ts"]:
            worker["last_ts"] = now
        self._stalled_flagged.pop(source, None)

    def _apply_heartbeat(self, event: Event, source: str, now: float) -> None:
        worker = self._worker(source)
        if worker["first_ts"] is None:
            worker["first_ts"] = now
        prev_ts = worker["last_ts"]
        prev_events = worker["events"]
        worker["last_ts"] = now
        worker["beats"] += 1
        if "point" in event:
            worker["point"] = event["point"]
        for gauge in ("rss_bytes", "cpu_seconds", "packet_pool_free"):
            if gauge in event:
                worker[gauge] = float(event[gauge])
        probes = event.get("probes") or []
        total_events = 0
        total_depth = 0
        prev_sim_time = worker["sim_time"]
        max_sim_time = prev_sim_time
        for probe in probes:
            label = str(probe.get("label", "?"))
            worker["probes"][label] = probe
            total_events += int(probe.get("events", 0))
            total_depth += int(probe.get("queue_depth", 0))
            max_sim_time = max(max_sim_time, float(probe.get("sim_time", 0.0)))
        if probes:
            worker["sim_time"] = max_sim_time
            worker["queue_depth"] = total_depth
            # The kernel batches its events_processed commit to the end
            # of each run() window (hot-path discipline), so the event
            # count can sit still across a whole window while the sim
            # clock — updated per event — advances live. Either signal
            # moving means the worker is making progress.
            if total_events > prev_events or max_sim_time > prev_sim_time:
                worker["last_advance_ts"] = now
                self._stalled_flagged.pop(source, None)
            if prev_ts is not None and now > prev_ts:
                worker["events_per_sec"] = (
                    (total_events - prev_events) / (now - prev_ts)
                )
            worker["events"] = total_events
        elif worker["last_advance_ts"] is None:
            # No probes at all: the first heartbeat anchors the stall
            # clock so check (b) never fires spuriously on arrival.
            worker["last_advance_ts"] = now

    # -- views ----------------------------------------------------------
    def _stalls(self, now: float) -> List[Dict[str, Any]]:
        stalls: List[Dict[str, Any]] = []
        for source, worker in sorted(self.workers.items()):
            last = worker["last_ts"]
            advance = worker["last_advance_ts"]
            if last is None or worker["beats"] == 0:
                # Sources that never heartbeat (the executor's own
                # lifecycle stream) made no liveness promise — only
                # heartbeating workers can be declared stalled.
                continue
            silent = now - last
            idle = now - (advance if advance is not None else last)
            if silent > self.stall_after:
                stalls.append({
                    "source": source, "reason": "no_heartbeat",
                    "idle_seconds": silent,
                    "probes": sorted(worker["probes"]),
                    "point": worker.get("point"),
                })
            elif worker["probes"] and idle > self.stall_after:
                # Only probe-carrying workers promise visible progress;
                # a probe-less worker (a sweep point that registered no
                # simulators) is judged on liveness alone.
                stalls.append({
                    "source": source, "reason": "no_progress",
                    "idle_seconds": idle,
                    "probes": sorted(worker["probes"]),
                    "point": worker.get("point"),
                })
        return stalls

    def health(self) -> Dict[str, Any]:
        """The rolling health document (what ``/health`` serves)."""
        now = time.time()
        with self._lock:
            running = sorted(
                key for key, doc in self.points.items()
                if doc["status"] in ("running", "retrying")
            )
            workers = {}
            for source, worker in sorted(self.workers.items()):
                doc = dict(worker)
                doc["probes"] = {
                    label: dict(p) for label, p in sorted(worker["probes"].items())
                }
                doc["age_seconds"] = (
                    now - worker["last_ts"] if worker["last_ts"] is not None else None
                )
                workers[source] = doc
            return {
                "ts": now,
                "uptime_seconds": now - self.started_wall,
                "run": dict(self.run_info),
                "finished": dict(self.finished) if self.finished else None,
                "events_seen": self.events_seen,
                "points": {
                    "total": self.run_info.get("points"),
                    "done": self.counters["finished"],
                    "failed": self.counters["failed"],
                    "retried": self.counters["retried"],
                    "crashed": self.counters["crashed"],
                    "running": running,
                },
                "workers": workers,
                "windows": {k: dict(v) for k, v in sorted(self.windows.items())},
                "stalled": self._stalls(now),
            }

    # -- watchdog -------------------------------------------------------
    def check_stalls(self, emit: bool = True) -> List[Dict[str, Any]]:
        """Evaluate stall conditions now; optionally log ``stall``
        events for newly wedged sources (once per stall episode — a
        source is re-flagged only after it advances again)."""
        now = time.time()
        with self._lock:
            stalls = self._stalls(now)
            fresh = [
                s for s in stalls if s["source"] not in self._stalled_flagged
            ]
            for stall in fresh:
                self._stalled_flagged[stall["source"]] = now
        if emit:
            for stall in fresh:
                self.ingest({
                    "ts": now, "kind": "stall", "source": stall["source"],
                    "reason": stall["reason"],
                    "idle_seconds": stall["idle_seconds"],
                    "probes": stall["probes"],
                    "point": stall.get("point"),
                })
        return stalls

    def start_watchdog(self, interval: Optional[float] = None) -> None:
        """Run :meth:`check_stalls` periodically on a daemon thread."""
        if self._watchdog_thread is not None:
            return
        period = interval if interval is not None else max(
            0.05, self.stall_after / 4.0
        )
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(period):
                self.check_stalls()

        thread = threading.Thread(
            target=loop, name="repro-telemetry-watchdog", daemon=True
        )
        self._watchdog_stop = stop
        self._watchdog_thread = thread
        thread.start()

    def close(self) -> None:
        if self._watchdog_stop is not None:
            self._watchdog_stop.set()
            self._watchdog_thread.join(timeout=5.0)
            self._watchdog_stop = None
            self._watchdog_thread = None
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TelemetryHub":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- Prometheus exposition ------------------------------------------
    def prometheus(self) -> str:
        """Prometheus text exposition of the rolling health state.

        Canonical names (``_seconds``/``_bytes``/``_total`` unit
        suffixes, ``# HELP``/``# TYPE`` per family) so a real scraper
        pointed at the ``--listen`` endpoint ingests it cleanly; see
        :func:`repro.analysis.export.validate_prom_exposition`.
        """
        health = self.health()
        lines: List[str] = []

        def family(name: str, kind: str, help_text: str,
                   samples: List[Tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                if value != value or value in (float("inf"), float("-inf")):
                    continue  # NaN/inf never reach the scraper
                rendered = (
                    str(int(value)) if float(value).is_integer() else repr(float(value))
                )
                lines.append(f"{name}{labels} {rendered}")

        points = health["points"]
        family("repro_run_uptime_seconds", "gauge",
               "Wall seconds since the telemetry hub started.",
               [("", health["uptime_seconds"])])
        family("repro_run_points", "gauge",
               "Total points in the running sweep plan.",
               [("", float(points["total"] or 0))])
        for counter in ("done", "failed", "retried", "crashed"):
            family(f"repro_run_points_{counter}_total", "counter",
                   f"Sweep points {counter} so far.",
                   [("", float(points[counter]))])
        family("repro_run_points_running", "gauge",
               "Sweep points currently executing.",
               [("", float(len(points["running"])))])
        family("repro_telemetry_events_total", "counter",
               "Telemetry events ingested by the hub.",
               [("", float(health["events_seen"]))])
        family("repro_run_stalled_workers", "gauge",
               "Workers currently flagged by the stall watchdog.",
               [("", float(len(health["stalled"])))])

        workers = health["workers"]

        def worker_samples(field: str) -> List[Tuple[str, float]]:
            return [
                (f'{{worker="{source}"}}', float(doc[field]))
                for source, doc in workers.items()
            ]

        family("repro_worker_rss_bytes", "gauge",
               "Worker process peak resident set size.",
               worker_samples("rss_bytes"))
        family("repro_worker_cpu_seconds", "gauge",
               "Worker process CPU time consumed.",
               worker_samples("cpu_seconds"))
        family("repro_worker_sim_time_seconds", "gauge",
               "Latest simulated time reached by the worker's cells.",
               worker_samples("sim_time"))
        family("repro_worker_events_total", "counter",
               "Simulation events processed by the worker's cells.",
               worker_samples("events"))
        family("repro_worker_events_per_second", "gauge",
               "Simulation event rate over the last heartbeat interval.",
               worker_samples("events_per_sec"))
        family("repro_worker_queue_depth", "gauge",
               "Pending simulation events across the worker's cells.",
               worker_samples("queue_depth"))
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTTP egress — opt-in stdlib endpoint (no third-party deps)
# ----------------------------------------------------------------------
def parse_listen(spec: Union[str, int]) -> Tuple[str, int]:
    """``"8080"`` → ``("127.0.0.1", 8080)``; ``"0.0.0.0:9090"`` splits."""
    if isinstance(spec, int):
        return "127.0.0.1", spec
    host, sep, port = str(spec).rpartition(":")
    if not sep:
        host, port = "127.0.0.1", spec
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(
            f"invalid listen address {spec!r}: expected [HOST:]PORT"
        ) from None


def serve_http(hub: TelemetryHub, listen: Union[str, int]):
    """Serve ``/health`` (JSON) and ``/metrics`` (Prometheus) for
    ``hub`` on a daemon thread; returns the live ``HTTPServer`` (its
    ``server_address`` carries the bound port; ``shutdown()`` stops it).
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    host, port = parse_listen(listen)

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            route = self.path.split("?", 1)[0].rstrip("/") or "/"
            if route in ("/health", "/health.json"):
                body = json.dumps(hub.health(), sort_keys=True, indent=2) + "\n"
                ctype = "application/json"
            elif route == "/metrics":
                body = hub.prometheus()
                ctype = "text/plain; version=0.0.4"
            elif route == "/":
                body = "repro telemetry: /health (JSON), /metrics (Prometheus)\n"
                ctype = "text/plain"
            else:
                self.send_error(404)
                return
            payload = body.encode()
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args: Any) -> None:  # silence per-request spam
            pass

    server = ThreadingHTTPServer((host, port), Handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-telemetry-http", daemon=True
    )
    thread.start()
    return server


# ----------------------------------------------------------------------
# Watch — replay/follow a telemetry.jsonl into a live terminal view
# ----------------------------------------------------------------------
def read_events(fh: IO[str]) -> List[Event]:
    """Parse every complete event line currently available on ``fh``
    (torn trailing writes are left for the next poll)."""
    events: List[Event] = []
    while True:
        position = fh.tell()
        line = fh.readline()
        if not line:
            break
        if not line.endswith("\n"):
            fh.seek(position)  # torn write: retry on the next poll
            break
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            continue
    return events


def render_health(health: Dict[str, Any]) -> str:
    """Compact terminal rendering of a hub health document."""
    lines: List[str] = []
    run = health.get("run") or {}
    points = health.get("points") or {}
    total = points.get("total")
    done = points.get("done", 0)
    label = run.get("experiment", run.get("kind", "run"))
    progress = f"{done}/{total}" if total else str(done)
    lines.append(
        f"run {label}: {progress} points done, "
        f"{points.get('failed', 0)} failed, {points.get('retried', 0)} retried, "
        f"{points.get('crashed', 0)} crashed"
    )
    running = points.get("running") or []
    if running:
        lines.append(f"running ({len(running)}):")
        for key in running[:8]:
            lines.append(f"  {key}")
        if len(running) > 8:
            lines.append(f"  ... and {len(running) - 8} more")
    workers = health.get("workers") or {}
    # Freshest-first, heartbeating sources only, capped: a long sweep
    # accretes one entry per finished worker process and only the live
    # ones matter here.
    ordered = sorted(
        (kv for kv in workers.items() if kv[1].get("beats", 0) > 0),
        key=lambda kv: (
            kv[1].get("age_seconds") is None,
            kv[1].get("age_seconds") or 0.0,
        ),
    )
    for source, doc in ordered[:12]:
        age = doc.get("age_seconds")
        age_text = f"{age:5.1f}s ago" if age is not None else "   never"
        lines.append(
            f"worker {source}: beat {age_text}  "
            f"sim_time={doc.get('sim_time', 0.0):.1f}s  "
            f"events={doc.get('events', 0)}  "
            f"({doc.get('events_per_sec', 0.0):.0f}/s)  "
            f"rss={doc.get('rss_bytes', 0.0) / 1048576:.1f}MiB  "
            f"queue={doc.get('queue_depth', 0)}"
        )
    if len(ordered) > 12:
        lines.append(f"... and {len(ordered) - 12} more workers")
    for stall in health.get("stalled") or []:
        where = stall.get("point") or ", ".join(stall.get("probes") or []) or "?"
        lines.append(
            f"STALLED {stall['source']}: {stall['reason']} "
            f"for {stall['idle_seconds']:.1f}s (wedged: {where})"
        )
    finished = health.get("finished")
    if finished:
        lines.append(
            f"finished: {finished.get('completed', '?')} ok, "
            f"{finished.get('failed', '?')} failed "
            f"[{finished.get('wall_seconds', 0.0):.1f}s wall]"
        )
    return "\n".join(lines)


def resolve_watch_target(target: str) -> pathlib.Path:
    """A watch target is a ``telemetry.jsonl`` path or a directory
    containing one."""
    path = pathlib.Path(target)
    if path.is_dir():
        path = path / "telemetry.jsonl"
    return path


def watch(
    target: str,
    interval: float = 1.0,
    follow: bool = True,
    stall_after: float = STALL_AFTER,
    out: Optional[IO[str]] = None,
    max_wait: Optional[float] = None,
) -> int:
    """Replay (and optionally follow) a telemetry log, rendering the
    rolling health view — the ``python -m repro watch`` engine.

    Returns 0 when the stream reached ``run_finished`` (or a complete
    replay in ``--once`` mode), 1 if following timed out via
    ``max_wait`` without the run finishing, 2 when the log never
    appeared.
    """
    if out is None:
        out = sys.stdout  # resolved at call time so redirection works
    path = resolve_watch_target(target)
    deadline = time.time() + max_wait if max_wait is not None else None
    while not path.exists():
        if not follow or (deadline is not None and time.time() > deadline):
            print(f"no telemetry log at {path}", file=sys.stderr)
            return 2
        time.sleep(min(interval, 0.2))
    hub = TelemetryHub(stall_after=stall_after)
    with path.open() as fh:
        while True:
            for event in read_events(fh):
                hub.ingest(event)
            hub.check_stalls(emit=False)
            print(render_health(hub.health()), file=out, flush=True)
            if hub.finished is not None or not follow:
                return 0
            if deadline is not None and time.time() > deadline:
                return 1
            print("---", file=out, flush=True)
            time.sleep(interval)
