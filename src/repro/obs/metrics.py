"""Deterministic metrics: counters, gauges and fixed-bucket histograms.

Every layer of the emulation keeps ad-hoc private counters
(``Simulator.events_processed``, ``Rule.hits``, pipe drop counts, ...).
This module gives them a *shared registry* so an experiment can
snapshot the whole platform in one call, diff two snapshots, and
export the result — the paper's validation figures (scheduler
fairness, IPFW rule cost, folding ratio) are all "measure the
platform" exercises, and LiteLab-style harnesses show those numbers
are only trustworthy when collected uniformly.

Design rules:

* **Determinism.** Metrics derived from simulation state (sim-time,
  event counts, byte counts) are *deterministic*: two runs with the
  same seed must produce byte-identical snapshots. Metrics derived
  from the host's wall clock (callback profiling) are flagged
  ``wall=True`` and excluded from :meth:`MetricsRegistry.snapshot`
  in its default deterministic mode.
* **Naming.** ``layer.component.metric`` with dots, e.g.
  ``sim.kernel.events_processed``, ``net.ipfw.rules_scanned_total``,
  ``bt.client.choke_rounds``.
* **Zero-overhead no-op.** :data:`NULL_REGISTRY` hands out shared
  do-nothing instruments; components cache the instrument at
  construction time, so a disabled run costs one attribute lookup and
  an empty method call per event at most.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError


#: Default histogram bucket edges (seconds-flavoured, log-ish spacing).
#: Fixed edges keep bucket counts comparable across runs and machines.
DEFAULT_EDGES: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1000.0,
)

#: Bucket edges suited to byte-sized observations (queue occupancy).
BYTES_EDGES: Tuple[float, ...] = (
    0.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "wall", "value")

    kind = "counter"

    def __init__(self, name: str, wall: bool = False) -> None:
        self.name = name
        self.wall = wall
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Point-in-time value with peak tracking."""

    __slots__ = ("name", "wall", "value", "peak")

    kind = "gauge"

    def __init__(self, name: str, wall: bool = False) -> None:
        self.name = name
        self.wall = wall
        self.value: float = 0
        self.peak: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value, "peak": self.peak}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value}, peak={self.peak})"


class Histogram:
    """Fixed-bucket histogram (cumulative-free, per-bucket counts).

    ``edges`` are upper bounds; an observation lands in the first
    bucket whose edge is >= the value, or the overflow bucket. The
    edges are part of the metric's identity — registering the same
    name with different edges raises.
    """

    __slots__ = ("name", "wall", "edges", "counts", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(
        self, name: str, edges: Sequence[float] = DEFAULT_EDGES, wall: bool = False
    ) -> None:
        if list(edges) != sorted(edges):
            raise ObservabilityError(f"histogram {name!r}: edges must be sorted")
        if not edges:
            raise ObservabilityError(f"histogram {name!r}: needs at least one edge")
        self.name = name
        self.wall = wall
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)  # +overflow
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left: bucket i holds values <= edges[i]; the last
        # slot is the overflow bucket for values beyond every edge.
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.6f})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

Snapshot = Dict[str, Dict[str, object]]


class MetricsRegistry:
    """Name-keyed store of instruments, shared by one experiment.

    Instruments are get-or-create: calling :meth:`counter` twice with
    the same name returns the same object, so every firewall / pipe /
    connection in a run aggregates into one platform-wide metric.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- factories -----------------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if metric.kind != kind:  # type: ignore[attr-defined]
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str, wall: bool = False) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name, wall))  # type: ignore[return-value]

    def gauge(self, name: str, wall: bool = False) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name, wall))  # type: ignore[return-value]

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_EDGES, wall: bool = False
    ) -> Histogram:
        hist = self._get_or_create(name, "histogram", lambda: Histogram(name, edges, wall))
        if hist.edges != tuple(edges):  # type: ignore[attr-defined]
            raise ObservabilityError(
                f"histogram {name!r} already registered with different edges"
            )
        return hist  # type: ignore[return-value]

    # -- introspection -------------------------------------------------
    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshots -----------------------------------------------------
    def snapshot(self, include_wall: bool = False) -> Snapshot:
        """Sorted ``{name: {kind, value, ...}}`` view of the registry.

        The default excludes wall-clock-derived instruments so that two
        same-seed runs produce byte-identical snapshots (the
        reproducibility guard the paper's methodology needs).
        """
        out: Snapshot = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.wall and not include_wall:  # type: ignore[attr-defined]
                continue
            out[name] = metric.as_dict()  # type: ignore[attr-defined]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """Per-metric delta between two snapshots of the *same* registry.

    Counters/gauges report ``value`` deltas (gauges also the later
    peak); histograms report count/sum deltas and per-bucket count
    deltas. Metrics absent from ``before`` diff against zero.
    """
    out: Snapshot = {}
    for name, cur in after.items():
        prev = before.get(name)
        kind = cur["kind"]
        if kind == "histogram":
            prev_counts = prev["counts"] if prev else [0] * len(cur["counts"])  # type: ignore[index]
            out[name] = {
                "kind": kind,
                "count": cur["count"] - (prev["count"] if prev else 0),  # type: ignore[operator]
                "sum": cur["sum"] - (prev["sum"] if prev else 0.0),  # type: ignore[operator]
                "counts": [c - p for c, p in zip(cur["counts"], prev_counts)],  # type: ignore[arg-type]
                "edges": cur["edges"],
            }
        else:
            entry: Dict[str, object] = {
                "kind": kind,
                "value": cur["value"] - (prev["value"] if prev else 0),  # type: ignore[operator]
            }
            if kind == "gauge":
                entry["peak"] = cur["peak"]
            out[name] = entry
    return out


# ----------------------------------------------------------------------
# Zero-overhead no-op mode
# ----------------------------------------------------------------------


class NullCounter:
    """Do-nothing counter (shared singleton via :data:`NULL_REGISTRY`)."""

    __slots__ = ()
    kind = "counter"
    name = "<null>"
    wall = False
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:  # pragma: no cover - never exported
        return {"kind": self.kind, "value": 0}


class NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = "<null>"
    wall = False
    value = 0
    peak = 0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:  # pragma: no cover - never exported
        return {"kind": self.kind, "value": 0, "peak": 0}


class NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = "<null>"
    wall = False
    edges: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    min = None
    max = None

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:  # pragma: no cover - never exported
        return {"kind": self.kind, "count": 0, "sum": 0.0, "edges": [], "counts": []}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetricsRegistry:
    """Registry that hands out shared no-op instruments.

    Components cache the instrument they obtain at construction time;
    with this registry every subsequent ``inc``/``observe`` is an empty
    method on a ``__slots__ = ()`` singleton — the "disabled" mode of
    the observability layer.
    """

    enabled = False

    def counter(self, name: str, wall: bool = False) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, wall: bool = False) -> NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_EDGES, wall: bool = False
    ) -> NullHistogram:
        return _NULL_HISTOGRAM

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self, include_wall: bool = False) -> Snapshot:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullMetricsRegistry()"


#: Shared disabled registry — pass as ``Simulator(..., metrics=NULL_REGISTRY)``.
NULL_REGISTRY = NullMetricsRegistry()
