"""Event-loop profiler: wall-time per handler category.

The folding-fidelity question the paper's "note of caution" raises is
*which layer burns host CPU* as the vnodes-per-pnode ratio grows: at
folding factor 80, is the host busy in the firewall scan, the pipe
events, or the BitTorrent client logic? This profiler answers that by
attributing every event callback's wall-clock duration to a handler
category derived from the callback's defining module/class
(``net.pipe``, ``net.tcp.Connection``, ``bt.client``, ``sim.process``,
...).

Wall-clock rule: everything recorded here comes from the host's clock
and is therefore **never** part of a deterministic snapshot or a
byte-identity export. The chrometrace exporter only includes profiler
data when explicitly asked (``include_profile=True``), and the
``python -m repro trace`` CLI labels such output non-reproducible.

Disabled mode is :data:`NULL_PROFILER` (shared no-op), following the
NULL-instrument convention: the kernel's run loop tests one attribute
per run and pays nothing per event.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


def categorize(callback: Callable[..., Any]) -> str:
    """Handler category of a callback: ``layer.component[.Class]``.

    Derived from the callback's defining module (with the package
    prefix stripped) plus the class name for bound methods —
    ``repro.net.pipe.DummynetPipe.transmit`` → ``net.pipe``;
    a bound ``Connection._retransmit`` → ``net.tcp.Connection``.
    """
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", None) or "unknown"
    if module.startswith("repro."):
        module = module[len("repro."):]
    qualname = getattr(func, "__qualname__", getattr(func, "__name__", "?"))
    cls = qualname.split(".")[0] if "." in qualname else None
    owner = getattr(callback, "__self__", None)
    if owner is not None and cls is not None:
        return f"{module}.{cls}"
    if "<locals>" in qualname or "<lambda>" in qualname:
        return f"{module}.<local>"
    return module


class EventLoopProfiler:
    """Accumulates per-category event counts and wall seconds."""

    enabled = True

    __slots__ = ("_stats", "_cache", "events", "wall_seconds")

    def __init__(self) -> None:
        #: category -> [events, wall_seconds]
        self._stats: Dict[str, List[float]] = {}
        #: categorization cache keyed by the callback's underlying code
        #: object (bound methods share one function per class).
        self._cache: Dict[int, str] = {}
        self.events = 0
        self.wall_seconds = 0.0

    def record(self, callback: Callable[..., Any], wall: float) -> None:
        """Attribute one callback invocation of ``wall`` seconds."""
        func = getattr(callback, "__func__", callback)
        code = getattr(func, "__code__", func)
        key = id(code)
        category = self._cache.get(key)
        if category is None:
            category = categorize(callback)
            self._cache[key] = category
        stat = self._stats.get(category)
        if stat is None:
            stat = [0, 0.0]
            self._stats[category] = stat
        stat[0] += 1
        stat[1] += wall
        self.events += 1
        self.wall_seconds += wall

    # -- views ---------------------------------------------------------
    def report(self) -> List[Tuple[str, int, float]]:
        """``(category, events, wall_seconds)`` rows, hottest first."""
        rows = [
            (name, int(stat[0]), stat[1]) for name, stat in self._stats.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{category: {events, wall_seconds, wall_fraction}}`` (wall data —
        keep out of deterministic exports)."""
        total = self.wall_seconds or 1.0
        return {
            name: {
                "events": int(stat[0]),
                "wall_seconds": stat[1],
                "wall_fraction": stat[1] / total,
            }
            for name, stat in sorted(self._stats.items())
        }

    def format(self, top: int = 15) -> str:
        """Human-readable table of the hottest handler categories."""
        rows = self.report()[:top]
        if not rows:
            return "(no events profiled)"
        width = max(len(name) for name, _, _ in rows)
        lines = [
            f"{'category':<{width}}  {'events':>10}  {'wall (s)':>10}  {'share':>6}"
        ]
        total = self.wall_seconds or 1.0
        for name, events, wall in rows:
            lines.append(
                f"{name:<{width}}  {events:>10}  {wall:>10.4f}  {wall / total:>5.1%}"
            )
        lines.append(
            f"{'TOTAL':<{width}}  {self.events:>10}  {self.wall_seconds:>10.4f}"
        )
        return "\n".join(lines)

    def clear(self) -> None:
        self._stats.clear()
        self.events = 0
        self.wall_seconds = 0.0

    def __len__(self) -> int:
        return len(self._stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLoopProfiler({len(self._stats)} categories, "
            f"{self.events} events, {self.wall_seconds:.3f}s)"
        )


class NullEventLoopProfiler:
    """Do-nothing profiler (the default on every simulator)."""

    __slots__ = ()
    enabled = False
    events = 0
    wall_seconds = 0.0

    def record(self, callback: Callable[..., Any], wall: float) -> None:
        pass

    def report(self) -> List[Tuple[str, int, float]]:
        return []

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {}

    def format(self, top: int = 15) -> str:
        return "(profiler disabled)"

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullEventLoopProfiler()"


#: Shared disabled profiler.
NULL_PROFILER = NullEventLoopProfiler()
