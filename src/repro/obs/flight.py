"""Packet flight recorder: hop-by-hop lifecycle of every packet.

The aggregate instruments (:mod:`repro.obs.metrics`) answer "how many
rules were scanned in total?"; the flight recorder answers "where did
*this* packet's 300 ms go?". Every :class:`~repro.net.packet.Packet`
that enters a stack while recording is enabled gets a
:class:`PacketFlight`: an ordered list of :class:`Hop` records covering
its full path —

    NIC enqueue → ipfw rule match (rule numbers, linear-vs-indexed
    lookup cost) → pipe queue wait / serialization / propagation (or
    drop, with the reason) → delivery → TCP ack

Each hop stores its absolute sim-time boundaries ``t0``/``t1``; the
boundaries are recorded with *exactly the arithmetic the scheduler
uses* (``now + delay``), so consecutive hops tile the interval
``[t_send, t_deliver]`` with bit-exact contiguity and the per-hop
latency decomposition sums to the packet's end-to-end latency.

Everything here is keyed to the deterministic simulation clock, so a
flight export is byte-identical across same-seed runs. The disabled
mode is :data:`NULL_FLIGHT`, a shared no-op recorder following the
same zero-overhead convention as ``NULL_REGISTRY``: components cache
the recorder at construction and guard hop recording with a single
``enabled`` attribute test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Hop kinds (the lifecycle stages).
HOP_NIC = "nic"          # instant: packet handed to the stack (NIC enqueue)
HOP_IPFW = "ipfw"        # firewall rule match (duration = scanned * rule cost)
HOP_LOOPBACK = "lo0"     # kernel loopback latency (true or co-hosted)
HOP_PIPE = "pipe"        # Dummynet pipe: queue wait + serialization + delay
HOP_DELIVER = "deliver"  # instant: handed to the local transport demux
HOP_ACK = "tcp.ack"      # instant: transport-level acknowledgement
HOP_DROP = "drop"        # instant: the packet died here

#: Flight status values.
STATUS_IN_FLIGHT = "in_flight"
STATUS_DELIVERED = "delivered"
STATUS_DROPPED = "dropped"
STATUS_DENIED = "denied"


class Hop:
    """One stage of a packet's flight.

    ``t0``/``t1`` are absolute sim-times; instant stages have
    ``t1 == t0``. ``detail`` carries stage-specific fields (rule
    numbers scanned, queue wait vs serialization split, pipe name,
    drop reason, ...).
    """

    __slots__ = ("kind", "node", "t0", "t1", "detail")

    def __init__(
        self,
        kind: str,
        node: str,
        t0: float,
        t1: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.node = node
        self.t0 = t0
        self.t1 = t1
        self.detail = detail if detail is not None else {}

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "node": self.node,
            "t0": self.t0,
            "t1": self.t1,
            "detail": dict(sorted(self.detail.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hop({self.kind} @{self.node} "
            f"{self.t0:.6f}..{self.t1:.6f} {self.detail})"
        )


class PacketFlight:
    """The recorded lifecycle of one packet."""

    __slots__ = (
        "packet_id", "flow", "src", "dst", "proto", "kind", "size",
        "t_send", "t_end", "status", "hops",
    )

    def __init__(
        self,
        packet_id: int,
        flow: str,
        src: str,
        dst: str,
        proto: str,
        kind: str,
        size: int,
        t_send: float,
    ) -> None:
        self.packet_id = packet_id
        self.flow = flow
        self.src = src
        self.dst = dst
        self.proto = proto
        self.kind = kind
        self.size = size
        self.t_send = t_send
        self.t_end: Optional[float] = None
        self.status = STATUS_IN_FLIGHT
        self.hops: List[Hop] = []

    # -- derived views -------------------------------------------------
    @property
    def latency(self) -> Optional[float]:
        """End-to-end sim latency (None while in flight)."""
        return None if self.t_end is None else self.t_end - self.t_send

    def timed_hops(self) -> List[Hop]:
        """Hops with nonzero extent plus instants, in time order."""
        return sorted(self.hops, key=lambda h: (h.t0, h.t1))

    def decomposition(self) -> List[Tuple[str, float]]:
        """Per-hop latency decomposition ``[(label, seconds), ...]``.

        Durations are differences of the recorded absolute boundaries.
        Because every boundary is produced by the same ``now + delay``
        arithmetic the scheduler uses, consecutive timed hops tile
        ``[t_send, t_end]`` exactly; :meth:`contiguous` verifies the
        tiling bit-for-bit.
        """
        out: List[Tuple[str, float]] = []
        for hop in self.timed_hops():
            if hop.t1 == hop.t0:
                continue  # instants carry no latency
            label = hop.kind
            name = hop.detail.get("pipe") or hop.detail.get("direction")
            if name:
                label = f"{hop.kind}:{name}"
            out.append((f"{label}@{hop.node}", hop.duration))
        return out

    def contiguous(self) -> bool:
        """True when the timed hops tile ``[t_send, t_end]`` exactly."""
        if self.t_end is None:
            return False
        cursor = self.t_send
        for hop in self.timed_hops():
            if hop.t1 == hop.t0:
                continue
            if hop.t0 != cursor:
                return False
            cursor = hop.t1
        return cursor == self.t_end

    def as_dict(self) -> Dict[str, Any]:
        return {
            "packet_id": self.packet_id,
            "flow": self.flow,
            "src": self.src,
            "dst": self.dst,
            "proto": self.proto,
            "kind": self.kind,
            "size": self.size,
            "t_send": self.t_send,
            "t_end": self.t_end,
            "status": self.status,
            "hops": [h.as_dict() for h in self.hops],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketFlight(#{self.packet_id} {self.flow} "
            f"{self.status}, hops={len(self.hops)})"
        )


class FlightRecorder:
    """Records :class:`PacketFlight` objects for every packet sighted.

    One recorder serves the whole testbed (it lives on the simulator as
    ``sim.flight``); stacks, pipes and transports call into it from
    their hot paths, each call guarded by the ``enabled`` attribute so
    the disabled mode costs one attribute load and a bool test.

    ``max_flights`` bounds memory on long runs: once the limit is
    reached, completed flights are still finalized but no new flights
    start (``flights_overflowed`` counts the misses).
    """

    enabled = True

    def __init__(self, max_flights: Optional[int] = None) -> None:
        self._flights: Dict[int, PacketFlight] = {}
        self.max_flights = max_flights
        self.flights_overflowed = 0

    # -- lifecycle hooks (called from the network layers) ---------------
    def send(self, pkt, node: str, now: float) -> None:
        """The packet entered ``node``'s stack (NIC enqueue)."""
        if pkt.id in self._flights:
            return  # already tracked (e.g. forwarded ICMP reply path)
        if self.max_flights is not None and len(self._flights) >= self.max_flights:
            self.flights_overflowed += 1
            return
        flow = pkt.flow
        if flow is None:
            flow = f"{pkt.proto}:{pkt.src}:{pkt.sport}->{pkt.dst}:{pkt.dport}"
            pkt.flow = flow
        flight = PacketFlight(
            packet_id=pkt.id,
            flow=flow,
            src=str(pkt.src),
            dst=str(pkt.dst),
            proto=pkt.proto,
            kind=pkt.kind,
            size=pkt.size,
            t_send=now,
        )
        flight.hops.append(Hop(HOP_NIC, node, now, now))
        self._flights[pkt.id] = flight

    def ipfw(
        self,
        pkt,
        node: str,
        direction: str,
        now: float,
        t1: float,
        scanned: int,
        matched: Tuple[int, ...],
        indexed: bool,
    ) -> None:
        """The firewall evaluated the packet over ``[now, t1]``."""
        flight = self._flights.get(pkt.id)
        if flight is None:
            return
        flight.hops.append(
            Hop(
                HOP_IPFW,
                node,
                now,
                t1,
                {
                    "direction": direction,
                    "scanned": scanned,
                    "matched": list(matched),
                    "lookup": "indexed" if indexed else "linear",
                },
            )
        )

    def loopback(self, pkt, node: str, now: float, t1: float) -> None:
        flight = self._flights.get(pkt.id)
        if flight is None:
            return
        flight.hops.append(Hop(HOP_LOOPBACK, node, now, t1))

    def pipe(
        self,
        pkt,
        node: str,
        pipe_name: str,
        now: float,
        t1: float,
        wait: float,
        txn: float,
        delay: float,
        backlog_bytes: float,
    ) -> None:
        """The packet traversed a Dummynet pipe over ``[now, t1]``.

        ``node`` is the pipe's owner (the pnode whose kernel runs it, or
        ``"switch"`` for fabric pipes); ``wait``/``txn``/``delay`` are
        the nominal queue-wait, serialization and propagation components
        (their rounded sum is ``t1 - now``); ``backlog_bytes`` is the
        queue occupancy found on arrival.
        """
        flight = self._flights.get(pkt.id)
        if flight is None:
            return
        flight.hops.append(
            Hop(
                HOP_PIPE,
                node,
                now,
                t1,
                {
                    "pipe": pipe_name,
                    "wait": wait,
                    "serialize": txn,
                    "propagate": delay,
                    "backlog_bytes": backlog_bytes,
                },
            )
        )

    def deliver(self, pkt, node: str, now: float) -> None:
        """The packet reached the local transport demux — flight over."""
        flight = self._flights.get(pkt.id)
        if flight is None:
            return
        flight.hops.append(Hop(HOP_DELIVER, node, now, now))
        flight.t_end = now
        flight.status = STATUS_DELIVERED

    def drop(self, pkt, node: str, now: float, reason: str) -> None:
        """A pipe (or queue) killed the packet."""
        flight = self._flights.get(pkt.id)
        if flight is None:
            return
        flight.hops.append(Hop(HOP_DROP, node, now, now, {"reason": reason}))
        flight.t_end = now
        flight.status = STATUS_DROPPED

    def deny(self, pkt, node: str, now: float, direction: str) -> None:
        """The firewall denied the packet."""
        flight = self._flights.get(pkt.id)
        if flight is None:
            return
        flight.hops.append(
            Hop(HOP_DROP, node, now, now, {"reason": f"ipfw-deny-{direction}"})
        )
        flight.t_end = now
        flight.status = STATUS_DENIED

    def ack(
        self, packet_id: int, node: str, now: float, rtt: Optional[float] = None
    ) -> None:
        """Transport-level acknowledgement of the packet's payload.

        Takes the packet *id* (transports track segments, not packets;
        a retransmitted segment acknowledges its latest packet).
        """
        flight = self._flights.get(packet_id)
        if flight is None:
            return
        detail: Dict[str, Any] = {}
        if rtt is not None:
            detail["rtt"] = rtt
        flight.hops.append(Hop(HOP_ACK, node, now, now, detail))

    # -- introspection -------------------------------------------------
    def get(self, packet_id: int) -> Optional[PacketFlight]:
        return self._flights.get(packet_id)

    def flights(self, status: Optional[str] = None) -> List[PacketFlight]:
        """All flights in packet-id (i.e. creation) order."""
        out = [self._flights[k] for k in sorted(self._flights)]
        if status is not None:
            out = [f for f in out if f.status == status]
        return out

    def by_flow(self, flow: str) -> List[PacketFlight]:
        return [f for f in self.flights() if f.flow == flow]

    def as_list(self) -> List[Dict[str, Any]]:
        return [f.as_dict() for f in self.flights()]

    def clear(self) -> None:
        self._flights.clear()
        self.flights_overflowed = 0

    def __len__(self) -> int:
        return len(self._flights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightRecorder({len(self._flights)} flights)"


class NullFlightRecorder:
    """Do-nothing recorder: the zero-overhead disabled mode.

    Hot paths guard calls with ``if flight.enabled:`` so the disabled
    cost is one attribute load; even unguarded calls are empty methods
    on a ``__slots__ = ()`` singleton.
    """

    __slots__ = ()
    enabled = False
    max_flights = 0
    flights_overflowed = 0

    def send(self, pkt, node: str, now: float) -> None:
        pass

    def ipfw(self, pkt, node, direction, now, t1, scanned, matched, indexed) -> None:
        pass

    def loopback(self, pkt, node, now, t1) -> None:
        pass

    def pipe(
        self, pkt, node, pipe_name, now, t1, wait, txn, delay, backlog_bytes
    ) -> None:
        pass

    def deliver(self, pkt, node, now) -> None:
        pass

    def drop(self, pkt, node, now, reason) -> None:
        pass

    def deny(self, pkt, node, now, direction) -> None:
        pass

    def ack(self, packet_id, node, now, rtt=None) -> None:
        pass

    def get(self, packet_id: int) -> None:
        return None

    def flights(self, status: Optional[str] = None) -> List[PacketFlight]:
        return []

    def by_flow(self, flow: str) -> List[PacketFlight]:
        return []

    def as_list(self) -> List[Dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullFlightRecorder()"


#: Shared disabled recorder.
NULL_FLIGHT = NullFlightRecorder()
