"""Per-run provenance: the run manifest.

The virtual-edge-testbed literature's "note of caution" is that
emulation numbers are only interpretable alongside a record of *how*
they were produced. A :class:`RunManifest` captures that record for
one run: the seed, a content hash of the topology, package/python
versions, the final simulation clock, wall-clock cost, and event
counts. Experiments attach it to every metrics export so a result
file is self-describing.

Wall-clock fields are obviously not reproducible; they live in the
manifest (provenance), never in the metric snapshot (the determinism
guard). Fields that cannot be determined are ``None`` rather than
guessed.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def topology_fingerprint(spec: Any) -> str:
    """Deterministic sha256 over a :class:`~repro.topology.spec.TopologySpec`.

    Canonicalizes groups (sorted by name) and latency entries (sorted
    by prefix pair) into JSON and hashes that — stable across runs,
    interpreters and ``PYTHONHASHSEED``.
    """
    groups = []
    for name in sorted(spec.groups):
        g = spec.groups[name]
        groups.append(
            {
                "name": g.name,
                "prefix": str(g.prefix),
                "count": g.count,
                "down_bw": g.down_bw,
                "up_bw": g.up_bw,
                "latency": g.latency,
                "plr": g.plr,
            }
        )
    latencies = sorted(
        [str(src), str(dst), lat] for src, dst, lat in spec.iter_latency_entries()
    )
    doc = json.dumps(
        {"name": spec.name, "groups": groups, "latencies": latencies},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """Provenance record of one emulation run."""

    seed: Optional[int] = None
    package_version: Optional[str] = None
    python_version: str = field(default_factory=platform.python_version)
    topology_hash: Optional[str] = None
    sim_time: float = 0.0
    wall_time_seconds: Optional[float] = None
    events_processed: int = 0
    events_pending: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_sim(
        cls,
        sim: Any,
        seed: Optional[int] = None,
        topology_hash: Optional[str] = None,
        wall_time_seconds: Optional[float] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Build a manifest from a :class:`~repro.sim.kernel.Simulator`."""
        from repro import __version__

        if seed is None:
            seed = getattr(getattr(sim, "rng", None), "root_seed", None)
        return cls(
            seed=seed,
            package_version=__version__,
            topology_hash=topology_hash,
            sim_time=sim.now,
            wall_time_seconds=wall_time_seconds,
            events_processed=sim.events_processed,
            events_pending=sim.pending,
            extra=dict(extra),
        )

    def as_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """JSON-ready dict; ``deterministic_only`` drops host-specific
        fields (wall clock, python version) for byte-identity checks."""
        doc: Dict[str, Any] = {
            "seed": self.seed,
            "package_version": self.package_version,
            "topology_hash": self.topology_hash,
            "sim_time": self.sim_time,
            "events_processed": self.events_processed,
            "events_pending": self.events_pending,
            "extra": dict(sorted(self.extra.items())),
        }
        if not deterministic_only:
            doc["python_version"] = self.python_version
            doc["wall_time_seconds"] = self.wall_time_seconds
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunManifest(seed={self.seed}, sim_time={self.sim_time:.3f}, "
            f"events={self.events_processed})"
        )
