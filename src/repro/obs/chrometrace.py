"""Chrome Trace Event / Perfetto export.

Merges the platform's three timeline sources into one Chrome Trace
Event JSON document that opens directly in ``ui.perfetto.dev`` (or
``chrome://tracing``):

* :class:`~repro.obs.flight.FlightRecorder` packet flights → complete
  (``ph: "X"``) slices per hop (ipfw match, pipe wait/serialize/
  propagate, loopback) plus instants for NIC enqueue, delivery, drops
  and TCP acks;
* :class:`~repro.obs.span.Tracer` spans → experiment-level slices;
* :class:`~repro.sim.trace.TraceRecorder` records → instants on the
  emitting virtual node's row (the paper's time-stamped client logs);
* :class:`~repro.obs.timeseries.TimeSeriesSampler` series → counter
  (``ph: "C"``) tracks.

Row model: **physical nodes are pids, virtual nodes are tids** — a
5760-vnode run folds into as many process rows as there are pnodes,
which is exactly the folded-testbed view the paper reasons about. Each
pnode's ``tid 0`` is its kernel row (stack / firewall / pipes); hosted
vnodes get tids 1..n. The switch fabric and the experiment harness get
their own pids.

Determinism: all timestamps are simulation time (µs), inputs are
iterated in their deterministic creation order, sorting is stable and
keyed only on event fields — so the export is byte-identical across
same-seed runs and ``PYTHONHASHSEED`` values. Wall-clock profiler data
(:mod:`repro.obs.profile`) is only merged when ``include_profile=True``
and is carried in clearly-labelled metadata, never in timed events.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.flight import (
    HOP_ACK,
    HOP_DELIVER,
    HOP_DROP,
    HOP_IPFW,
    HOP_LOOPBACK,
    HOP_NIC,
    HOP_PIPE,
)

PathLike = Union[str, pathlib.Path]

#: pid of the experiment-harness process row (tracer spans, counters).
EXPERIMENT_PID = 0

#: Category per hop kind (these are what Perfetto's filter box sees).
_HOP_CATEGORY = {
    HOP_NIC: "net.stack",
    HOP_IPFW: "net.ipfw",
    HOP_LOOPBACK: "net.stack",
    HOP_PIPE: "net.pipe",
    HOP_DELIVER: "net.stack",
    HOP_DROP: "net.stack",
    HOP_ACK: "net.tcp",
}


def _us(t: float) -> float:
    """Sim seconds → trace microseconds."""
    return t * 1e6


class TraceLayout:
    """pid/tid assignment for a testbed (pnodes=pids, vnodes=tids)."""

    def __init__(self) -> None:
        self._rows: Dict[str, Tuple[int, int]] = {}
        self._process_names: Dict[int, str] = {EXPERIMENT_PID: "experiment"}
        self._thread_names: Dict[Tuple[int, int], str] = {
            (EXPERIMENT_PID, 0): "harness"
        }

    @classmethod
    def for_testbed(cls, testbed) -> "TraceLayout":
        """Lay out a :class:`~repro.virt.deployment.Testbed`: one pid
        per physical node (tid 0 = kernel), one tid per hosted vnode,
        plus a pid for the switch fabric."""
        layout = cls()
        pid = 0
        for pnode in testbed.pnodes:
            pid += 1
            layout.add_process(pid, pnode.name)
            layout.add_thread(pid, 0, "kernel (stack/ipfw/pipes)", pnode.name)
            tid = 0
            for vname, vnode in pnode.vnodes.items():
                tid += 1
                layout.add_thread(pid, tid, f"{vname} ({vnode.address})", vname)
        layout.add_process(pid + 1, "switch")
        layout.add_thread(pid + 1, 0, "fabric", "switch")
        return layout

    # ------------------------------------------------------------------
    def add_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def add_thread(self, pid: int, tid: int, name: str, label: str) -> None:
        self._thread_names[(pid, tid)] = name
        self._rows[label] = (pid, tid)

    def row_of(self, label: Optional[str]) -> Tuple[int, int]:
        """(pid, tid) for a node label; unknown labels land on the
        experiment row so no event is ever lost."""
        if label is None:
            return (EXPERIMENT_PID, 0)
        return self._rows.get(label, (EXPERIMENT_PID, 0))

    def metadata_events(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        for pid in sorted(self._process_names):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": self._process_names[pid]},
                }
            )
        for pid, tid in sorted(self._thread_names):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": self._thread_names[(pid, tid)]},
                }
            )
        return events

    def __len__(self) -> int:
        return len(self._rows)


# ----------------------------------------------------------------------
# Event builders
# ----------------------------------------------------------------------


def flight_events(flight_recorder, layout: TraceLayout) -> List[Dict[str, Any]]:
    """Hop slices + lifecycle instants for every recorded flight."""
    events: List[Dict[str, Any]] = []
    for flight in flight_recorder.flights():
        base_args = {"packet": flight.packet_id, "flow": flight.flow}
        for hop in flight.hops:
            pid, tid = layout.row_of(hop.node)
            cat = _HOP_CATEGORY.get(hop.kind, "net")
            args: Dict[str, Any] = dict(base_args)
            for key in sorted(hop.detail):
                args[key] = hop.detail[key]
            if hop.kind == HOP_IPFW:
                name = f"ipfw.{hop.detail.get('direction', '?')}"
            elif hop.kind == HOP_PIPE:
                name = f"pipe {hop.detail.get('pipe', '?')}"
            elif hop.kind == HOP_DROP:
                name = f"drop ({hop.detail.get('reason', '?')})"
            elif hop.kind == HOP_NIC:
                name = "nic.enqueue"
            else:
                name = hop.kind
            if hop.t1 > hop.t0:
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": cat,
                        "ts": _us(hop.t0),
                        "dur": _us(hop.t1 - hop.t0),
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
            else:
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "name": name,
                        "cat": cat,
                        "ts": _us(hop.t0),
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
    return events


def span_events(tracer, layout: TraceLayout) -> List[Dict[str, Any]]:
    """Tracer spans as slices on the experiment row (open spans are
    skipped — a trace export happens after the phases it covers)."""
    events: List[Dict[str, Any]] = []
    pid, tid = EXPERIMENT_PID, 0
    for span in sorted(tracer.finished, key=lambda s: s.index):
        if span.end is None:  # pragma: no cover - defensive
            continue
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "span",
                "ts": _us(span.start),
                "dur": _us(span.end - span.start),
                "pid": pid,
                "tid": tid,
                "args": dict(sorted(span.fields.items())),
            }
        )
    return events


def record_events(recorder, layout: TraceLayout) -> List[Dict[str, Any]]:
    """TraceRecorder records as instants on the emitting vnode's row."""
    events: List[Dict[str, Any]] = []
    for rec in recorder.select():
        args = rec.as_dict()
        pid, tid = layout.row_of(args.get("node"))
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": rec.category,
                "cat": rec.category,
                "ts": _us(rec.time),
                "pid": pid,
                "tid": tid,
                "args": dict(sorted(args.items())),
            }
        )
    return events


def counter_events(sampler, layout: TraceLayout) -> List[Dict[str, Any]]:
    """TimeSeriesSampler series as Perfetto counter tracks."""
    events: List[Dict[str, Any]] = []
    for name in sampler.names():
        for t, v in sampler.get(name):
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "cat": "timeseries",
                    "ts": _us(t),
                    "pid": EXPERIMENT_PID,
                    "tid": 0,
                    "args": {"value": v},
                }
            )
    return events


# ----------------------------------------------------------------------
# Document assembly
# ----------------------------------------------------------------------


def chrome_trace_document(
    layout: TraceLayout,
    flight_recorder=None,
    tracer=None,
    recorder=None,
    timeseries=None,
    profiler=None,
    include_profile: bool = False,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the Chrome Trace Event document.

    Deterministic by construction: inputs are walked in creation
    order, the final sort is stable on ``(ts, pid, tid)``, and
    wall-clock data only enters when ``include_profile`` is set.
    """
    events: List[Dict[str, Any]] = list(layout.metadata_events())
    timed: List[Dict[str, Any]] = []
    if flight_recorder is not None:
        timed.extend(flight_events(flight_recorder, layout))
    if tracer is not None:
        timed.extend(span_events(tracer, layout))
    if recorder is not None:
        timed.extend(record_events(recorder, layout))
    if timeseries is not None:
        timed.extend(counter_events(timeseries, layout))
    timed.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))  # stable
    events.extend(timed)
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(sorted((metadata or {}).items())),
    }
    if include_profile and profiler is not None and profiler.enabled:
        # Wall-clock data: explicitly labelled, never in timed events.
        doc["otherData"]["event_loop_profile_wall"] = profiler.as_dict()
    return doc


def chrome_trace_json(doc: Dict[str, Any]) -> str:
    """Stable-bytes serialization (sorted keys, compact separators)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: PathLike, doc: Dict[str, Any]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(chrome_trace_json(doc) + "\n")
    return path


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema check: returns a list of problems (empty = valid).

    Checks the subset of the Chrome Trace Event format that Perfetto
    requires: a ``traceEvents`` list whose members carry ``ph``/
    ``name``/``pid``/``tid``, timestamps on all timed phases, ``dur``
    on complete events and ``args`` dicts throughout.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("M", "X", "i", "C", "B", "E"):
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph in ("X", "i", "C") and "ts" not in ev:
            problems.append(f"event {i}: timed phase without ts")
        if ph == "X" and "dur" not in ev:
            problems.append(f"event {i}: complete event without dur")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"event {i}: args not an object")
    return problems
