"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch emulation failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """Base class for network-emulation errors."""


class AddressError(NetworkError):
    """Malformed or out-of-range IPv4 address/prefix."""


class RoutingError(NetworkError):
    """No route / unknown destination in the emulated network."""


class SocketError(NetworkError):
    """Errors raised by the emulated socket API (cf. POSIX errno)."""

    def __init__(self, errno_name: str, message: str = "") -> None:
        self.errno_name = errno_name
        super().__init__(f"{errno_name}: {message}" if message else errno_name)


class ConnectionRefused(SocketError):
    """No listener on the destination address/port."""

    def __init__(self, message: str = "") -> None:
        super().__init__("ECONNREFUSED", message)


class ConnectionReset(SocketError):
    """Peer closed the connection abruptly."""

    def __init__(self, message: str = "") -> None:
        super().__init__("ECONNRESET", message)


class AddressInUse(SocketError):
    """bind() to an address/port already bound."""

    def __init__(self, message: str = "") -> None:
        super().__init__("EADDRINUSE", message)


class AddressNotAvailable(SocketError):
    """bind() to an address not configured on any local interface."""

    def __init__(self, message: str = "") -> None:
        super().__init__("EADDRNOTAVAIL", message)


class InvalidSocketState(SocketError):
    """Operation invalid for the socket's current state (EINVAL/ENOTCONN)."""

    def __init__(self, message: str = "") -> None:
        super().__init__("EINVAL", message)


class FirewallError(NetworkError):
    """Invalid firewall/pipe configuration."""


class VirtualizationError(ReproError):
    """Errors in virtual-node management (placement, identity, libc)."""


class TopologyError(ReproError):
    """Inconsistent topology specification."""


class ExperimentError(ReproError):
    """Errors in experiment orchestration."""


class SchedulerError(ReproError):
    """Errors in the host-OS scheduler models."""


class ProtocolError(ReproError):
    """BitTorrent wire-protocol violation."""


class TrackerError(ReproError):
    """Tracker announce failure."""


class ObservabilityError(ReproError):
    """Metrics/tracing registry misuse (type conflict, bad bucket edges)."""
