"""Extract figure-shaped series from the experiment trace.

The paper's methodology: the client "was slightly modified to allow
data collection (a time-stamp was added to the default output)" and the
figures are built from those logs. Here the logs are
:class:`~repro.sim.trace.TraceRecord` streams; these functions turn
them into the series each figure plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceRecorder

Series = List[Tuple[float, float]]


def progress_series(trace: TraceRecorder, node: Optional[str] = None) -> Dict[str, Series]:
    """Per-client download progress curves (Figures 8 and 10).

    Returns ``{node: [(time, percent), ...]}`` from ``bt.progress``.
    """
    out: Dict[str, Series] = {}
    for rec in trace.select("bt.progress"):
        rec_node = rec.get("node")
        if node is not None and rec_node != node:
            continue
        out.setdefault(rec_node, []).append((rec.time, rec.get("pct")))
    return out


def completion_curve(trace: TraceRecorder) -> Series:
    """Clients-having-completed-over-time step curve (Figure 11)."""
    times = sorted(rec.time for rec in trace.select("bt.complete"))
    return [(t, float(i + 1)) for i, t in enumerate(times)]


def total_payload_curve(trace: TraceRecorder, bucket: float = 10.0) -> Series:
    """Total payload received by all clients vs time (Figure 9).

    Sampled at ``bucket``-second boundaries; the y value is cumulative
    bytes of verified piece payload across all clients.
    """
    events: List[Tuple[float, int]] = []
    last_payload: Dict[str, int] = {}
    for rec in trace.select("bt.progress"):
        node = rec.get("node")
        payload = rec.get("payload")
        delta = payload - last_payload.get(node, 0)
        last_payload[node] = payload
        events.append((rec.time, delta))
    events.sort()
    out: Series = []
    cumulative = 0.0
    edge = bucket
    for t, delta in events:
        while t > edge:
            out.append((edge, cumulative))
            edge += bucket
        cumulative += delta
    out.append((edge, cumulative))
    return out


def completion_times(trace: TraceRecorder) -> List[float]:
    """Sorted absolute completion times of all clients."""
    return sorted(rec.time for rec in trace.select("bt.complete"))


def selected_nodes(names: Sequence[str], every: int) -> List[str]:
    """Every ``every``-th node name (Figure 10 plots nodes 50, 100, ...)."""
    return [name for i, name in enumerate(names, start=1) if i % every == 0]
