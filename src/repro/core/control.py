"""The experiment control plane over the administration network.

P2PLab keeps "the main IP address of each physical system ... for
administration purposes" (paper Fig. 4): experiment orchestration —
deploying configurations, starting and stopping applications — travels
over the admin subnet, not the emulated one. This module models that
control plane so orchestration *costs emulated time* like everything
else:

* a :class:`ControlDaemon` on every physical node accepts commands on
  the admin address (think sshd);
* a :class:`Console` — the experimenter's frontend node — executes
  commands on one node or broadcasts to all of them, sequentially (one
  at a time, like a naive shell loop) or in parallel (like a
  tree/parallel launcher).

Commands are Python callables executed *at* the physical node —
``fn(pnode, *args)`` — with the call and its result carried as
emulated TCP messages of configurable size.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.net.socket_api import Socket, raise_if_error
from repro.net.stack import NetworkStack
from repro.sim.process import Process, Signal
from repro.virt.deployment import Testbed
from repro.virt.pnode import PhysicalNode

CONTROL_PORT = 2222

#: Nominal wire size of a control command / reply (an ssh exec + ack).
COMMAND_SIZE = 512
REPLY_SIZE = 256

Command = Callable[..., Any]


class ControlDaemon:
    """Per-pnode command executor listening on the admin address."""

    def __init__(self, pnode: PhysicalNode, port: int = CONTROL_PORT) -> None:
        self.pnode = pnode
        self.port = port
        self.commands_executed = 0
        self.stopped = False
        self._proc: Optional[Process] = None

    def start(self) -> None:
        self._proc = Process(
            self.pnode.sim, self._app(), name=f"{self.pnode.name}/controld"
        )

    def stop(self) -> None:
        self.stopped = True

    def _app(self):
        sock = Socket(self.pnode.stack)
        sock.bind((self.pnode.admin_address, self.port))
        sock.listen(backlog=64)
        while not self.stopped:
            conn = yield sock.accept()
            if conn is None:
                return
            Process(self.pnode.sim, self._serve(conn), name=f"{self.pnode.name}/ctl")

    def _serve(self, conn: Socket):
        item = yield conn.recv()
        if item is not None:
            (fn, args), _size = item
            result = fn(self.pnode, *args)
            self.commands_executed += 1
            yield conn.send(("ok", result), REPLY_SIZE)
        conn.close()


class Console:
    """The experimenter's frontend: runs commands on physical nodes."""

    def __init__(
        self,
        testbed: Testbed,
        address: str = "192.168.38.250",
        port: int = CONTROL_PORT,
    ) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.port = port
        self.stack = NetworkStack(self.sim, "console", switch=testbed.switch)
        self.stack.set_admin_address(address)
        self.daemons: List[ControlDaemon] = []

    def start_daemons(self) -> None:
        """Start a control daemon on every physical node."""
        for pnode in self.testbed.pnodes:
            daemon = ControlDaemon(pnode, port=self.port)
            daemon.start()
            self.daemons.append(daemon)

    # ------------------------------------------------------------------
    def _execute_gen(self, pnode: PhysicalNode, fn: Command, args: tuple):
        sock = Socket(self.stack)
        result = yield sock.connect((pnode.admin_address, self.port))
        raise_if_error(result)
        yield sock.send((fn, args), COMMAND_SIZE)
        item = yield sock.recv()
        sock.close()
        if item is None:
            raise ExperimentError(f"control connection to {pnode.name} reset")
        (status, payload), _size = item
        if status != "ok":
            raise ExperimentError(f"command failed on {pnode.name}: {payload!r}")
        return payload

    def execute(self, pnode: PhysicalNode, fn: Command, *args: Any) -> Process:
        """Run ``fn(pnode, *args)`` on one node; join the returned
        process (its ``result`` is the command's return value)."""
        return Process(
            self.sim,
            self._execute_gen(pnode, fn, args),
            name=f"console->{pnode.name}",
        )

    def broadcast(
        self,
        fn: Command,
        *args: Any,
        parallel: bool = True,
        pnodes: Optional[Sequence[PhysicalNode]] = None,
    ) -> Process:
        """Run a command on every node; returns a process whose result
        is the list of per-node results (in pnode order).

        ``parallel=False`` contacts nodes one at a time — the naive
        for-loop-over-ssh deployment whose latency grows linearly with
        the cluster, which is why real launchers parallelize.
        """
        targets = list(pnodes) if pnodes is not None else list(self.testbed.pnodes)

        def gen():
            if parallel:
                procs = [self.execute(p, fn, *args) for p in targets]
                results = []
                for proc in procs:
                    value = yield proc
                    results.append(value)
                return results
            results = []
            for p in targets:
                value = yield self.execute(p, fn, *args)
                results.append(value)
            return results

        return Process(self.sim, gen(), name="console/broadcast")


# ----------------------------------------------------------------------
# Ready-made commands.
# ----------------------------------------------------------------------

def cmd_hostname(pnode: PhysicalNode) -> str:
    """Like running ``hostname`` everywhere: the liveness check."""
    return pnode.name


def cmd_vnode_count(pnode: PhysicalNode) -> int:
    return pnode.folding_ratio


def cmd_spawn_app(pnode: PhysicalNode, vnode_name: str, app) -> str:
    """Start an application on a hosted virtual node."""
    vnode = pnode.vnodes.get(vnode_name)
    if vnode is None:
        raise ExperimentError(f"no vnode {vnode_name!r} on {pnode.name}")
    vnode.spawn(app)
    return vnode_name
