"""ScenarioSpec: the testbed knobs every experiment shares.

``core.Experiment`` and ``bittorrent.SwarmConfig`` used to duplicate
the same cluster parameters (``seed``, ``num_pnodes``, placement, CPU
enforcement, the TCP ACK model), forcing examples to re-specify them
twice whenever an experiment and a swarm ran under identical
conditions. :class:`ScenarioSpec` is the single home for those knobs:

* ``Experiment(name, topo, scenario=spec)`` consumes one directly;
* ``SwarmConfig.from_scenario(spec, ...)`` stamps one onto a swarm;
* ``Swarm.from_experiment(exp, ...)`` reuses a running experiment's
  scenario so the swarm sees the *same* emulated cluster parameters.

Frozen and hashable, so it can ride inside run requests and
checkpoint keys.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.virt.deployment import PLACEMENT_BLOCK, Testbed


@dataclass(frozen=True)
class ScenarioSpec:
    """Shared emulated-cluster parameters of one scenario."""

    seed: int = 0
    num_pnodes: int = 2
    placement: str = PLACEMENT_BLOCK
    enforce_cpu: bool = False
    tcp_explicit_acks: bool = False

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def make_testbed(self) -> Testbed:
        """Build the emulated physical cluster this scenario describes."""
        return Testbed(
            num_pnodes=self.num_pnodes,
            seed=self.seed,
            enforce_cpu=self.enforce_cpu,
            tcp_explicit_acks=self.tcp_explicit_acks,
        )
