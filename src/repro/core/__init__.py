"""P2PLab experiment orchestration — the library's top-level API.

An :class:`Experiment` owns the whole stack: a testbed of physical
nodes, a compiled topology of virtual nodes, application launch
schedules and the trace collector. The BitTorrent study uses the
specialized :class:`repro.bittorrent.swarm.Swarm`, which composes the
same pieces.

* :mod:`repro.core.experiment` — experiment definition and run loop;
* :mod:`repro.core.launcher` — staggered application launches;
* :mod:`repro.core.collector` — extraction of per-node time series
  from the trace (the paper's time-stamped client logs);
* :mod:`repro.core.report` — figure-shaped summaries.
"""

from repro.core.collector import (
    completion_curve,
    progress_series,
    total_payload_curve,
)
from repro.core.control import Console, ControlDaemon
from repro.core.experiment import Experiment
from repro.core.scenario import ScenarioSpec
from repro.core.launcher import staggered_launch
from repro.core.monitor import ResourceMonitor

__all__ = [
    "Experiment",
    "ScenarioSpec",
    "staggered_launch",
    "progress_series",
    "completion_curve",
    "total_payload_curve",
    "ResourceMonitor",
    "Console",
    "ControlDaemon",
]
