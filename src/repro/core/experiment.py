"""Experiment definition: topology + applications + schedule.

Example
-------
>>> from repro.core import Experiment
>>> from repro.topology.presets import uniform_swarm
>>> exp = Experiment("demo", uniform_swarm(4), num_pnodes=2, seed=1)
>>> vnodes = exp.deploy()
>>> def app(vnode):
...     vnode.log("demo.hello")
...     yield 1.0
>>> exp.sim.trace.enable("demo.hello")
>>> procs = [exp.schedule_app(v, app) for v in vnodes]
>>> exp.run(until=10.0)
>>> len(list(exp.trace.select("demo.hello")))
4
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.scenario import ScenarioSpec
from repro.errors import ExperimentError
from repro.obs import telemetry
from repro.sim import Simulator
from repro.topology.compiler import TopologyCompiler
from repro.topology.spec import TopologySpec
from repro.virt.deployment import PLACEMENT_BLOCK
from repro.virt.vnode import AppFactory, VirtualNode


class Experiment:
    """One reproducible emulation experiment.

    The emulated-cluster knobs (``num_pnodes``, ``seed``, placement,
    CPU enforcement) live in one shared :class:`ScenarioSpec` — pass
    ``scenario=`` directly, or keep using the individual kwargs, which
    are assembled into one. ``Swarm.from_experiment(exp)`` reuses the
    same spec, so swarm and experiment never re-specify these knobs.
    """

    def __init__(
        self,
        name: str,
        spec: TopologySpec,
        num_pnodes: int = 2,
        seed: int = 0,
        placement: str = PLACEMENT_BLOCK,
        trace_categories: tuple = (),
        enforce_cpu: bool = False,
        scenario: Optional[ScenarioSpec] = None,
    ) -> None:
        self.name = name
        self.spec = spec
        if scenario is None:
            scenario = ScenarioSpec(
                seed=seed,
                num_pnodes=num_pnodes,
                placement=placement,
                enforce_cpu=enforce_cpu,
            )
        self.scenario = scenario
        self.placement = scenario.placement
        self.testbed = scenario.make_testbed()
        self.sim: Simulator = self.testbed.sim
        if trace_categories:
            self.sim.trace.enable(*trace_categories)
        self.compiler: Optional[TopologyCompiler] = None
        self._deployed = False

    # ------------------------------------------------------------------
    def deploy(self) -> List[VirtualNode]:
        """Build all virtual nodes and install the network emulation."""
        if self._deployed:
            raise ExperimentError(f"experiment {self.name!r} already deployed")
        self._deployed = True
        self.compiler = TopologyCompiler(self.spec, self.testbed)
        created = self.compiler.deploy(placement=self.placement)
        # Surface the topology footprint (defined vs. materialised
        # pipes) on live telemetry /health; weakly held, so the probe
        # dies with the compiler.
        telemetry.register_topology(self.compiler, f"topo/{self.name}")
        return created

    def vnodes(self, group: Optional[str] = None) -> List[VirtualNode]:
        if self.compiler is None:
            raise ExperimentError("deploy() first")
        return self.compiler.vnodes(group) if group else self.compiler.all_vnodes()

    # ------------------------------------------------------------------
    def schedule_app(
        self,
        vnode: VirtualNode,
        app: AppFactory,
        at: float = 0.0,
        name: Optional[str] = None,
    ):
        """Start ``app`` on ``vnode`` at absolute time ``at``."""
        if at < self.sim.now:
            raise ExperimentError(f"cannot schedule app in the past (at={at})")
        return vnode.spawn(app, start_delay=at - self.sim.now, name=name)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    @property
    def trace(self):
        return self.sim.trace

    def emulation_stats(self) -> dict:
        """Installed rules/pipes and traffic counters (diagnostics)."""
        stats = self.compiler.stats() if self.compiler is not None else {}
        stats["pnodes"] = len(self.testbed.pnodes)
        stats["events"] = self.sim.events_processed
        stats["switch_forwarded"] = self.testbed.switch.packets_forwarded
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Experiment({self.name!r}, deployed={self._deployed}, t={self.sim.now:.1f})"
