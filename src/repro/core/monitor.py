"""Per-physical-node resource monitoring.

The paper validates the folding experiment by watching the hosts:
"during the experiment, we monitored the system load, the memory
usage, and the disk I/O on every physical node. None of them was a
problem during our experiments." This module is that watcher for the
emulated testbed: a periodic sampler recording, per physical node,

* CPU utilization (from the :class:`~repro.virt.pnode.CpuAccount`),
* network backlog and throughput (switch port pipes),
* emulation state size (hosted vnodes, firewall rules, pipe backlogs).

Samples are plain records; :func:`summarize` turns them into the
per-node peaks an experimenter checks before trusting a folded run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Snapshot, diff_snapshots
from repro.obs.timeseries import TimeSeriesSampler
from repro.virt.deployment import Testbed


@dataclass(frozen=True)
class ResourceSample:
    """One observation of one physical node."""

    time: float
    pnode: str
    vnodes: int
    cpu_utilization: float
    tx_bytes: int
    rx_bytes: int
    tx_backlog_bytes: float
    rx_backlog_bytes: float
    fw_rules: int


@dataclass(frozen=True)
class NodeSummary:
    """Peaks over a monitored run for one physical node."""

    pnode: str
    vnodes: int
    peak_cpu: float
    peak_tx_rate: float  # bytes/second between samples
    peak_rx_rate: float
    peak_tx_backlog: float
    peak_rx_backlog: float


class ResourceMonitor:
    """Samples every physical node at a fixed period."""

    def __init__(
        self,
        testbed: Testbed,
        period: float = 10.0,
        record_metrics: bool = False,
        timeseries: bool = False,
        timeseries_metrics: Optional[List[str]] = None,
    ) -> None:
        self.testbed = testbed
        self.period = period
        self.samples: List[ResourceSample] = []
        #: When ``record_metrics`` is set, one deterministic snapshot of
        #: the platform metrics registry (see :mod:`repro.obs`) is taken
        #: per sampling period, so experiments can diff any two instants.
        self.record_metrics = record_metrics
        self.metrics_snapshots: List[Tuple[float, Snapshot]] = []
        #: When ``timeseries`` is set, a
        #: :class:`~repro.obs.timeseries.TimeSeriesSampler` runs on the
        #: same period and accumulates deterministic per-metric series
        #: (the trajectory view the paper's figures need); optionally
        #: filtered to ``timeseries_metrics``.
        self.timeseries: Optional[TimeSeriesSampler] = (
            TimeSeriesSampler(
                testbed.sim, period=period, metrics=timeseries_metrics
            )
            if timeseries
            else None
        )
        self._started_at: Optional[float] = None
        self._running = False
        self._last_cpu_busy: Dict[str, float] = {}

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._started_at = self.testbed.sim.now
        if self.timeseries is not None:
            self.timeseries.start()
        self.testbed.sim.schedule(0.0, self._sample)

    def stop(self) -> None:
        self._running = False
        if self.timeseries is not None:
            self.timeseries.stop()

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        if not self._running:
            return
        sim = self.testbed.sim
        switch = self.testbed.switch
        for pnode in self.testbed.pnodes:
            port = switch._ports.get(pnode.name)
            elapsed = sim.now - (self._started_at or 0.0)
            cpu = pnode.cpu.utilization(elapsed) if elapsed > 0 else 0.0
            self.samples.append(
                ResourceSample(
                    time=sim.now,
                    pnode=pnode.name,
                    vnodes=pnode.folding_ratio,
                    cpu_utilization=cpu,
                    tx_bytes=port.tx.bytes_out if port else 0,
                    rx_bytes=port.rx.bytes_out if port else 0,
                    tx_backlog_bytes=port.tx.backlog_bytes if port else 0.0,
                    rx_backlog_bytes=port.rx.backlog_bytes if port else 0.0,
                    fw_rules=len(pnode.stack.fw),
                )
            )
        if self.record_metrics:
            self.metrics_snapshots.append((sim.now, sim.metrics.snapshot()))
        sim.schedule(self.period, self._sample)

    # ------------------------------------------------------------------
    def summarize(self) -> List[NodeSummary]:
        """Per-node peaks (rates computed between consecutive samples)."""
        by_node: Dict[str, List[ResourceSample]] = {}
        for sample in self.samples:
            by_node.setdefault(sample.pnode, []).append(sample)
        summaries: List[NodeSummary] = []
        for pnode, series in by_node.items():
            peak_tx_rate = peak_rx_rate = 0.0
            for prev, cur in zip(series, series[1:]):
                dt = cur.time - prev.time
                if dt <= 0:
                    continue
                peak_tx_rate = max(peak_tx_rate, (cur.tx_bytes - prev.tx_bytes) / dt)
                peak_rx_rate = max(peak_rx_rate, (cur.rx_bytes - prev.rx_bytes) / dt)
            summaries.append(
                NodeSummary(
                    pnode=pnode,
                    vnodes=series[-1].vnodes,
                    peak_cpu=max(s.cpu_utilization for s in series),
                    peak_tx_rate=peak_tx_rate,
                    peak_rx_rate=peak_rx_rate,
                    peak_tx_backlog=max(s.tx_backlog_bytes for s in series),
                    peak_rx_backlog=max(s.rx_backlog_bytes for s in series),
                )
            )
        return summaries

    def metrics_delta(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Snapshot:
        """Per-metric change between two recorded snapshots.

        ``since``/``until`` select the first snapshot at or after /
        the last snapshot at or before the given sim-time (defaults:
        first and last recorded). Requires ``record_metrics=True``.
        """
        if not self.metrics_snapshots:
            return {}
        lo = self.metrics_snapshots[0]
        hi = self.metrics_snapshots[-1]
        if since is not None:
            lo = next((s for s in self.metrics_snapshots if s[0] >= since), hi)
        if until is not None:
            eligible = [s for s in self.metrics_snapshots if s[0] <= until]
            hi = eligible[-1] if eligible else lo
        return diff_snapshots(lo[1], hi[1])

    def saturated_nodes(self, port_bandwidth: float, threshold: float = 0.9) -> List[str]:
        """Nodes whose peak port rate exceeded ``threshold`` of capacity —
        the red flag that a folded run is no longer trustworthy."""
        return [
            s.pnode
            for s in self.summarize()
            if max(s.peak_tx_rate, s.peak_rx_rate) > threshold * port_bandwidth
        ]

    def __len__(self) -> int:
        return len(self.samples)
