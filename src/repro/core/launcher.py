"""Staggered application launches.

The paper starts its BitTorrent clients at fixed intervals ("clients
are started with a 10s interval"; "every 0.25s" in the scalability
run); this helper encodes that pattern for any application.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.sim.process import Process
from repro.virt.vnode import AppFactory, VirtualNode


def staggered_launch(
    vnodes: Sequence[VirtualNode],
    app: AppFactory,
    interval: float,
    start: float = 0.0,
    name: Optional[Callable[[VirtualNode], str]] = None,
) -> List[Process]:
    """Start ``app`` on each vnode, ``interval`` seconds apart.

    Returns the spawned processes in launch order.
    """
    procs: List[Process] = []
    for i, vnode in enumerate(vnodes):
        delay = start + i * interval - vnode.sim.now
        procs.append(
            vnode.spawn(
                app,
                start_delay=max(0.0, delay),
                name=name(vnode) if name else None,
            )
        )
    return procs
