"""Figure-shaped summaries of swarm experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.collector import completion_times, progress_series
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Snapshot
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class SwarmSummary:
    """Headline numbers of one BitTorrent swarm run."""

    clients: int
    first_completion: float
    median_completion: float
    last_completion: float
    mean_download_time: float

    def as_rows(self) -> List[Tuple[str, float]]:
        return [
            ("clients", self.clients),
            ("first completion (s)", self.first_completion),
            ("median completion (s)", self.median_completion),
            ("last completion (s)", self.last_completion),
            ("mean download time (s)", self.mean_download_time),
        ]


def summarize_swarm(trace: TraceRecorder) -> SwarmSummary:
    """Build the summary from bt.complete records."""
    times = completion_times(trace)
    if not times:
        raise ValueError("no completions recorded")
    durations = [rec.get("duration") for rec in trace.select("bt.complete")]
    return SwarmSummary(
        clients=len(times),
        first_completion=times[0],
        median_completion=times[len(times) // 2],
        last_completion=times[-1],
        mean_download_time=sum(durations) / len(durations),
    )


def format_metrics(snapshot: Snapshot, manifest: Optional[RunManifest] = None) -> str:
    """Plain-text table of a metrics snapshot (optionally headed by the
    run manifest) — what ``python -m repro metrics format=text`` prints
    and what experiments append to their reports."""
    lines: List[str] = []
    if manifest is not None:
        m = manifest.as_dict()
        lines.append("== run manifest ==")
        for key in sorted(k for k in m if k != "extra"):
            lines.append(f"{key:<24} {m[key]}")
        for key, value in m["extra"].items():
            lines.append(f"extra.{key:<18} {value}")
        lines.append("")
    lines.append("== metrics ==")
    width = max((len(name) for name in snapshot), default=0)
    for name, metric in snapshot.items():
        kind = metric["kind"]
        if kind == "histogram":
            mean = (
                metric["sum"] / metric["count"] if metric["count"] else 0.0  # type: ignore[operator]
            )
            lines.append(
                f"{name:<{width}}  count={metric['count']} "
                f"mean={mean:.6g} min={metric.get('min')} max={metric.get('max')}"
            )
        elif kind == "gauge":
            lines.append(
                f"{name:<{width}}  value={metric['value']} peak={metric['peak']}"
            )
        else:
            lines.append(f"{name:<{width}}  {metric['value']}")
    return "\n".join(lines)


def metrics_highlights(snapshot: Snapshot) -> List[Tuple[str, Any]]:
    """The handful of platform-health numbers worth printing after any
    run: events processed, rules scanned per packet, drop counts,
    retransmissions — the paper's overload red flags."""
    def val(name: str, field: str = "value") -> Any:
        metric = snapshot.get(name)
        return metric[field] if metric is not None else 0

    packets = val("net.ipfw.packets_evaluated") or 1
    rows: List[Tuple[str, Any]] = [
        ("events processed", val("sim.kernel.events_processed")),
        ("packets evaluated", val("net.ipfw.packets_evaluated")),
        ("rules scanned / packet", val("net.ipfw.rules_scanned_total") / packets),
        ("pipe drops (loss)", val("net.pipe.drops_loss")),
        ("pipe drops (queue)", val("net.pipe.drops_queue")),
        ("tcp retransmissions", val("net.tcp.retransmissions")),
    ]
    return rows


def download_phases(trace: TraceRecorder, node: str) -> Dict[str, float]:
    """Split one client's download into the paper's three phases.

    Figure 8's narrative: a first (short) part where "only initial
    seeders are able to upload data", a second where "all downloaders
    start contributing", and a third where "the first downloaders
    become seeders and help other peers finish faster". Proxy used
    here: time to first piece, time from first piece to 50%, and time
    from 50% to completion.
    """
    series = progress_series(trace, node).get(node, [])
    if not series:
        return {}
    t_first = series[0][0]
    t_half = next((t for t, pct in series if pct >= 50.0), series[-1][0])
    t_done = series[-1][0]
    return {
        "first_piece": t_first,
        "to_half": t_half - t_first,
        "to_done": t_done - t_half,
    }


def sample_progress(
    trace: TraceRecorder, every: int
) -> Dict[str, List[Tuple[float, float]]]:
    """Progress curves of every ``every``-th client, by start order —
    how Figure 10 plots "nodes 50, 100, 150, ... 5750"."""
    all_series = progress_series(trace)

    def start_key(item: Tuple[str, List[Tuple[float, float]]]) -> float:
        return item[1][0][0]

    ordered = sorted(all_series.items(), key=start_key)
    return {
        name: series
        for i, (name, series) in enumerate(ordered, start=1)
        if i % every == 0
    }
