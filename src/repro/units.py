"""Unit helpers: bit rates, byte sizes and durations.

The emulation works internally in **bytes**, **bytes per second** and
**seconds** (floats). The paper quotes link speeds in kbps/Mbps and
latencies in milliseconds; these helpers keep conversions explicit and
greppable instead of scattering magic constants.

Examples
--------
>>> from repro.units import kbps, mbps, ms, KB, MB
>>> kbps(128)        # 128 kilobits/second, in bytes/second
16000.0
>>> mbps(2)
250000.0
>>> ms(30)
0.03
>>> 16 * MB
16777216
"""

from __future__ import annotations

#: One kilobyte / megabyte / gigabyte (binary, as BitTorrent uses them).
KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024


def bits(n: float) -> float:
    """Convert a number of bits to bytes."""
    return n / 8.0


def bps(rate: float) -> float:
    """Bit rate in bits/second -> bytes/second."""
    return rate / 8.0


def kbps(rate: float) -> float:
    """Bit rate in kilobits/second (decimal, as ISPs quote) -> bytes/second."""
    return rate * 1000.0 / 8.0


def mbps(rate: float) -> float:
    """Bit rate in megabits/second -> bytes/second."""
    return rate * 1_000_000.0 / 8.0


def gbps(rate: float) -> float:
    """Bit rate in gigabits/second -> bytes/second."""
    return rate * 1_000_000_000.0 / 8.0


def us(t: float) -> float:
    """Microseconds -> seconds."""
    return t * 1e-6


def ms(t: float) -> float:
    """Milliseconds -> seconds."""
    return t * 1e-3


def minutes(t: float) -> float:
    """Minutes -> seconds."""
    return t * 60.0


def to_mbit(nbytes: float) -> float:
    """Bytes -> megabits (for reporting link speeds)."""
    return nbytes * 8.0 / 1_000_000.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary prefixes)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable bit rate from bytes/second."""
    bits_per_s = bytes_per_s * 8.0
    for unit, div in (("Gbps", 1e9), ("Mbps", 1e6), ("kbps", 1e3)):
        if bits_per_s >= div:
            return f"{bits_per_s / div:.2f} {unit}"
    return f"{bits_per_s:.0f} bps"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
