"""Result post-processing: series utilities, CDFs and text tables."""

from repro.analysis.cdf import empirical_cdf, quantile
from repro.analysis.series import interpolate_at, max_abs_gap, resample
from repro.analysis.tables import Table, render_ascii_series

__all__ = [
    "empirical_cdf",
    "quantile",
    "interpolate_at",
    "resample",
    "max_abs_gap",
    "Table",
    "render_ascii_series",
]
