"""Time-series utilities for comparing experiment runs.

Used by the folding experiment (Figure 9) to quantify "results are
nearly identical": curves from different foldings are resampled to a
common grid and compared point-wise.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def interpolate_at(series: Series, t: float) -> float:
    """Step-interpolated value of ``series`` at time ``t``.

    Values before the first point are 0 (nothing had happened yet).
    """
    if not series:
        return 0.0
    times = [p[0] for p in series]
    idx = bisect_right(times, t) - 1
    if idx < 0:
        return 0.0
    return series[idx][1]


def resample(series: Series, times: Sequence[float]) -> List[float]:
    """Step-interpolated values at each requested time."""
    return [interpolate_at(series, t) for t in times]


def max_abs_gap(a: Series, b: Series, times: Sequence[float]) -> float:
    """Maximum absolute difference between two series on a time grid."""
    va, vb = resample(a, times), resample(b, times)
    return max(abs(x - y) for x, y in zip(va, vb)) if times else 0.0


def relative_gap(a: Series, b: Series, times: Sequence[float]) -> float:
    """Max |a-b| normalized by the final value of ``a`` (0 if flat)."""
    if not a:
        return 0.0
    final = a[-1][1]
    if final == 0:
        return 0.0
    return max_abs_gap(a, b, times) / final
