"""Export series to gnuplot-style data files.

The paper's figures are gnuplot plots of whitespace-separated data
files; this module writes exactly those artifacts so a user can
regenerate publication figures from any experiment:

* ``write_dat`` — one ``x y`` (or ``x y1 y2 ...``) file per series;
* ``write_gnuplot_script`` — a ``.gp`` driver plotting the files.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence, Tuple, Union

Series = Sequence[Tuple[float, float]]
PathLike = Union[str, pathlib.Path]


def write_dat(path: PathLike, series: Series, header: str = "") -> pathlib.Path:
    """Write one series as ``x y`` lines; returns the path."""
    path = pathlib.Path(path)
    lines: List[str] = []
    if header:
        lines.append(f"# {header}")
    for x, y in series:
        lines.append(f"{x:.6f} {y:.6f}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_multi_dat(
    path: PathLike,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
    header: str = "",
) -> pathlib.Path:
    """Write ``x col1 col2 ...`` rows (one gnuplot file, many curves)."""
    path = pathlib.Path(path)
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(xs):
            raise ValueError(f"column {name!r} length mismatch")
    lines = [f"# x {' '.join(names)}"]
    if header:
        lines.insert(0, f"# {header}")
    for i, x in enumerate(xs):
        row = " ".join(f"{columns[name][i]:.6f}" for name in names)
        lines.append(f"{x:.6f} {row}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_gnuplot_script(
    path: PathLike,
    dat_files: Dict[str, PathLike],
    title: str,
    xlabel: str,
    ylabel: str,
    output: str = "figure.png",
    style: str = "linespoints",
) -> pathlib.Path:
    """Write a ``.gp`` script plotting the given series files."""
    path = pathlib.Path(path)
    plots = ", \\\n     ".join(
        f"'{pathlib.Path(f).name}' using 1:2 with {style} title '{label}'"
        for label, f in dat_files.items()
    )
    script = "\n".join(
        [
            "set terminal png size 900,600",
            f"set output '{output}'",
            f"set title '{title}'",
            f"set xlabel '{xlabel}'",
            f"set ylabel '{ylabel}'",
            "set key bottom right",
            f"plot {plots}",
            "",
        ]
    )
    path.write_text(script)
    return path


def export_figure(
    out_dir: PathLike,
    figure_id: str,
    curves: Dict[str, Series],
    title: str,
    xlabel: str,
    ylabel: str,
) -> pathlib.Path:
    """Write every curve's .dat plus a driving .gp; returns the script
    path. ``gnuplot <figure_id>.gp`` then regenerates the figure."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dat_files: Dict[str, pathlib.Path] = {}
    for label, series in curves.items():
        safe = label.replace(" ", "_").replace("/", "-")
        dat_files[label] = write_dat(
            out_dir / f"{figure_id}_{safe}.dat", series, header=f"{figure_id}: {label}"
        )
    return write_gnuplot_script(
        out_dir / f"{figure_id}.gp",
        dat_files,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        output=f"{figure_id}.png",
    )
