"""Export series to gnuplot-style data files, and metrics to JSON/CSV.

The paper's figures are gnuplot plots of whitespace-separated data
files; this module writes exactly those artifacts so a user can
regenerate publication figures from any experiment:

* ``write_dat`` — one ``x y`` (or ``x y1 y2 ...``) file per series;
* ``write_gnuplot_script`` — a ``.gp`` driver plotting the files;
* ``metrics_document`` / ``write_metrics_json`` /
  ``write_metrics_csv`` — run-manifest + metrics snapshot emitters
  for the :mod:`repro.obs` observability layer.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import Snapshot

Series = Sequence[Tuple[float, float]]
PathLike = Union[str, pathlib.Path]


def write_dat(path: PathLike, series: Series, header: str = "") -> pathlib.Path:
    """Write one series as ``x y`` lines; returns the path."""
    path = pathlib.Path(path)
    lines: List[str] = []
    if header:
        lines.append(f"# {header}")
    for x, y in series:
        lines.append(f"{x:.6f} {y:.6f}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_multi_dat(
    path: PathLike,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
    header: str = "",
) -> pathlib.Path:
    """Write ``x col1 col2 ...`` rows (one gnuplot file, many curves)."""
    path = pathlib.Path(path)
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(xs):
            raise ValueError(f"column {name!r} length mismatch")
    lines = [f"# x {' '.join(names)}"]
    if header:
        lines.insert(0, f"# {header}")
    for i, x in enumerate(xs):
        row = " ".join(f"{columns[name][i]:.6f}" for name in names)
        lines.append(f"{x:.6f} {row}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_gnuplot_script(
    path: PathLike,
    dat_files: Dict[str, PathLike],
    title: str,
    xlabel: str,
    ylabel: str,
    output: str = "figure.png",
    style: str = "linespoints",
) -> pathlib.Path:
    """Write a ``.gp`` script plotting the given series files."""
    path = pathlib.Path(path)
    plots = ", \\\n     ".join(
        f"'{pathlib.Path(f).name}' using 1:2 with {style} title '{label}'"
        for label, f in dat_files.items()
    )
    script = "\n".join(
        [
            "set terminal png size 900,600",
            f"set output '{output}'",
            f"set title '{title}'",
            f"set xlabel '{xlabel}'",
            f"set ylabel '{ylabel}'",
            "set key bottom right",
            f"plot {plots}",
            "",
        ]
    )
    path.write_text(script)
    return path


def export_figure(
    out_dir: PathLike,
    figure_id: str,
    curves: Dict[str, Series],
    title: str,
    xlabel: str,
    ylabel: str,
) -> pathlib.Path:
    """Write every curve's .dat plus a driving .gp; returns the script
    path. ``gnuplot <figure_id>.gp`` then regenerates the figure."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dat_files: Dict[str, pathlib.Path] = {}
    for label, series in curves.items():
        safe = label.replace(" ", "_").replace("/", "-")
        dat_files[label] = write_dat(
            out_dir / f"{figure_id}_{safe}.dat", series, header=f"{figure_id}: {label}"
        )
    return write_gnuplot_script(
        out_dir / f"{figure_id}.gp",
        dat_files,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        output=f"{figure_id}.png",
    )


# ----------------------------------------------------------------------
# Metrics / manifest emitters (repro.obs)
# ----------------------------------------------------------------------


def metrics_document(
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
) -> Dict[str, Any]:
    """The canonical export shape: ``{manifest, metrics[, spans]}``.

    With ``deterministic_only`` the manifest drops its host-specific
    fields (wall clock, python version); the metrics snapshot is
    already deterministic by construction, so the resulting document
    is byte-identical across same-seed runs.
    """
    doc: Dict[str, Any] = {
        "manifest": manifest.as_dict(deterministic_only) if manifest else None,
        "metrics": snapshot,
    }
    if spans is not None:
        doc["spans"] = spans
    return doc


def metrics_json(
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
    indent: Optional[int] = 2,
) -> str:
    """Serialize :func:`metrics_document` with sorted keys (stable bytes)."""
    return json.dumps(
        metrics_document(manifest, snapshot, spans, deterministic_only),
        sort_keys=True,
        indent=indent,
    )


def write_metrics_json(
    path: PathLike,
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_json(manifest, snapshot, spans, deterministic_only) + "\n")
    return path


def sweep_json(
    outcome: Any, deterministic_only: bool = True, indent: Optional[int] = 2
) -> str:
    """Serialize a :class:`repro.runtime.aggregate.SweepOutcome`'s
    aggregate document with sorted keys — the same stable-bytes
    convention as :func:`metrics_json`, so two sweeps of the same plan
    diff clean regardless of worker count or completion order."""
    return json.dumps(
        outcome.document(deterministic_only=deterministic_only),
        sort_keys=True,
        indent=indent,
    )


def write_sweep_json(
    path: PathLike, outcome: Any, deterministic_only: bool = True
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(sweep_json(outcome, deterministic_only) + "\n")
    return path


def write_metrics_csv(path: PathLike, snapshot: Snapshot) -> pathlib.Path:
    """Flat ``metric,kind,field,value`` rows — one line per scalar, so
    histograms expand into count/sum/min/max plus one ``bucket_le_X``
    row per bucket (spreadsheet- and pandas-friendly)."""
    path = pathlib.Path(path)
    lines = ["metric,kind,field,value"]
    for name, metric in snapshot.items():
        kind = metric["kind"]
        if kind == "histogram":
            for field in ("count", "sum", "min", "max"):
                lines.append(f"{name},{kind},{field},{metric[field]}")
            edges = list(metric["edges"]) + ["inf"]  # type: ignore[arg-type]
            for edge, count in zip(edges, metric["counts"]):  # type: ignore[arg-type]
                lines.append(f"{name},{kind},bucket_le_{edge},{count}")
        elif kind == "gauge":
            lines.append(f"{name},{kind},value,{metric['value']}")
            lines.append(f"{name},{kind},peak,{metric['peak']}")
        else:
            lines.append(f"{name},{kind},value,{metric['value']}")
    path.write_text("\n".join(lines) + "\n")
    return path
