"""Export series to gnuplot-style data files, and metrics to JSON/CSV.

The paper's figures are gnuplot plots of whitespace-separated data
files; this module writes exactly those artifacts so a user can
regenerate publication figures from any experiment:

* ``write_dat`` — one ``x y`` (or ``x y1 y2 ...``) file per series;
* ``write_gnuplot_script`` — a ``.gp`` driver plotting the files;
* ``metrics_document`` / ``write_metrics_json`` /
  ``write_metrics_csv`` — run-manifest + metrics snapshot emitters
  for the :mod:`repro.obs` observability layer.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import Snapshot

Series = Sequence[Tuple[float, float]]
PathLike = Union[str, pathlib.Path]


def write_dat(path: PathLike, series: Series, header: str = "") -> pathlib.Path:
    """Write one series as ``x y`` lines; returns the path."""
    path = pathlib.Path(path)
    lines: List[str] = []
    if header:
        lines.append(f"# {header}")
    for x, y in series:
        lines.append(f"{x:.6f} {y:.6f}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_multi_dat(
    path: PathLike,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
    header: str = "",
) -> pathlib.Path:
    """Write ``x col1 col2 ...`` rows (one gnuplot file, many curves)."""
    path = pathlib.Path(path)
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(xs):
            raise ValueError(f"column {name!r} length mismatch")
    lines = [f"# x {' '.join(names)}"]
    if header:
        lines.insert(0, f"# {header}")
    for i, x in enumerate(xs):
        row = " ".join(f"{columns[name][i]:.6f}" for name in names)
        lines.append(f"{x:.6f} {row}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_gnuplot_script(
    path: PathLike,
    dat_files: Dict[str, PathLike],
    title: str,
    xlabel: str,
    ylabel: str,
    output: str = "figure.png",
    style: str = "linespoints",
) -> pathlib.Path:
    """Write a ``.gp`` script plotting the given series files."""
    path = pathlib.Path(path)
    plots = ", \\\n     ".join(
        f"'{pathlib.Path(f).name}' using 1:2 with {style} title '{label}'"
        for label, f in dat_files.items()
    )
    script = "\n".join(
        [
            "set terminal png size 900,600",
            f"set output '{output}'",
            f"set title '{title}'",
            f"set xlabel '{xlabel}'",
            f"set ylabel '{ylabel}'",
            "set key bottom right",
            f"plot {plots}",
            "",
        ]
    )
    path.write_text(script)
    return path


def export_figure(
    out_dir: PathLike,
    figure_id: str,
    curves: Dict[str, Series],
    title: str,
    xlabel: str,
    ylabel: str,
) -> pathlib.Path:
    """Write every curve's .dat plus a driving .gp; returns the script
    path. ``gnuplot <figure_id>.gp`` then regenerates the figure."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dat_files: Dict[str, pathlib.Path] = {}
    for label, series in curves.items():
        safe = label.replace(" ", "_").replace("/", "-")
        dat_files[label] = write_dat(
            out_dir / f"{figure_id}_{safe}.dat", series, header=f"{figure_id}: {label}"
        )
    return write_gnuplot_script(
        out_dir / f"{figure_id}.gp",
        dat_files,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        output=f"{figure_id}.png",
    )


# ----------------------------------------------------------------------
# Metrics / manifest emitters (repro.obs)
# ----------------------------------------------------------------------


def metrics_document(
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
) -> Dict[str, Any]:
    """The canonical export shape: ``{manifest, metrics[, spans]}``.

    With ``deterministic_only`` the manifest drops its host-specific
    fields (wall clock, python version); the metrics snapshot is
    already deterministic by construction, so the resulting document
    is byte-identical across same-seed runs.
    """
    doc: Dict[str, Any] = {
        "manifest": manifest.as_dict(deterministic_only) if manifest else None,
        "metrics": snapshot,
    }
    if spans is not None:
        doc["spans"] = spans
    return doc


def metrics_json(
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
    indent: Optional[int] = 2,
) -> str:
    """Serialize :func:`metrics_document` with sorted keys (stable bytes)."""
    return json.dumps(
        metrics_document(manifest, snapshot, spans, deterministic_only),
        sort_keys=True,
        indent=indent,
    )


def write_metrics_json(
    path: PathLike,
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_json(manifest, snapshot, spans, deterministic_only) + "\n")
    return path


def sweep_json(
    outcome: Any, deterministic_only: bool = True, indent: Optional[int] = 2
) -> str:
    """Serialize a :class:`repro.runtime.aggregate.SweepOutcome`'s
    aggregate document with sorted keys — the same stable-bytes
    convention as :func:`metrics_json`, so two sweeps of the same plan
    diff clean regardless of worker count or completion order."""
    return json.dumps(
        outcome.document(deterministic_only=deterministic_only),
        sort_keys=True,
        indent=indent,
    )


def write_sweep_json(
    path: PathLike, outcome: Any, deterministic_only: bool = True
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(sweep_json(outcome, deterministic_only) + "\n")
    return path


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus metric name."""
    sanitized = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_num(value: float) -> str:
    """Prometheus float rendering (repr keeps full precision; ints stay ints)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def metrics_prom(
    snapshot: Snapshot, manifest: Optional[RunManifest] = None
) -> str:
    """Prometheus text exposition (version 0.0.4) of a metrics snapshot.

    Counters become ``<name>_total``; gauges emit their value plus a
    ``<name>_peak`` companion; histograms emit cumulative ``_bucket``
    series with ``le`` labels, ``_sum`` and ``_count``. An optional
    manifest becomes a ``repro_run_info`` info-style gauge. Metric
    names are emitted sorted, so output bytes are deterministic.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric["kind"]
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {_prom_num(metric['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_num(metric['value'])}")
            lines.append(f"# TYPE {prom}_peak gauge")
            lines.append(f"{prom}_peak {_prom_num(metric['peak'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            edges = list(metric["edges"])  # type: ignore[arg-type]
            counts = list(metric["counts"])  # type: ignore[arg-type]
            for edge, count in zip(edges, counts):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{_prom_num(float(edge))}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric["count"]}')
            lines.append(f"{prom}_sum {_prom_num(metric['sum'])}")
            lines.append(f"{prom}_count {metric['count']}")
    if manifest is not None:
        info = manifest.as_dict(deterministic_only=True)
        labels = ",".join(
            f'{_prom_name(str(k))[len("repro_"):]}="{v}"'
            for k, v in sorted(info.items())
            if isinstance(v, (str, int, float, bool))
        )
        lines.append("# TYPE repro_run_info gauge")
        lines.append(f"repro_run_info{{{labels}}} 1")
    return "\n".join(lines) + "\n"


def write_metrics_prom(
    path: PathLike, snapshot: Snapshot, manifest: Optional[RunManifest] = None
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_prom(snapshot, manifest))
    return path


def write_metrics_csv(path: PathLike, snapshot: Snapshot) -> pathlib.Path:
    """Flat ``metric,kind,field,value`` rows — one line per scalar, so
    histograms expand into count/sum/min/max plus one ``bucket_le_X``
    row per bucket (spreadsheet- and pandas-friendly)."""
    path = pathlib.Path(path)
    lines = ["metric,kind,field,value"]
    for name, metric in snapshot.items():
        kind = metric["kind"]
        if kind == "histogram":
            for field in ("count", "sum", "min", "max"):
                lines.append(f"{name},{kind},{field},{metric[field]}")
            edges = list(metric["edges"]) + ["inf"]  # type: ignore[arg-type]
            for edge, count in zip(edges, metric["counts"]):  # type: ignore[arg-type]
                lines.append(f"{name},{kind},bucket_le_{edge},{count}")
        elif kind == "gauge":
            lines.append(f"{name},{kind},value,{metric['value']}")
            lines.append(f"{name},{kind},peak,{metric['peak']}")
        else:
            lines.append(f"{name},{kind},value,{metric['value']}")
    path.write_text("\n".join(lines) + "\n")
    return path
