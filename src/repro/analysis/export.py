"""Export series to gnuplot-style data files, and metrics to JSON/CSV.

The paper's figures are gnuplot plots of whitespace-separated data
files; this module writes exactly those artifacts so a user can
regenerate publication figures from any experiment:

* ``write_dat`` — one ``x y`` (or ``x y1 y2 ...``) file per series;
* ``write_gnuplot_script`` — a ``.gp`` driver plotting the files;
* ``metrics_document`` / ``write_metrics_json`` /
  ``write_metrics_csv`` — run-manifest + metrics snapshot emitters
  for the :mod:`repro.obs` observability layer.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import Snapshot

Series = Sequence[Tuple[float, float]]
PathLike = Union[str, pathlib.Path]


def write_dat(path: PathLike, series: Series, header: str = "") -> pathlib.Path:
    """Write one series as ``x y`` lines; returns the path."""
    path = pathlib.Path(path)
    lines: List[str] = []
    if header:
        lines.append(f"# {header}")
    for x, y in series:
        lines.append(f"{x:.6f} {y:.6f}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_multi_dat(
    path: PathLike,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
    header: str = "",
) -> pathlib.Path:
    """Write ``x col1 col2 ...`` rows (one gnuplot file, many curves)."""
    path = pathlib.Path(path)
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(xs):
            raise ValueError(f"column {name!r} length mismatch")
    lines = [f"# x {' '.join(names)}"]
    if header:
        lines.insert(0, f"# {header}")
    for i, x in enumerate(xs):
        row = " ".join(f"{columns[name][i]:.6f}" for name in names)
        lines.append(f"{x:.6f} {row}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_gnuplot_script(
    path: PathLike,
    dat_files: Dict[str, PathLike],
    title: str,
    xlabel: str,
    ylabel: str,
    output: str = "figure.png",
    style: str = "linespoints",
) -> pathlib.Path:
    """Write a ``.gp`` script plotting the given series files."""
    path = pathlib.Path(path)
    plots = ", \\\n     ".join(
        f"'{pathlib.Path(f).name}' using 1:2 with {style} title '{label}'"
        for label, f in dat_files.items()
    )
    script = "\n".join(
        [
            "set terminal png size 900,600",
            f"set output '{output}'",
            f"set title '{title}'",
            f"set xlabel '{xlabel}'",
            f"set ylabel '{ylabel}'",
            "set key bottom right",
            f"plot {plots}",
            "",
        ]
    )
    path.write_text(script)
    return path


def export_figure(
    out_dir: PathLike,
    figure_id: str,
    curves: Dict[str, Series],
    title: str,
    xlabel: str,
    ylabel: str,
) -> pathlib.Path:
    """Write every curve's .dat plus a driving .gp; returns the script
    path. ``gnuplot <figure_id>.gp`` then regenerates the figure."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dat_files: Dict[str, pathlib.Path] = {}
    for label, series in curves.items():
        safe = label.replace(" ", "_").replace("/", "-")
        dat_files[label] = write_dat(
            out_dir / f"{figure_id}_{safe}.dat", series, header=f"{figure_id}: {label}"
        )
    return write_gnuplot_script(
        out_dir / f"{figure_id}.gp",
        dat_files,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        output=f"{figure_id}.png",
    )


# ----------------------------------------------------------------------
# Metrics / manifest emitters (repro.obs)
# ----------------------------------------------------------------------


def metrics_document(
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
) -> Dict[str, Any]:
    """The canonical export shape: ``{manifest, metrics[, spans]}``.

    With ``deterministic_only`` the manifest drops its host-specific
    fields (wall clock, python version); the metrics snapshot is
    already deterministic by construction, so the resulting document
    is byte-identical across same-seed runs.
    """
    doc: Dict[str, Any] = {
        "manifest": manifest.as_dict(deterministic_only) if manifest else None,
        "metrics": snapshot,
    }
    if spans is not None:
        doc["spans"] = spans
    return doc


def metrics_json(
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
    indent: Optional[int] = 2,
) -> str:
    """Serialize :func:`metrics_document` with sorted keys (stable bytes)."""
    return json.dumps(
        metrics_document(manifest, snapshot, spans, deterministic_only),
        sort_keys=True,
        indent=indent,
    )


def write_metrics_json(
    path: PathLike,
    manifest: Optional[RunManifest],
    snapshot: Snapshot,
    spans: Optional[List[Dict[str, Any]]] = None,
    deterministic_only: bool = False,
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_json(manifest, snapshot, spans, deterministic_only) + "\n")
    return path


def sweep_json(
    outcome: Any, deterministic_only: bool = True, indent: Optional[int] = 2
) -> str:
    """Serialize a :class:`repro.runtime.aggregate.SweepOutcome`'s
    aggregate document with sorted keys — the same stable-bytes
    convention as :func:`metrics_json`, so two sweeps of the same plan
    diff clean regardless of worker count or completion order."""
    return json.dumps(
        outcome.document(deterministic_only=deterministic_only),
        sort_keys=True,
        indent=indent,
    )


def write_sweep_json(
    path: PathLike, outcome: Any, deterministic_only: bool = True
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(sweep_json(outcome, deterministic_only) + "\n")
    return path


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus metric name."""
    sanitized = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_counter_name(name: str) -> str:
    """Canonical counter family name: exactly one ``_total`` suffix
    (``net.ipfw.rules_scanned_total`` must not become ``..._total_total``)."""
    prom = _prom_name(name)
    if prom.endswith("_total"):
        prom = prom[: -len("_total")]
    return f"{prom}_total"


def _prom_num(value: float) -> str:
    """Prometheus float rendering (repr keeps full precision; ints stay ints)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def metrics_prom(
    snapshot: Snapshot, manifest: Optional[RunManifest] = None
) -> str:
    """Prometheus text exposition (version 0.0.4) of a metrics snapshot.

    Each family gets ``# HELP``/``# TYPE`` header lines and canonical
    unit suffixes (registry names already carry ``_seconds``/``_bytes``
    where units apply; counters gain exactly one ``_total``), so real
    Prometheus scrapers ingest the output cleanly —
    :func:`validate_prom_exposition` is the machine check. Counters
    become ``<name>_total``; gauges emit their value plus a
    ``<name>_peak`` companion; histograms emit cumulative ``_bucket``
    series with ``le`` labels, ``_sum`` and ``_count``. An optional
    manifest becomes a ``repro_run_info`` info-style gauge. Metric
    names are emitted sorted, so output bytes are deterministic.
    """
    lines: List[str] = []

    def header(prom: str, kind: str, dotted: str, note: str = "") -> None:
        suffix = f" {note}" if note else ""
        lines.append(f"# HELP {prom} repro {kind} {dotted}{suffix}")
        lines.append(f"# TYPE {prom} {kind}")

    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric["kind"]
        if kind == "counter":
            prom = _prom_counter_name(name)
            header(prom, "counter", name)
            lines.append(f"{prom} {_prom_num(metric['value'])}")
        elif kind == "gauge":
            prom = _prom_name(name)
            header(prom, "gauge", name)
            lines.append(f"{prom} {_prom_num(metric['value'])}")
            header(f"{prom}_peak", "gauge", name, note="(peak)")
            lines.append(f"{prom}_peak {_prom_num(metric['peak'])}")
        elif kind == "histogram":
            prom = _prom_name(name)
            header(prom, "histogram", name)
            cumulative = 0
            edges = list(metric["edges"])  # type: ignore[arg-type]
            counts = list(metric["counts"])  # type: ignore[arg-type]
            for edge, count in zip(edges, counts):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{_prom_num(float(edge))}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric["count"]}')
            lines.append(f"{prom}_sum {_prom_num(metric['sum'])}")
            lines.append(f"{prom}_count {metric['count']}")
    if manifest is not None:
        info = manifest.as_dict(deterministic_only=True)
        labels = ",".join(
            f'{_prom_name(str(k))[len("repro_"):]}="{v}"'
            for k, v in sorted(info.items())
            if isinstance(v, (str, int, float, bool))
        )
        lines.append("# HELP repro_run_info repro run manifest (labels carry provenance)")
        lines.append("# TYPE repro_run_info gauge")
        lines.append(f"repro_run_info{{{labels}}} 1")
    return "\n".join(lines) + "\n"


#: Prometheus metric-name grammar (exposition format 0.0.4).
_PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$"
)
def validate_prom_exposition(text: str) -> List[str]:
    """Machine check of a Prometheus text exposition. Returns problems
    (empty = clean). Enforced properties:

    * the document ends with a newline and every sample line parses;
    * every sample's family has ``# HELP`` and ``# TYPE`` lines *before*
      its first sample, and at most one of each;
    * ``# TYPE`` values are legal; counter families end ``_total`` with
      no doubled suffix, and unit suffixes come before ``_total``;
    * histogram families emit ordered, cumulative (non-decreasing)
      ``_bucket`` series ending at ``le="+Inf"`` plus ``_sum``/``_count``;
    * sample values parse as finite-or-+Inf floats.
    """
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    helped: Dict[str, int] = {}
    typed: Dict[str, str] = {}
    seen_samples: Dict[str, bool] = {}
    hist_state: Dict[str, Tuple[float, float]] = {}  # family -> (last le, last cum)

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and typed.get(base) == "histogram":
                return base
        return sample_name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                problems.append(f"line {lineno}: HELP without text")
                continue
            name = parts[2]
            if name in helped:
                problems.append(f"line {lineno}: duplicate HELP for {name}")
            if name in seen_samples:
                problems.append(f"line {lineno}: HELP for {name} after its samples")
            helped[name] = lineno
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: illegal type {kind!r}")
            if name in typed:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if name in seen_samples:
                problems.append(f"line {lineno}: TYPE for {name} after its samples")
            typed[name] = kind
            if kind == "counter":
                if not name.endswith("_total"):
                    problems.append(f"counter {name} must end with _total")
                elif name.endswith("_total_total"):
                    problems.append(f"counter {name} doubles the _total suffix")
            for unit in ("seconds", "bytes"):
                base = name[: -len("_total")] if name.endswith("_total") else name
                if f"_{unit}_" in base:
                    problems.append(
                        f"{name}: unit suffix _{unit} must terminate the base name"
                    )
            continue
        if line.startswith("#"):
            continue
        match = _PROM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        if not _PROM_NAME_RE.match(name):
            problems.append(f"line {lineno}: illegal metric name {name!r}")
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError:
            problems.append(f"line {lineno}: unparseable value {value_text!r}")
            continue
        if value != value:
            problems.append(f"line {lineno}: NaN sample for {name}")
        family = family_of(name)
        seen_samples[family] = True
        if family not in typed:
            problems.append(f"line {lineno}: sample {name} without a TYPE line")
        if family not in helped:
            problems.append(f"line {lineno}: sample {name} without a HELP line")
        if typed.get(family) == "histogram" and name.endswith("_bucket"):
            labels = match.group("labels") or ""
            le = None
            for part in labels.split(","):
                key, _, raw = part.partition("=")
                if key.strip() == "le":
                    raw = raw.strip().strip('"')
                    le = float("inf") if raw == "+Inf" else float(raw)
            if le is None:
                problems.append(f"line {lineno}: histogram bucket without le label")
                continue
            last_le, last_cum = hist_state.get(family, (float("-inf"), float("-inf")))
            if le <= last_le:
                problems.append(f"{family}: bucket le={le} out of order")
            if value < last_cum:
                problems.append(f"{family}: bucket counts are not cumulative")
            hist_state[family] = (le, max(value, last_cum))
    for family, (last_le, _cum) in hist_state.items():
        if last_le != float("inf"):
            problems.append(f'{family}: histogram missing le="+Inf" bucket')
    return problems


def write_metrics_prom(
    path: PathLike, snapshot: Snapshot, manifest: Optional[RunManifest] = None
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_prom(snapshot, manifest))
    return path


def write_metrics_csv(path: PathLike, snapshot: Snapshot) -> pathlib.Path:
    """Flat ``metric,kind,field,value`` rows — one line per scalar, so
    histograms expand into count/sum/min/max plus one ``bucket_le_X``
    row per bucket (spreadsheet- and pandas-friendly)."""
    path = pathlib.Path(path)
    lines = ["metric,kind,field,value"]
    for name, metric in snapshot.items():
        kind = metric["kind"]
        if kind == "histogram":
            for field in ("count", "sum", "min", "max"):
                lines.append(f"{name},{kind},{field},{metric[field]}")
            edges = list(metric["edges"]) + ["inf"]  # type: ignore[arg-type]
            for edge, count in zip(edges, metric["counts"]):  # type: ignore[arg-type]
                lines.append(f"{name},{kind},bucket_le_{edge},{count}")
        elif kind == "gauge":
            lines.append(f"{name},{kind},value,{metric['value']}")
            lines.append(f"{name},{kind},peak,{metric['peak']}")
        else:
            lines.append(f"{name},{kind},value,{metric['value']}")
    path.write_text("\n".join(lines) + "\n")
    return path
