"""Aligned text tables and tiny ASCII series plots for bench output.

Each benchmark prints the rows/series its paper figure shows; these
helpers keep that output readable in a terminal.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


class Table:
    """A simple right-aligned text table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self._rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self._rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self._rows))
            if self._rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __len__(self) -> int:
        return len(self._rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_ascii_series(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """A minimal scatter/line rendering of (x, y) points."""
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - xmin) / xspan * (width - 1)))
        row = min(height - 1, int((y - ymin) / yspan * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {ymin:.3g} .. {ymax:.3g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {xmin:.3g} .. {xmax:.3g}")
    return "\n".join(lines)
