"""Empirical cumulative distribution functions (Figure 3)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """``[(x, F(x))]`` with F the fraction of samples <= x."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(x, (i + 1) / n) for i, x in enumerate(ordered)]


def quantile(values: Sequence[float], q: float) -> float:
    """q-quantile by nearest-rank (q in [0, 1])."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def spread(values: Sequence[float]) -> float:
    """(max - min) / mean — the fairness number Figure 3 visualizes."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    return (max(values) - min(values)) / mean
