"""Hot-path configuration: the ``REPRO_SLOW_PATH`` escape hatch.

The simulator and network layers carry four coupled wall-clock
optimisations (see DESIGN.md, "Hot-path architecture"):

* a per-flow verdict cache in :class:`repro.net.ipfw.Firewall`,
* an adaptive-window calendar/near-future tier + ``Event`` free list
  in :class:`repro.sim.event.EventQueue`,
* packet-train batching of back-to-back pipe deliveries in
  :class:`repro.net.pipe.DummynetPipe`, and
* packet pooling / reuse on the transport paths.

All four are **semantics-preserving**: verdicts, emulated latencies,
metrics snapshots and trace exports are byte-identical with the
optimisations on or off. Setting ``REPRO_SLOW_PATH=1`` in the
environment disables every fast path at once, restoring the
unoptimised reference implementation — that is what the subprocess A/B
determinism tests (and ``benchmarks/bench_kernel.py`` /
``bench_ipfw.py`` / ``bench_pipe_train.py``) diff against.

Individual components also accept explicit constructor flags
(``EventQueue(calendar=...)``, ``Firewall(flow_cache=...)``,
``DummynetPipe(batch=...)``) so tests and benchmarks can pit both
paths against each other inside a single process; the environment
variable only selects the *default*.
"""

from __future__ import annotations

import os


def _env_slow_path() -> bool:
    return os.environ.get("REPRO_SLOW_PATH", "") not in ("", "0")


#: True when ``REPRO_SLOW_PATH`` requests the unoptimised reference
#: path. Read once at import; spawn a subprocess to flip it for A/B.
SLOW_PATH: bool = _env_slow_path()
