"""Virtual nodes: a network identity plus application processes.

A virtual node is *not* a virtual machine — it is exactly what P2PLab
makes it: an IP alias on its physical host plus processes whose libc is
configured with ``BINDIP`` pointing at that alias. All other resources
(CPU, memory, filesystem) are shared with the host, which is why the
folding experiments must watch for host saturation.

At million-vnode scale the per-node footprint matters more than the
API: the class is ``__slots__``-based, its ``name`` may be deferred
(stored as a shared prefix plus an ordinal and formatted on first
use), and the :class:`~repro.virt.libc.Libc` instance is created
lazily — an idle vnode is little more than an address and a couple of
firewall rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from repro.net.addr import IPv4Address
from repro.sim.process import Process
from repro.virt.libc import DEFAULT_SYSCALL_COST, Libc

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.pnode import PhysicalNode

#: An application is a callable taking the vnode and returning a generator.
AppFactory = Callable[["VirtualNode"], Generator[Any, Any, Any]]


class VirtualNode:
    """One emulated peer: address, libc, processes, and a log."""

    __slots__ = (
        "pnode", "address", "group", "sim", "cpu_speed",
        "_name", "_name_prefix", "_ordinal", "_libc", "_processes",
        "_syscall_cost",
    )

    def __init__(
        self,
        pnode: "PhysicalNode",
        name: Optional[str],
        address: IPv4Address,
        group: Optional[str] = None,
        syscall_cost: float = DEFAULT_SYSCALL_COST,
        name_prefix: Optional[str] = None,
        ordinal: Optional[int] = None,
    ) -> None:
        if name is None and name_prefix is None:
            raise ValueError("VirtualNode needs a name or a name_prefix/ordinal")
        self.pnode = pnode
        self.address = address
        self.group = group
        self.sim = pnode.sim
        #: Relative virtual-processor speed (1.0 = a full host CPU) —
        #: the Desktop-Computing extension the paper lists as future
        #: work; see CpuAccount.charge.
        self.cpu_speed: float = 1.0
        # Deferred-name storage: the prefix string is shared by every
        # vnode of a deployment, so an un-named vnode costs one int
        # instead of one unique string.
        self._name = name
        self._name_prefix = name_prefix
        self._ordinal = ordinal
        self._libc: Optional[Libc] = None
        self._processes: Optional[List[Process]] = None
        self._syscall_cost = syscall_cost

    @property
    def name(self) -> str:
        n = self._name
        if n is None:
            n = self._name = f"{self._name_prefix}{self._ordinal}"
        return n

    @property
    def libc(self) -> Libc:
        lib = self._libc
        if lib is None:
            lib = self._libc = Libc(
                self.pnode.stack,
                bindip=self.address,
                intercepting=True,
                syscall_cost=self._syscall_cost,
            )
        return lib

    @property
    def processes(self) -> List[Process]:
        procs = self._processes
        if procs is None:
            procs = self._processes = []
        return procs

    def spawn(self, app: AppFactory, start_delay: float = 0.0, name: Optional[str] = None) -> Process:
        """Start an application process on this virtual node."""
        proc = Process(
            self.sim,
            app(self),
            name=name or f"{self.name}/{getattr(app, '__name__', 'app')}",
            start_delay=start_delay,
        )
        self.processes.append(proc)
        return proc

    def log(self, category: str, **fields: Any) -> None:
        """Emit a time-stamped trace record tagged with this node.

        This models the paper's instrumentation: "a time-stamp was added
        to the default output" of the BitTorrent client.
        """
        self.sim.trace.record(self.sim.now, category, node=self.name, **fields)

    @property
    def rng(self):
        """A named RNG stream private to this virtual node."""
        return self.sim.rng.stream(f"vnode/{self.name}")

    def compute(self, cpu_seconds: float) -> float:
        """Charge CPU work at this vnode's speed; returns the wall-time
        delay the calling process must yield::

            yield vnode.compute(2.0)   # 2 CPU-seconds of work
        """
        return self.pnode.cpu.charge(cpu_seconds, speed=self.cpu_speed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualNode({self.name!r}, {self.address}, on {self.pnode.name!r})"
