"""Virtual nodes: a network identity plus application processes.

A virtual node is *not* a virtual machine — it is exactly what P2PLab
makes it: an IP alias on its physical host plus processes whose libc is
configured with ``BINDIP`` pointing at that alias. All other resources
(CPU, memory, filesystem) are shared with the host, which is why the
folding experiments must watch for host saturation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from repro.net.addr import IPv4Address
from repro.sim.process import Process
from repro.virt.libc import DEFAULT_SYSCALL_COST, Libc

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.pnode import PhysicalNode

#: An application is a callable taking the vnode and returning a generator.
AppFactory = Callable[["VirtualNode"], Generator[Any, Any, Any]]


class VirtualNode:
    """One emulated peer: address, libc, processes, and a log."""

    def __init__(
        self,
        pnode: "PhysicalNode",
        name: str,
        address: IPv4Address,
        group: Optional[str] = None,
        syscall_cost: float = DEFAULT_SYSCALL_COST,
    ) -> None:
        self.pnode = pnode
        self.name = name
        self.address = address
        self.group = group
        self.sim = pnode.sim
        self.libc = Libc(
            pnode.stack,
            bindip=address,
            intercepting=True,
            syscall_cost=syscall_cost,
        )
        #: Relative virtual-processor speed (1.0 = a full host CPU) —
        #: the Desktop-Computing extension the paper lists as future
        #: work; see CpuAccount.charge.
        self.cpu_speed: float = 1.0
        self.processes: List[Process] = []

    def spawn(self, app: AppFactory, start_delay: float = 0.0, name: Optional[str] = None) -> Process:
        """Start an application process on this virtual node."""
        proc = Process(
            self.sim,
            app(self),
            name=name or f"{self.name}/{getattr(app, '__name__', 'app')}",
            start_delay=start_delay,
        )
        self.processes.append(proc)
        return proc

    def log(self, category: str, **fields: Any) -> None:
        """Emit a time-stamped trace record tagged with this node.

        This models the paper's instrumentation: "a time-stamp was added
        to the default output" of the BitTorrent client.
        """
        self.sim.trace.record(self.sim.now, category, node=self.name, **fields)

    @property
    def rng(self):
        """A named RNG stream private to this virtual node."""
        return self.sim.rng.stream(f"vnode/{self.name}")

    def compute(self, cpu_seconds: float) -> float:
        """Charge CPU work at this vnode's speed; returns the wall-time
        delay the calling process must yield::

            yield vnode.compute(2.0)   # 2 CPU-seconds of work
        """
        return self.pnode.cpu.charge(cpu_seconds, speed=self.cpu_speed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualNode({self.name!r}, {self.address}, on {self.pnode.name!r})"
