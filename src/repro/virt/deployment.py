"""Testbed construction and folding placement.

A :class:`Testbed` is the emulated GridExplorer cluster: a switch and a
set of physical nodes on the administration subnet. Deployment places N
virtual nodes on M physical nodes — the paper deploys the same 160
clients "successively on 160 physical nodes, 16 physical nodes (10
virtual nodes per physical node), 8, 4 and 2 physical nodes" and checks
that results do not change (Figure 9).
"""

from __future__ import annotations

from typing import (
    Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro.errors import VirtualizationError
from repro.net.addr import IPv4Address, IPv4Network, network
from repro.net.switch import Switch
from repro.sim import SimConfig, Simulator
from repro.units import gbps, us
from repro.virt.pnode import PhysicalNode
from repro.virt.vnode import VirtualNode

#: Placement strategies.
PLACEMENT_BLOCK = "block"
PLACEMENT_ROUND_ROBIN = "round-robin"


class Testbed:
    """The emulated cluster: switch + physical nodes + virtual nodes."""

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        num_pnodes: int = 2,
        admin_network: Union[str, IPv4Network] = "192.168.38.0/24",
        port_bandwidth: float = gbps(1),
        port_delay: float = us(60),
        seed: int = 0,
        ncpus: int = 2,
        enforce_cpu: bool = False,
        tcp_explicit_acks: bool = False,
        observe: bool = True,
        flight: bool = False,
        sim_config: Optional[SimConfig] = None,
    ) -> None:
        if num_pnodes < 1:
            raise VirtualizationError(f"need at least one physical node, got {num_pnodes}")
        if sim_config is None:
            sim_config = SimConfig(flight=flight)
        elif flight:
            sim_config = sim_config.replace(flight=True)
        self.sim = (
            sim if sim is not None
            else Simulator(seed=seed, observe=observe, config=sim_config)
        )
        self.admin_network = network(admin_network)
        if num_pnodes >= self.admin_network.num_addresses - 1:
            raise VirtualizationError(
                f"{num_pnodes} physical nodes do not fit in {self.admin_network}"
            )
        self.switch = Switch(self.sim, port_bandwidth=port_bandwidth, port_delay=port_delay)
        self.pnodes: List[PhysicalNode] = [
            PhysicalNode(
                self.sim,
                name=f"pnode{i + 1}",
                admin_address=self.admin_network.host(i + 1),
                switch=self.switch,
                ncpus=ncpus,
                enforce_cpu=enforce_cpu,
                tcp_explicit_acks=tcp_explicit_acks,
            )
            for i in range(num_pnodes)
        ]
        self._vnodes: List[VirtualNode] = []
        self._vnode_map: Optional[Dict[str, VirtualNode]] = {}
        self._by_address: Optional[Dict[int, VirtualNode]] = {}

    # ------------------------------------------------------------------
    @property
    def vnodes(self) -> Dict[str, VirtualNode]:
        """Name-keyed view of every deployed vnode (built lazily —
        touching it forces any deferred names)."""
        vnode_map = self._vnode_map
        if vnode_map is None:
            vnode_map = self._vnode_map = {v.name: v for v in self._vnodes}
        return vnode_map

    def deploy(
        self,
        addresses: Sequence[IPv4Address],
        placement: str = PLACEMENT_BLOCK,
        name_prefix: str = "vnode",
        group_of: Optional[Callable[[IPv4Address], Optional[str]]] = None,
    ) -> List[VirtualNode]:
        """Place one virtual node per address onto the physical nodes.

        ``block`` placement fills physical nodes with contiguous slices
        (ceil(N/M) per node, the paper's "32 virtual nodes per physical
        node" style); ``round-robin`` deals addresses out cyclically.
        """
        return list(
            self.place(
                addresses,
                count=len(addresses),
                placement=placement,
                name_prefix=name_prefix,
                group_of=group_of,
            )
        )

    def place(
        self,
        items: Iterable[Union[IPv4Address, Tuple[IPv4Address, Optional[str]]]],
        count: Optional[int] = None,
        placement: str = PLACEMENT_BLOCK,
        name_prefix: str = "vnode",
        group_of: Optional[Callable[[IPv4Address], Optional[str]]] = None,
        block_register: bool = False,
    ) -> Iterator[VirtualNode]:
        """Streaming placement: yield vnodes as they are created.

        ``items`` is an iterable of addresses or ``(address, group)``
        pairs — a generator works, so a million-address topology never
        exists as a list. ``count`` must be given when ``items`` has no
        ``len()`` (block placement needs the total up front). Created
        vnodes carry deferred names (``f"{name_prefix}{ordinal}"``,
        formatted on first use) and lazy libc state.

        ``block_register=True`` registers contiguous address runs with
        the stack/switch as O(1) blocks instead of per-address entries
        (the million-vnode fast path). A run is flushed when it breaks,
        so consume the stream fully before starting traffic.
        """
        try:
            n = len(items)  # type: ignore[arg-type]
        except TypeError:
            if count is None:
                raise VirtualizationError(
                    "streaming placement needs count= for unsized iterables"
                )
            n = count
        m = len(self.pnodes)
        if n == 0:
            return
        per_node = -(-n // m)  # ceil
        start = len(self._vnodes)
        pnodes = self.pnodes
        # Name- and address-keyed views go stale as vnodes stream in;
        # they rebuild from the list on next access.
        self._vnode_map = None
        self._by_address = None
        if placement == PLACEMENT_BLOCK:
            block_placement = True
        elif placement == PLACEMENT_ROUND_ROBIN:
            block_placement = False
        else:
            raise VirtualizationError(f"unknown placement {placement!r}")
        vnodes = self._vnodes
        pnode = pnodes[0]
        pnode_index = 0
        slots_left = per_node  # countdown replaces a per-item division
        run_stack = None  # current contiguous (stack, value-run) slice
        run_start = run_end = 0
        try:
            for i, item in enumerate(items):
                if type(item) is tuple:
                    addr, group = item
                else:
                    addr = item
                    group = group_of(addr) if group_of is not None else None
                if block_placement:
                    if slots_left == 0:
                        pnode_index += 1
                        pnode = pnodes[pnode_index]
                        slots_left = per_node
                    slots_left -= 1
                else:
                    pnode = pnodes[i % m]
                if block_register:
                    stack = pnode.stack
                    value = addr.value
                    if stack is run_stack and value == run_end:
                        run_end = value + 1
                    else:
                        if run_stack is not None:
                            run_stack.add_address_block(run_start, run_end)
                        run_stack = stack
                        run_start = value
                        run_end = value + 1
                    vnode = pnode.host(
                        addr, group=group, name_prefix=name_prefix,
                        ordinal=start + i + 1, register=False,
                    )
                else:
                    vnode = pnode.host(
                        addr, group=group, name_prefix=name_prefix,
                        ordinal=start + i + 1,
                    )
                vnodes.append(vnode)
                yield vnode
        finally:
            if run_stack is not None and run_end > run_start:
                run_stack.add_address_block(run_start, run_end)

    def vnode_at(self, address: Union[IPv4Address, str]) -> VirtualNode:
        value = address.value if isinstance(address, IPv4Address) else IPv4Address(address).value
        by_address = self._by_address
        if by_address is None:
            by_address = self._by_address = {
                v.address.value: v for v in self._vnodes
            }
        try:
            return by_address[value]
        except KeyError:
            raise VirtualizationError(f"no vnode at {address}") from None

    # ------------------------------------------------------------------
    @property
    def folding_ratios(self) -> List[int]:
        return [p.folding_ratio for p in self.pnodes]

    def total_vnodes(self) -> int:
        return len(self._vnodes)

    def run(self, until: Optional[float] = None) -> None:
        """Convenience passthrough to the simulator."""
        self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Testbed(pnodes={len(self.pnodes)}, vnodes={len(self._vnodes)}, "
            f"t={self.sim.now:.1f}s)"
        )
