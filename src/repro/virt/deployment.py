"""Testbed construction and folding placement.

A :class:`Testbed` is the emulated GridExplorer cluster: a switch and a
set of physical nodes on the administration subnet. Deployment places N
virtual nodes on M physical nodes — the paper deploys the same 160
clients "successively on 160 physical nodes, 16 physical nodes (10
virtual nodes per physical node), 8, 4 and 2 physical nodes" and checks
that results do not change (Figure 9).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import VirtualizationError
from repro.net.addr import IPv4Address, IPv4Network, network
from repro.net.switch import Switch
from repro.sim import SimConfig, Simulator
from repro.units import gbps, us
from repro.virt.pnode import PhysicalNode
from repro.virt.vnode import VirtualNode

#: Placement strategies.
PLACEMENT_BLOCK = "block"
PLACEMENT_ROUND_ROBIN = "round-robin"


class Testbed:
    """The emulated cluster: switch + physical nodes + virtual nodes."""

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        num_pnodes: int = 2,
        admin_network: Union[str, IPv4Network] = "192.168.38.0/24",
        port_bandwidth: float = gbps(1),
        port_delay: float = us(60),
        seed: int = 0,
        ncpus: int = 2,
        enforce_cpu: bool = False,
        tcp_explicit_acks: bool = False,
        observe: bool = True,
        flight: bool = False,
        sim_config: Optional[SimConfig] = None,
    ) -> None:
        if num_pnodes < 1:
            raise VirtualizationError(f"need at least one physical node, got {num_pnodes}")
        if sim_config is None:
            sim_config = SimConfig(flight=flight)
        elif flight:
            sim_config = sim_config.replace(flight=True)
        self.sim = (
            sim if sim is not None
            else Simulator(seed=seed, observe=observe, config=sim_config)
        )
        self.admin_network = network(admin_network)
        if num_pnodes >= self.admin_network.num_addresses - 1:
            raise VirtualizationError(
                f"{num_pnodes} physical nodes do not fit in {self.admin_network}"
            )
        self.switch = Switch(self.sim, port_bandwidth=port_bandwidth, port_delay=port_delay)
        self.pnodes: List[PhysicalNode] = [
            PhysicalNode(
                self.sim,
                name=f"pnode{i + 1}",
                admin_address=self.admin_network.host(i + 1),
                switch=self.switch,
                ncpus=ncpus,
                enforce_cpu=enforce_cpu,
                tcp_explicit_acks=tcp_explicit_acks,
            )
            for i in range(num_pnodes)
        ]
        self.vnodes: Dict[str, VirtualNode] = {}
        self._by_address: Dict[int, VirtualNode] = {}

    # ------------------------------------------------------------------
    def deploy(
        self,
        addresses: Sequence[IPv4Address],
        placement: str = PLACEMENT_BLOCK,
        name_prefix: str = "vnode",
        group_of: Optional[Callable[[IPv4Address], Optional[str]]] = None,
    ) -> List[VirtualNode]:
        """Place one virtual node per address onto the physical nodes.

        ``block`` placement fills physical nodes with contiguous slices
        (ceil(N/M) per node, the paper's "32 virtual nodes per physical
        node" style); ``round-robin`` deals addresses out cyclically.
        """
        n, m = len(addresses), len(self.pnodes)
        if n == 0:
            return []
        created: List[VirtualNode] = []
        per_node = -(-n // m)  # ceil
        for i, addr in enumerate(addresses):
            if placement == PLACEMENT_BLOCK:
                pnode = self.pnodes[i // per_node]
            elif placement == PLACEMENT_ROUND_ROBIN:
                pnode = self.pnodes[i % m]
            else:
                raise VirtualizationError(f"unknown placement {placement!r}")
            name = f"{name_prefix}{len(self.vnodes) + 1}"
            group = group_of(addr) if group_of is not None else None
            vnode = pnode.add_vnode(name, addr, group=group)
            self.vnodes[name] = vnode
            self._by_address[vnode.address.value] = vnode
            created.append(vnode)
        return created

    def vnode_at(self, address: Union[IPv4Address, str]) -> VirtualNode:
        value = address.value if isinstance(address, IPv4Address) else IPv4Address(address).value
        try:
            return self._by_address[value]
        except KeyError:
            raise VirtualizationError(f"no vnode at {address}") from None

    # ------------------------------------------------------------------
    @property
    def folding_ratios(self) -> List[int]:
        return [p.folding_ratio for p in self.pnodes]

    def total_vnodes(self) -> int:
        return len(self.vnodes)

    def run(self, until: Optional[float] = None) -> None:
        """Convenience passthrough to the simulator."""
        self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Testbed(pnodes={len(self.pnodes)}, vnodes={len(self.vnodes)}, "
            f"t={self.sim.now:.1f}s)"
        )
