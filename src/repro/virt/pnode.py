"""Physical nodes: a machine hosting many virtual nodes.

Each physical node owns one network stack (interface + firewall +
Dummynet pipes) attached to the cluster switch, and an optional CPU
account used to study virtualization overhead: the paper monitored
"the system load, the memory usage, and the disk I/O on every physical
node" and found none limiting before the network saturated, so CPU
enforcement is off by default and available for ablations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import VirtualizationError
from repro.net.addr import IPv4Address, ip
from repro.net.stack import NetworkStack
from repro.net.switch import Switch
from repro.virt.libc import DEFAULT_SYSCALL_COST
from repro.virt.vnode import VirtualNode


class CpuAccount:
    """Aggregate CPU-time accounting for one physical node.

    ``charge(seconds)`` registers CPU work. When ``enforce`` is on, the
    caller must yield the returned delay: work is serialized across
    ``ncpus`` virtual processors, so an oversubscribed host slows its
    vnodes down — the overhead mechanism folding experiments look for.
    """

    __slots__ = ("sim", "ncpus", "enforce", "busy_seconds", "_cpu_free")

    def __init__(self, sim, ncpus: int = 2, enforce: bool = False) -> None:
        self.sim = sim
        self.ncpus = ncpus
        self.enforce = enforce
        self.busy_seconds = 0.0
        self._cpu_free = [0.0] * ncpus

    def charge(self, seconds: float, speed: float = 1.0) -> float:
        """Account ``seconds`` of CPU work; returns the delay to yield.

        ``speed`` scales the virtual processor: the paper notes P2PLab
        "is not possible to perform experiments where virtual
        processors of different speeds are assigned to instances"
        (making it unsuitable for Desktop Computing studies) and that
        "more complex virtualization solutions could help avoid this
        limitation" — this parameter is that extension: a vnode with
        ``speed=0.5`` needs twice the wall time for the same work.
        """
        if speed <= 0:
            raise VirtualizationError(f"cpu speed must be positive, got {speed}")
        demand = seconds / speed
        self.busy_seconds += demand
        if not self.enforce:
            return demand
        now = self.sim.now
        # Pick the least-loaded virtual CPU (earliest free time).
        idx = min(range(self.ncpus), key=self._cpu_free.__getitem__)
        start = self._cpu_free[idx] if self._cpu_free[idx] > now else now
        finish = start + demand
        self._cpu_free[idx] = finish
        return finish - now

    def utilization(self, elapsed: float) -> float:
        """Fraction of total CPU capacity used over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds / (elapsed * self.ncpus)


class PhysicalNode:
    """One cluster machine (GridExplorer dual-Opteron in the paper)."""

    __slots__ = (
        "sim", "name", "stack", "admin_address", "cpu", "_vnodes", "_by_name",
    )

    def __init__(
        self,
        sim,
        name: str,
        admin_address: Union[IPv4Address, str],
        switch: Optional[Switch] = None,
        ncpus: int = 2,
        enforce_cpu: bool = False,
        tcp_explicit_acks: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self.stack = NetworkStack(
            sim, name, switch=switch, tcp_explicit_acks=tcp_explicit_acks
        )
        self.admin_address = self.stack.set_admin_address(ip(admin_address))
        self.cpu = CpuAccount(sim, ncpus=ncpus, enforce=enforce_cpu)
        # Hosted vnodes live in a list; the name-keyed view is built on
        # demand (building it forces every deferred vnode name, so the
        # streaming deploy path must not touch it).
        self._vnodes: List[VirtualNode] = []
        self._by_name: Optional[Dict[str, VirtualNode]] = {}

    @property
    def vnodes(self) -> Dict[str, VirtualNode]:
        """Name-keyed view of the hosted vnodes (built lazily)."""
        by_name = self._by_name
        if by_name is None:
            by_name = self._by_name = {v.name: v for v in self._vnodes}
        return by_name

    def add_vnode(
        self,
        name: str,
        address: Union[IPv4Address, str],
        group: Optional[str] = None,
    ) -> VirtualNode:
        """Host a new virtual node: configure its alias and identity."""
        if name in self.vnodes:
            raise VirtualizationError(f"vnode {name!r} already hosted on {self.name!r}")
        address = ip(address)
        self.stack.add_address(address)
        vnode = VirtualNode(self, name, address, group=group)
        self._vnodes.append(vnode)
        self.vnodes[name] = vnode
        return vnode

    def host(
        self,
        address: IPv4Address,
        group: Optional[str] = None,
        name_prefix: str = "vnode",
        ordinal: int = 1,
        register: bool = True,
    ) -> VirtualNode:
        """Streaming-placement fast path: host a vnode with a deferred
        name (``f"{name_prefix}{ordinal}"`` formatted on first use) and
        no duplicate-name check — the deployment generator numbers
        vnodes uniquely by construction. ``register=False`` skips the
        per-address stack registration; the caller must cover the
        address via :meth:`NetworkStack.add_address_block`.
        """
        if register:
            self.stack.add_address(address)
        # Direct slot stores instead of the validating constructor —
        # this is the million-vnode build's hot loop, and every field
        # shape is fixed by this call site.
        vnode = VirtualNode.__new__(VirtualNode)
        vnode.pnode = self
        vnode.address = address
        vnode.group = group
        vnode.sim = self.sim
        vnode.cpu_speed = 1.0
        vnode._name = None
        vnode._name_prefix = name_prefix
        vnode._ordinal = ordinal
        vnode._libc = None
        vnode._processes = None
        vnode._syscall_cost = DEFAULT_SYSCALL_COST
        self._vnodes.append(vnode)
        self._by_name = None
        return vnode

    def remove_vnode(self, name: str) -> None:
        vnode = self.vnodes.pop(name, None)
        if vnode is None:
            raise VirtualizationError(f"no vnode {name!r} on {self.name!r}")
        self._vnodes.remove(vnode)
        self.stack.remove_address(vnode.address)

    @property
    def folding_ratio(self) -> int:
        """Number of virtual nodes hosted here."""
        return len(self._vnodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysicalNode({self.name!r}, {self.admin_address}, vnodes={len(self._vnodes)})"
