"""The modified C library (``BINDIP`` interception).

The paper modifies FreeBSD's libc so that:

* ``bind()`` rewrites the requested address to the ``BINDIP``
  environment variable (keeping the port);
* ``connect()`` and ``listen()`` first issue an extra ``bind()`` to
  ``BINDIP`` — "if another bind() was made before, this one will fail,
  but we ignore the error in this case" — doubling their syscall count.

The measured cost was 10.22 µs per connect/disconnect cycle unmodified
versus 10.79 µs modified, i.e. ~0.57 µs per extra syscall; that value
is the default :data:`DEFAULT_SYSCALL_COST` here. Statically compiled
programs bypass libc, which the paper reports as the approach's one
failure mode — modeled by :class:`Libc` with ``static=True``.

Libc methods are generator functions: application processes call them
with ``yield from`` so syscall costs become simulated time. Example::

    def app(vnode):
        sock = yield from vnode.libc.socket()
        yield from vnode.libc.bind(sock, (ANY, 6881))   # lands on BINDIP
        yield from vnode.libc.listen(sock)
        conn = yield from vnode.libc.accept(sock)
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

from repro.errors import AddressInUse, SocketError
from repro.net.addr import IPv4Address, ip
from repro.net.socket_api import ANY, Socket, raise_if_error

#: Calibrated from the paper: (10.79 - 10.22) µs per added bind() syscall.
DEFAULT_SYSCALL_COST = 0.57e-6


class Libc:
    """The C library an application is linked against.

    Parameters
    ----------
    stack:
        The hosting physical node's :class:`~repro.net.stack.NetworkStack`.
    bindip:
        The ``BINDIP`` environment variable — the virtual node's
        address — or ``None`` when running outside P2PLab.
    intercepting:
        Whether this libc carries the P2PLab modification.
    static:
        A statically compiled program: libc interception does not apply
        even if ``intercepting`` is set (the paper's failure mode).
    syscall_cost:
        Simulated seconds charged per system call; 0 disables the
        charging (and its events) for large-scale runs.
    """

    __slots__ = (
        "stack", "bindip", "intercepting", "static", "syscall_cost", "syscalls",
    )

    def __init__(
        self,
        stack,
        bindip: Union[IPv4Address, str, None] = None,
        intercepting: bool = True,
        static: bool = False,
        syscall_cost: float = DEFAULT_SYSCALL_COST,
    ) -> None:
        self.stack = stack
        self.bindip: Optional[IPv4Address] = ip(bindip) if bindip is not None else None
        self.intercepting = intercepting
        self.static = static
        self.syscall_cost = syscall_cost
        self.syscalls = 0

    # ------------------------------------------------------------------
    @property
    def effective(self) -> bool:
        """Is interception actually applied?"""
        return self.intercepting and not self.static and self.bindip is not None

    def _syscall(self):
        """Charge one system call (generator; use ``yield from``)."""
        self.syscalls += 1
        if self.syscall_cost > 0.0:
            yield self.syscall_cost

    # -- call wrappers (paper Fig. 5 order) -------------------------------
    def socket(self, type: str = Socket.TCP, window: Optional[int] = None):
        yield from self._syscall()
        kwargs = {} if window is None else {"window": window}
        return Socket(self.stack, type, **kwargs)

    def bind(self, sock: Socket, addr: Tuple[Any, int]):
        """``bind()``: interception rewrites the address to BINDIP."""
        if self.effective:
            addr = (self.bindip, addr[1])
        yield from self._syscall()
        sock.bind(addr)

    def restrict(self, sock: Socket):
        """The extra bind() issued before connect()/listen()."""
        yield from self._syscall()
        if sock.local is not None:
            return  # the real bind already happened; error ignored
        try:
            sock.bind((self.bindip, 0))
        except SocketError:
            pass  # "we ignore the error in this case"

    def connect(self, sock: Socket, addr: Tuple[Any, int]) -> Any:
        """``connect()``; returns the socket, raises SocketError on failure."""
        if self.effective:
            yield from self.restrict(sock)
        yield from self._syscall()
        result = yield sock.connect(addr)
        return raise_if_error(result)

    def listen(self, sock: Socket, backlog: int = 128):
        if self.effective:
            yield from self.restrict(sock)
        yield from self._syscall()
        sock.listen(backlog)

    def accept(self, sock: Socket) -> Any:
        yield from self._syscall()
        conn = yield sock.accept()
        return conn

    def send(self, sock: Socket, payload: Any, size: int):
        """``send()``: completes when the message is admitted to the network."""
        yield from self._syscall()
        yield sock.send(payload, size)

    def recv(self, sock: Socket) -> Any:
        yield from self._syscall()
        msg = yield sock.recv()
        return msg

    def sendto(self, sock: Socket, payload: Any, size: int, addr: Tuple[Any, int]):
        yield from self._syscall()
        sock.sendto(payload, size, addr)

    def recvfrom(self, sock: Socket) -> Any:
        yield from self._syscall()
        msg = yield sock.recvfrom()
        return msg

    def close(self, sock: Socket):
        yield from self._syscall()
        sock.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "intercepting" if self.effective else "plain"
        return f"Libc({mode}, bindip={self.bindip}, syscalls={self.syscalls})"
