"""Process-level virtualization (the paper's "Virtualization" section).

P2PLab virtualizes only the *network identity* of processes: every
virtual node is an ordinary process whose ``bind``/``connect``/``listen``
libc calls are rewritten to pin it to its own alias IP address
(``BINDIP``). This subpackage models that mechanism:

* :mod:`repro.virt.libc` — the modified C library, with per-syscall
  cost accounting (reproduces the 10.22 µs → 10.79 µs connect-cycle
  measurement);
* :mod:`repro.virt.vnode` — a virtual node: identity + process spawner;
* :mod:`repro.virt.pnode` — a physical node: stack + hosted vnodes +
  optional CPU accounting;
* :mod:`repro.virt.deployment` — a whole testbed and the folding
  placement of virtual onto physical nodes (Figure 9).
"""

from repro.virt.deployment import Testbed
from repro.virt.libc import Libc
from repro.virt.pnode import PhysicalNode
from repro.virt.vnode import VirtualNode

__all__ = ["Libc", "VirtualNode", "PhysicalNode", "Testbed"]
