"""repro — a reproduction of P2PLab (Nussbaum & Richard, 2006).

*Lightweight emulation to study peer-to-peer systems* built as a
deterministic discrete-event emulation in pure Python:

* :mod:`repro.sim` — discrete-event kernel;
* :mod:`repro.hostos` — host-OS scheduler/memory models (platform
  suitability study, Figures 1-3);
* :mod:`repro.net` — Dummynet/IPFW-style network emulation with an
  emulated socket API (Figures 4-6);
* :mod:`repro.virt` — process-level virtualization (BINDIP libc
  interception, physical/virtual nodes, folding);
* :mod:`repro.topology` — the edge-centric network model and its
  compiler to decentralized per-node firewall rules (Figure 7);
* :mod:`repro.core` — P2PLab experiment orchestration;
* :mod:`repro.bittorrent` — a complete BitTorrent implementation used
  as the studied application (Figures 8-11);
* :mod:`repro.experiments` — one module per paper figure/table;
* :mod:`repro.analysis` — series/CDF/table utilities.
"""

from repro.sim import SimConfig, Simulator

__version__ = "1.0.0"

__all__ = ["SimConfig", "Simulator", "__version__"]
