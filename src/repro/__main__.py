"""Command-line entry point: ``python -m repro <experiment-id>``.

Runs one of the paper's experiments and prints its report. ``list``
shows all known ids; ``all`` runs everything (scaled defaults);
``metrics`` runs a quickstart-sized swarm and dumps the run manifest
plus the full platform metrics snapshot (JSON by default); ``sweep``
fans an experiment's parameter grid out over the parallel runtime.

Examples::

    python -m repro list
    python -m repro fig6
    python -m repro run fig10 --partitions 4 scale=0.5
    python -m repro fig8 -- leechers=40 file_size=8388608
    python -m repro all
    python -m repro metrics
    python -m repro metrics seed=7 leechers=6 format=text
    python -m repro metrics out=run.json deterministic=true
    python -m repro metrics format=prom out=metrics.prom
    python -m repro trace fig8 out=trace.json
    python -m repro trace fig8 out=trace.json profile=true
    python -m repro sweep fig6 --parallel 4 --out sweep.json
    python -m repro sweep fig6 --parallel 2 rule_count=0,10000,20000
    python -m repro sweep fig10 --replications 3 --resume --checkpoint ck.jsonl
    python -m repro sweep fig10 --parallel 4 --telemetry run/telemetry.jsonl --listen 9099
    python -m repro watch run/telemetry.jsonl
    python -m repro bench kernel ipfw --compare
    python -m repro bench --smoke --compare
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, List

from repro.errors import SimulationError
from repro.experiments import EXPERIMENTS, RunRequest, get_experiment


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` overrides with int/float/bool coercion."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, _, raw = pair.partition("=")
        value: Any
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key] = value
    return overrides


# ----------------------------------------------------------------------
# Shared argument builders: every subcommand's parser is assembled from
# these, so an execution knob (--partitions, --seed, ...) is defined
# once and spelled/behaves identically wherever it appears.
# ----------------------------------------------------------------------
def _add_overrides_arg(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument("overrides", nargs="*", help=f"key=value {what}")


def _add_seed_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=None,
        help="root seed (a seed=N override wins for back-compat)",
    )


def _add_partitions_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--partitions", type=int, default=None,
        help="worker-process cap for partition-aware experiments "
        "(repro.sim.partition; results are byte-identical for any value)",
    )


def _add_fluid_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fluid", action="store_true", default=None,
        help="model long bulk transfers as fluid flows (rate epochs "
        "instead of per-packet events; see repro.net.fluid) for "
        "experiments that accept the knob",
    )


def _listen_spec(value: str) -> str:
    """argparse type for --listen: reject malformed addresses at parse
    time (clean exit-2 usage error instead of a traceback mid-run)."""
    from repro.obs.telemetry import parse_listen

    try:
        parse_listen(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", nargs="?", const="telemetry.jsonl", default=None,
        metavar="PATH",
        help="stream live telemetry events to this JSONL flight log "
        "(default telemetry.jsonl; follow it with 'python -m repro "
        "watch PATH'); wall-clock-only — results are byte-identical "
        "with or without it",
    )
    parser.add_argument(
        "--listen", default=None, metavar="[HOST:]PORT", type=_listen_spec,
        help="serve live /health (JSON) and /metrics (Prometheus) on "
        "this address while the run executes (implies telemetry)",
    )


@contextmanager
def _telemetry_session(log: str | None, listen: str | None, pulse: bool = False):
    """CLI-side telemetry lifecycle: hub + flight log + optional HTTP
    endpoint + (for single runs) a main-process heartbeat. Yields the
    :class:`~repro.obs.telemetry.TelemetryHub`, or ``None`` when both
    knobs are off."""
    if not log and listen is None:
        yield None
        return
    from repro.obs import telemetry as obs_telemetry

    hub = obs_telemetry.TelemetryHub(path=log or None)
    hub.start_watchdog()
    server = None
    heartbeat = None
    if listen is not None:
        server = obs_telemetry.serve_http(hub, listen)
        host, port = server.server_address[0], server.server_address[1]
        print(
            f"telemetry: serving http://{host}:{port}/health and /metrics",
            file=sys.stderr,
        )
    if log:
        print(f"telemetry: streaming events to {log}", file=sys.stderr)
    if pulse:
        heartbeat = obs_telemetry.Heartbeat(hub.emitter("main")).start()
    try:
        yield hub
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if server is not None:
            server.shutdown()
        hub.close()


def run_one(
    experiment_id: str,
    overrides: Dict[str, Any],
    seed: int | None = None,
    partitions: int | None = None,
    fluid: bool | None = None,
    telemetry_log: str | None = None,
    listen: str | None = None,
) -> int:
    try:
        entry = get_experiment(experiment_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"== {entry.id}: {entry.title} ==")
    overrides = dict(overrides)
    if "seed" in overrides:
        seed = int(overrides.pop("seed"))
    elif seed is None:
        seed = 0
    telemetry_on = bool(telemetry_log) or listen is not None
    request = RunRequest.make(
        entry.id, overrides, seed=seed, partitions=partitions, fluid=fluid,
        telemetry=True if telemetry_on else None,
    )
    start = time.perf_counter()
    try:
        with _telemetry_session(telemetry_log, listen, pulse=True) as hub:
            if hub is not None:
                from repro.obs import telemetry as obs_telemetry

                hub.ingest({
                    "ts": time.time(), "kind": "run_started",
                    "source": "main", "experiment": entry.id, "points": 1,
                })
                with obs_telemetry.use_emitter(hub.emitter("main")):
                    result = entry.execute(request)
                hub.ingest({
                    "ts": time.time(), "kind": "run_finished", "source": "main",
                    "completed": 1 if result.is_ok else 0,
                    "failed": 0 if result.is_ok else 1,
                    "wall_seconds": time.perf_counter() - start,
                })
            else:
                result = entry.execute(request)
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    print(result.report)
    print(f"[{elapsed:.1f}s wall]")
    return 0


def run_sweep(argv: List[str]) -> int:
    """``python -m repro sweep <id> [--parallel N] [--resume] ...``.

    Expands the experiment's default grid (or ``key=v1,v2,...``
    overrides) into an :class:`~repro.runtime.plan.ExecutionPlan` and
    executes it on the parallel, fault-tolerant runtime. The
    aggregated JSON on stdout (or ``--out``) is deterministic:
    byte-identical for any ``--parallel`` value.
    """
    from repro.analysis.export import sweep_json, write_sweep_json
    from repro.runtime import ExecutionPlan, execute_plan

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run an experiment sweep on the parallel runtime.",
    )
    parser.add_argument("experiment", help="experiment id (see 'list')")
    parser.add_argument(
        "overrides",
        nargs="*",
        help="key=value point params; comma-separated values sweep that key",
    )
    parser.add_argument(
        "--parallel", type=int, default=1,
        help="worker processes (0 = inline; default 1)",
    )
    _add_seed_arg(parser)
    _add_partitions_arg(parser)
    _add_fluid_arg(parser)
    _add_telemetry_args(parser)
    parser.add_argument(
        "--replications", type=int, default=1,
        help="replications per grid point (derived child seeds)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-point wall-clock timeout in seconds",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per point before it is recorded as failed",
    )
    parser.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint path (incremental; enables --resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip points already in the checkpoint file",
    )
    parser.add_argument("--out", default=None, help="write aggregated JSON here")
    parser.add_argument(
        "--stats", action="store_true",
        help="include non-deterministic fields (wall clock, attempts, "
        "runtime metrics) in the aggregate",
    )
    args = parser.parse_intermixed_args(argv)

    try:
        entry = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2

    # Overrides: comma-separated values become grid axes, scalars are
    # fixed params; both replace the entry's defaults key-by-key.
    grid = entry.sweep_grid_dict
    base = entry.sweep_base_dict
    for pair in args.overrides:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, _, raw = pair.partition("=")
        if "," in raw:
            values = tuple(_parse_overrides([f"x={v}"])["x"] for v in raw.split(","))
            grid[key] = values
            base.pop(key, None)
        else:
            base[key] = _parse_overrides([pair])[key]
            grid.pop(key, None)

    telemetry_on = bool(args.telemetry) or args.listen is not None
    plan = ExecutionPlan.build(
        entry.id,
        grid=grid,
        base_params=base,
        replications=args.replications,
        base_seed=args.seed if args.seed is not None else 0,
        partitions=args.partitions,
        fluid=args.fluid,
        telemetry=True if telemetry_on else None,
    )
    print(
        f"== sweep {entry.id}: {len(plan)} points "
        f"({args.parallel or 'inline'} workers) ==",
        file=sys.stderr,
    )
    with _telemetry_session(args.telemetry, args.listen, pulse=True) as hub:
        outcome = execute_plan(
            plan,
            parallel=args.parallel,
            runner=_sweep_point_runner,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            telemetry=hub,
        )
    if args.resume and outcome.prior_failures:
        keys = sorted({
            str(f.get("key")) for f in outcome.prior_failures
        })
        print(
            f"[resume: {len(outcome.prior_failures)} failure/retry records "
            f"for {len(keys)} point(s) in the previous run]",
            file=sys.stderr,
        )
        for failure in outcome.prior_failures:
            print(
                f"  prior {failure.get('kind')}: {failure.get('key')} "
                f"(attempt {failure.get('attempt')}): {failure.get('error')}",
                file=sys.stderr,
            )
    deterministic = not args.stats
    if args.out is not None:
        write_sweep_json(args.out, outcome, deterministic_only=deterministic)
    else:
        print(sweep_json(outcome, deterministic_only=deterministic))
    skipped = f", {outcome.resumed_points} resumed" if outcome.resumed_points else ""
    print(
        f"[{len(outcome.completed)}/{len(plan)} points ok, "
        f"{len(outcome.failed)} failed, {outcome.retried} retries{skipped}, "
        f"{outcome.wall_time_seconds:.1f}s wall]",
        file=sys.stderr,
    )
    return 0 if not outcome.failed else 1


def _sweep_point_runner(request):
    """Module-level (spawn-picklable) runner: one sweep point through
    the registry entry's per-point entry."""
    return get_experiment(request.experiment_id).point_runner(request)


def run_metrics(overrides: Dict[str, Any]) -> int:
    """``python -m repro metrics``: run a small swarm, emit manifest+metrics.

    Overrides: any :class:`~repro.bittorrent.swarm.SwarmConfig` scalar
    (``leechers``, ``seeders``, ``file_size``, ``seed``, ...) plus

    * ``format`` — ``json`` (default), ``text``, ``csv`` or ``prom``
      (Prometheus text exposition);
    * ``out`` — write to a file instead of stdout (required for csv);
    * ``max_time`` — simulation horizon (default 20000 s);
    * ``deterministic`` — drop host-specific manifest fields so the
      output is byte-identical across same-seed runs.
    """
    from repro.analysis.export import (
        metrics_json,
        metrics_prom,
        write_metrics_csv,
        write_metrics_json,
    )
    from repro.bittorrent import Swarm, SwarmConfig
    from repro.core.report import format_metrics
    from repro.units import MB

    overrides = dict(overrides)
    fmt = overrides.pop("format", "json")
    out = overrides.pop("out", None)
    max_time = float(overrides.pop("max_time", 20000.0))
    deterministic = bool(overrides.pop("deterministic", False))
    params: Dict[str, Any] = {
        "leechers": 4,
        "seeders": 1,
        "file_size": 1 * MB,
        "stagger": 1.0,
        "num_pnodes": 2,
        "seed": 42,
    }
    params.update(overrides)
    try:
        config = SwarmConfig(**params)
    except TypeError as exc:
        print(f"bad override: {exc}", file=sys.stderr)
        return 2

    start = time.perf_counter()
    swarm = Swarm(config)
    swarm.run(max_time=max_time)
    wall = time.perf_counter() - start

    manifest = swarm.manifest(
        wall_time_seconds=None if deterministic else wall
    )
    snapshot = swarm.metrics_snapshot()
    spans = swarm.sim.tracer.as_list()

    if fmt == "text":
        text = format_metrics(snapshot, manifest)
    elif fmt == "csv":
        if out is None:
            print("format=csv requires out=<path>", file=sys.stderr)
            return 2
        write_metrics_csv(out, snapshot)
        return 0
    elif fmt == "json":
        text = metrics_json(manifest, snapshot, spans, deterministic_only=deterministic)
    elif fmt == "prom":
        # The info line only carries deterministic manifest fields, so
        # prom output is stable bytes regardless of ``deterministic``.
        text = metrics_prom(snapshot, manifest).rstrip("\n")
    else:
        print(f"unknown format {fmt!r} (json|text|csv|prom)", file=sys.stderr)
        return 2
    if out is not None:
        if fmt == "json":
            write_metrics_json(out, manifest, snapshot, spans, deterministic)
        else:
            from pathlib import Path

            Path(out).write_text(text + "\n")
    else:
        print(text)
    return 0


#: Scaled-down swarm shapes for ``python -m repro trace <exp>`` — small
#: enough to trace in seconds, big enough to exercise every layer
#: (≥ 2 physical nodes so the Perfetto view shows multiple pid rows).
_TRACE_PRESETS: Dict[str, Dict[str, Any]] = {
    "quickstart": dict(leechers=4, seeders=1, file_size=1 << 20, stagger=1.0, num_pnodes=2),
    "fig8": dict(leechers=6, seeders=1, file_size=512 * 1024, stagger=1.0, num_pnodes=4),
    "fig9": dict(leechers=8, seeders=1, file_size=512 * 1024, stagger=0.5, num_pnodes=2),
    "fig10": dict(leechers=12, seeders=1, file_size=256 * 1024, stagger=0.25, num_pnodes=4),
    "fig11": dict(leechers=12, seeders=2, file_size=256 * 1024, stagger=0.25, num_pnodes=4),
}


def run_trace(argv: List[str]) -> int:
    """``python -m repro trace <exp> [out=trace.json] [key=value ...]``.

    Runs a scaled-down flight-recorded swarm for the experiment and
    writes a Chrome Trace Event JSON that opens in ``ui.perfetto.dev``:
    physical nodes are process rows (tid 0 = kernel: ipfw + pipes),
    virtual nodes are thread rows, the switch fabric and the experiment
    harness get their own rows. Deterministic: byte-identical across
    same-seed runs unless ``profile=true`` adds wall-clock data.

    Overrides: any :class:`~repro.bittorrent.swarm.SwarmConfig` scalar,
    plus ``out`` (default ``trace.json``), ``max_time``, ``observe``
    (``false`` = NULL-instrument run: no flights recorded),
    ``profile`` (embed wall-clock event-loop profile — makes the
    output non-reproducible), and ``sample_period`` (sim-seconds
    between time-series samples; default 5).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Record a Chrome Trace Event JSON of a scaled-down swarm.",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help=f"traceable experiment id ({', '.join(sorted(set(_TRACE_PRESETS) | {'swarm'}))})",
    )
    _add_overrides_arg(parser, "overrides (out=, max_time=, profile=, SwarmConfig fields)")
    args = parser.parse_intermixed_args(argv)
    if args.experiment is None:
        print("usage: python -m repro trace <experiment> [out=trace.json]", file=sys.stderr)
        return 2
    experiment_id, pairs = args.experiment, args.overrides
    known = set(_TRACE_PRESETS) | {"swarm"}
    if experiment_id not in known:
        print(
            f"unknown traceable experiment {experiment_id!r} "
            f"(swarm-backed ids: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2

    from repro.bittorrent import Swarm, SwarmConfig
    from repro.obs.chrometrace import validate_chrome_trace, write_chrome_trace
    from repro.obs.timeseries import TimeSeriesSampler

    overrides = _parse_overrides(pairs)
    out = overrides.pop("out", "trace.json")
    max_time = float(overrides.pop("max_time", 20000.0))
    observe = bool(overrides.pop("observe", True))
    profile = bool(overrides.pop("profile", False))
    sample_period = float(overrides.pop("sample_period", 5.0))
    params: Dict[str, Any] = dict(_TRACE_PRESETS.get(experiment_id, _TRACE_PRESETS["quickstart"]))
    params["seed"] = 0
    params.update(overrides)
    params["observe"] = observe
    params["flight"] = observe
    try:
        config = SwarmConfig(**params)
    except TypeError as exc:
        print(f"bad override: {exc}", file=sys.stderr)
        return 2

    swarm = Swarm(config)
    if profile:
        swarm.sim.enable_profiler()
    timeseries = None
    if observe:
        timeseries = TimeSeriesSampler(swarm.sim, period=sample_period)
        timeseries.start()
    start = time.perf_counter()
    swarm.run(max_time=max_time)
    wall = time.perf_counter() - start
    if timeseries is not None:
        timeseries.stop()

    doc = swarm.chrome_trace(
        timeseries=timeseries,
        include_profile=profile,
        experiment=experiment_id,
    )
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    path = write_chrome_trace(out, doc)

    flights = swarm.sim.flight.flights()
    delivered = sum(1 for f in flights if f.status == "delivered")
    events = doc["traceEvents"]
    timed = [e for e in events if e["ph"] != "M"]
    pids = sorted({e["pid"] for e in timed})
    print(
        f"trace: {len(events)} events ({len(timed)} timed) on {len(pids)} process rows "
        f"-> {path}"
    )
    print(
        f"flights: {len(flights)} recorded, {delivered} delivered; "
        f"spans: {len(getattr(swarm.sim.tracer, 'finished', []))}; "
        f"records: {len(swarm.sim.trace)}"
    )
    if profile:
        print(swarm.sim.profiler.format())
        print("(profile=true embeds wall-clock data: output is not reproducible)")
    print(f"open in https://ui.perfetto.dev  [{wall:.1f}s wall]")
    return 0


def run_bench(argv: List[str]) -> int:
    """``python -m repro bench [figure ...] [--compare] [--smoke]``.

    Runs the microbenchmark suite (``benchmarks/bench_*.py``) through
    pytest in a subprocess, so benches work without remembering the
    pytest incantation. Each bench drops its ``BENCH_<figure>.json``
    at the repo root (see ``benchmarks/conftest.py``).

    * ``figure`` — one or more substrings selecting bench files
      (``kernel`` -> ``bench_kernel.py``, ``fig06`` ->
      ``bench_fig06_rule_scaling.py``); default: all benches.
    * ``--compare`` — afterwards run ``benchmarks/compare.py`` against
      each file's embedded previous wall-clock and fail on >25%
      regression (plus the hot-path speedup floors).
    * ``--smoke`` — reduced scale (``REPRO_BENCH_SCALE=0.1``), what CI
      uses.
    """
    import os
    import pathlib
    import subprocess

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the microbenchmark suite (pytest benchmarks/).",
    )
    parser.add_argument(
        "figures", nargs="*",
        help="bench file substrings (e.g. 'kernel', 'ipfw', 'fig06'); default all",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run benchmarks/compare.py --gate after the benches",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scale (REPRO_BENCH_SCALE=0.1)",
    )
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    bench_dir = repo_root / "benchmarks"
    if args.figures:
        targets: List[str] = []
        for fig in args.figures:
            # An exact bench name wins over substring expansion, so
            # 'topo' selects bench_topo.py, not every *topo* file.
            exact = bench_dir / f"bench_{fig}.py"
            if exact.is_file():
                matches = [exact]
            else:
                matches = sorted(bench_dir.glob(f"bench_*{fig}*.py"))
            if not matches:
                print(f"no benchmark matches {fig!r} in {bench_dir}", file=sys.stderr)
                return 2
            targets.extend(str(p) for p in matches)
    else:
        targets = [str(bench_dir)]

    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if args.smoke:
        env["REPRO_BENCH_SCALE"] = "0.1"
    cmd = [sys.executable, "-m", "pytest", "-q", *dict.fromkeys(targets)]
    print(f"== bench: {' '.join(cmd[3:])} ==", file=sys.stderr)
    status = subprocess.call(cmd, cwd=repo_root, env=env)
    if status != 0:
        return status
    if args.compare:
        status = subprocess.call(
            [sys.executable, str(bench_dir / "compare.py"), "--gate"],
            cwd=repo_root,
            env=env,
        )
    return status


# ----------------------------------------------------------------------
# Subcommand handlers. Each builds its parser from the shared argument
# builders above and funnels work through :class:`RunRequest`, so every
# entry path (single run, ``all``, ``sweep``) carries execution knobs
# like ``--partitions`` identically.
# ----------------------------------------------------------------------
def _cmd_run(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run one experiment and print its report "
        "(the 'run' word may be omitted: 'python -m repro fig6').",
    )
    parser.add_argument("experiment", help="experiment id (see 'list')")
    _add_overrides_arg(parser, "parameter overrides passed to the run function")
    _add_seed_arg(parser)
    _add_partitions_arg(parser)
    _add_fluid_arg(parser)
    _add_telemetry_args(parser)
    args = parser.parse_intermixed_args(argv)
    return run_one(
        args.experiment,
        _parse_overrides(args.overrides),
        seed=args.seed,
        partitions=args.partitions,
        fluid=args.fluid,
        telemetry_log=args.telemetry,
        listen=args.listen,
    )


def _cmd_all(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro all",
        description="Run every registered experiment (scaled defaults).",
    )
    _add_overrides_arg(parser, "overrides applied to every experiment")
    _add_seed_arg(parser)
    _add_partitions_arg(parser)
    _add_fluid_arg(parser)
    args = parser.parse_intermixed_args(argv)
    overrides = _parse_overrides(args.overrides)
    status = 0
    for experiment_id in EXPERIMENTS:
        status |= run_one(
            experiment_id,
            dict(overrides),
            seed=args.seed,
            partitions=args.partitions,
            fluid=args.fluid,
        )
        print()
    return status


def _cmd_list(argv: List[str]) -> int:
    argparse.ArgumentParser(
        prog="python -m repro list",
        description="List all registered experiment ids.",
    ).parse_args(argv)
    width = max(len(i) for i in EXPERIMENTS)
    for entry in EXPERIMENTS.values():
        print(f"{entry.id:<{width}}  {entry.title}")
    return 0


def _cmd_watch(argv: List[str]) -> int:
    """``python -m repro watch <telemetry.jsonl|dir>``: follow a run's
    telemetry flight log, rendering the rolling health view (points
    done/failed, per-worker sim-time/events/RSS, stall verdicts) until
    the run finishes."""
    parser = argparse.ArgumentParser(
        prog="python -m repro watch",
        description="Follow a run's telemetry log as a live health view.",
    )
    parser.add_argument(
        "target",
        help="telemetry.jsonl path (or a directory containing one), as "
        "passed to --telemetry on the run being watched",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default 1)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit",
    )
    parser.add_argument(
        "--stall-after", type=float, default=None,
        help="flag a worker as stalled after this many wall seconds "
        "without progress (default 30)",
    )
    parser.add_argument(
        "--max-wait", type=float, default=None,
        help="give up following after this many wall seconds",
    )
    args = parser.parse_args(argv)
    from repro.obs import telemetry as obs_telemetry

    return obs_telemetry.watch(
        args.target,
        interval=args.interval,
        follow=not args.once,
        stall_after=(
            args.stall_after if args.stall_after is not None
            else obs_telemetry.STALL_AFTER
        ),
        max_wait=args.max_wait,
    )


def _cmd_metrics(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="Run a small swarm and dump manifest + metrics.",
    )
    _add_overrides_arg(
        parser, "overrides (format=, out=, max_time=, SwarmConfig fields)"
    )
    args = parser.parse_intermixed_args(argv)
    return run_metrics(_parse_overrides(args.overrides))


#: The one command tree: every ``python -m repro`` invocation resolves
#: to exactly one of these handlers; a leading experiment id is sugar
#: for ``run <id>``.
_COMMANDS = {
    "run": _cmd_run,
    "list": _cmd_list,
    "all": _cmd_all,
    "sweep": run_sweep,
    "trace": run_trace,
    "bench": run_bench,
    "metrics": _cmd_metrics,
    "watch": _cmd_watch,
}


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        print(f"\ncommands: {', '.join(sorted(_COMMANDS))}")
        return 0 if argv else 2
    command = argv[0]
    if command in _COMMANDS:
        return _COMMANDS[command](argv[1:])
    # Legacy spelling: ``python -m repro fig6 k=v`` == ``run fig6 k=v``.
    return _cmd_run(argv)


if __name__ == "__main__":
    sys.exit(main())
