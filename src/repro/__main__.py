"""Command-line entry point: ``python -m repro <experiment-id>``.

Runs one of the paper's experiments and prints its report. ``list``
shows all known ids; ``all`` runs everything (scaled defaults);
``metrics`` runs a quickstart-sized swarm and dumps the run manifest
plus the full platform metrics snapshot (JSON by default).

Examples::

    python -m repro list
    python -m repro fig6
    python -m repro fig8 -- leechers=40 file_size=8388608
    python -m repro all
    python -m repro metrics
    python -m repro metrics seed=7 leechers=6 format=text
    python -m repro metrics out=run.json deterministic=true
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List

from repro.experiments import EXPERIMENTS, get_experiment


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` overrides with int/float/bool coercion."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, _, raw = pair.partition("=")
        value: Any
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key] = value
    return overrides


def run_one(experiment_id: str, overrides: Dict[str, Any]) -> int:
    try:
        entry = get_experiment(experiment_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"== {entry.id}: {entry.title} ==")
    start = time.perf_counter()
    result = entry.run(**overrides)
    elapsed = time.perf_counter() - start
    print(entry.report(result))
    print(f"[{elapsed:.1f}s wall]")
    return 0


def run_metrics(overrides: Dict[str, Any]) -> int:
    """``python -m repro metrics``: run a small swarm, emit manifest+metrics.

    Overrides: any :class:`~repro.bittorrent.swarm.SwarmConfig` scalar
    (``leechers``, ``seeders``, ``file_size``, ``seed``, ...) plus

    * ``format`` — ``json`` (default), ``text`` or ``csv``;
    * ``out`` — write to a file instead of stdout (required for csv);
    * ``max_time`` — simulation horizon (default 20000 s);
    * ``deterministic`` — drop host-specific manifest fields so the
      output is byte-identical across same-seed runs.
    """
    from repro.analysis.export import metrics_json, write_metrics_csv, write_metrics_json
    from repro.bittorrent import Swarm, SwarmConfig
    from repro.core.report import format_metrics
    from repro.units import MB

    overrides = dict(overrides)
    fmt = overrides.pop("format", "json")
    out = overrides.pop("out", None)
    max_time = float(overrides.pop("max_time", 20000.0))
    deterministic = bool(overrides.pop("deterministic", False))
    params: Dict[str, Any] = {
        "leechers": 4,
        "seeders": 1,
        "file_size": 1 * MB,
        "stagger": 1.0,
        "num_pnodes": 2,
        "seed": 42,
    }
    params.update(overrides)
    try:
        config = SwarmConfig(**params)
    except TypeError as exc:
        print(f"bad override: {exc}", file=sys.stderr)
        return 2

    start = time.perf_counter()
    swarm = Swarm(config)
    swarm.run(max_time=max_time)
    wall = time.perf_counter() - start

    manifest = swarm.manifest(
        wall_time_seconds=None if deterministic else wall
    )
    snapshot = swarm.metrics_snapshot()
    spans = swarm.sim.tracer.as_list()

    if fmt == "text":
        text = format_metrics(snapshot, manifest)
    elif fmt == "csv":
        if out is None:
            print("format=csv requires out=<path>", file=sys.stderr)
            return 2
        write_metrics_csv(out, snapshot)
        return 0
    elif fmt == "json":
        text = metrics_json(manifest, snapshot, spans, deterministic_only=deterministic)
    else:
        print(f"unknown format {fmt!r} (json|text|csv)", file=sys.stderr)
        return 2
    if out is not None:
        if fmt == "json":
            write_metrics_json(out, manifest, snapshot, spans, deterministic)
        else:
            from pathlib import Path

            Path(out).write_text(text + "\n")
    else:
        print(text)
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a figure/table of the P2PLab paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list', 'all', or 'metrics'",
    )
    parser.add_argument(
        "overrides",
        nargs="*",
        help="key=value parameter overrides passed to the run function",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(i) for i in EXPERIMENTS)
        for entry in EXPERIMENTS.values():
            print(f"{entry.id:<{width}}  {entry.title}")
        return 0

    overrides = _parse_overrides(args.overrides)
    if args.experiment == "metrics":
        return run_metrics(overrides)
    if args.experiment == "all":
        status = 0
        for experiment_id in EXPERIMENTS:
            status |= run_one(experiment_id, dict(overrides))
            print()
        return status
    return run_one(args.experiment, overrides)


if __name__ == "__main__":
    sys.exit(main())
