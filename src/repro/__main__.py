"""Command-line entry point: ``python -m repro <experiment-id>``.

Runs one of the paper's experiments and prints its report. ``list``
shows all known ids; ``all`` runs everything (scaled defaults).

Examples::

    python -m repro list
    python -m repro fig6
    python -m repro fig8 -- leechers=40 file_size=8388608
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List

from repro.experiments import EXPERIMENTS, get_experiment


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``key=value`` overrides with int/float/bool coercion."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, _, raw = pair.partition("=")
        value: Any
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key] = value
    return overrides


def run_one(experiment_id: str, overrides: Dict[str, Any]) -> int:
    try:
        entry = get_experiment(experiment_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"== {entry.id}: {entry.title} ==")
    start = time.perf_counter()
    result = entry.run(**overrides)
    elapsed = time.perf_counter() - start
    print(entry.report(result))
    print(f"[{elapsed:.1f}s wall]")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a figure/table of the P2PLab paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list', or 'all'",
    )
    parser.add_argument(
        "overrides",
        nargs="*",
        help="key=value parameter overrides passed to the run function",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(i) for i in EXPERIMENTS)
        for entry in EXPERIMENTS.values():
            print(f"{entry.id:<{width}}  {entry.title}")
        return 0

    overrides = _parse_overrides(args.overrides)
    if args.experiment == "all":
        status = 0
        for experiment_id in EXPERIMENTS:
            status |= run_one(experiment_id, dict(overrides))
            print()
        return status
    return run_one(args.experiment, overrides)


if __name__ == "__main__":
    sys.exit(main())
