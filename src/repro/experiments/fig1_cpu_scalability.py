"""Figure 1: average per-process execution time vs concurrent processes.

Paper setup: dual-Opteron nodes run 1..1000 instances of a CPU-bound,
non-memory-bound program (Ackermann's function, ~1.65 s solo) and the
average per-process execution time is measured. Expected shape: flat
around 1.65 s with a slight *decrease* at higher counts ("probably
because of cache effects and costs that don't depend on the number of
processes") and no scheduler drowning — the y-range of the whole figure
is 1.645-1.69 s.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.experiments.osprofiles import PROFILES
from repro.hostos.machine import Machine
from repro.hostos.workloads import ackermann_task
from repro.sim import Simulator

DEFAULT_COUNTS: Tuple[int, ...] = (1, 10, 50, 100, 200, 400, 600, 800, 1000)


@dataclass(frozen=True)
class Fig1Result:
    """avg exec time per (profile, process count)."""

    counts: Tuple[int, ...]
    curves: Dict[str, List[float]]  # label -> avg exec time per count


def run_fig1(
    counts: Sequence[int] = DEFAULT_COUNTS,
    profiles: Sequence[str] = tuple(PROFILES),
    seed: int = 0,
) -> Fig1Result:
    curves: Dict[str, List[float]] = {}
    for label in profiles:
        profile = PROFILES[label]
        series: List[float] = []
        for n in counts:
            sim = Simulator(seed=seed)
            machine = Machine(
                sim,
                profile.make_scheduler(),
                ncpus=2,
                memory=profile.make_memory(),
            )
            for i in range(n):
                machine.submit(ackermann_task(i))
            sim.run()
            series.append(
                statistics.mean(r.execution_time for r in machine.results)
            )
        curves[label] = series
    return Fig1Result(counts=tuple(counts), curves=curves)


def print_report(result: Fig1Result) -> str:
    table = Table(
        ["processes", *result.curves],
        title="Figure 1: avg per-process execution time (s), CPU-bound workload",
    )
    for i, n in enumerate(result.counts):
        table.add_row(n, *(result.curves[label][i] for label in result.curves))
    return table.render()


# -- unified entry point (RunRequest -> RunResult) ---------------------

def _artifacts(result: Fig1Result) -> dict:
    flat = [v for series in result.curves.values() for v in series]
    return {
        "profiles": len(result.curves),
        "max_count": max(result.counts),
        "exec_time_min": min(flat),
        "exec_time_max": max(flat),
    }


#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_fig1, print_report, artifacts=_artifacts)
