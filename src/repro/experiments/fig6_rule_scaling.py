"""Figure 6: round-trip time vs number of firewall rules.

Paper setup: ping between two nodes while the first node's firewall
holds a varying number of rules; "latency increases nearly linearly
with the number of rules, because the rules are evaluated linearly by
the firewall" — about 5 ms at 50 000 rules.

This module measures **both** cost models of the standard
:class:`~repro.net.ipfw.Ipfw` firewall: the linear scan (IPFW
reality, the figure's subject) and the hash-indexed counterfactual
(``Ipfw(name, indexed=True)`` — what the paper says IPFW cannot do).
The report shows the two paths side by side; the indexed curve is
flat, which is exactly why the rule count is P2PLab's scalability
limit.

Sweep support: ``python -m repro sweep fig6`` fans one
:func:`run_point` per rule count out over the runtime's worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.experiments.api import RunRequest, RunResult
from repro.net.addr import IPv4Network
from repro.net.ipfw import ACTION_COUNT
from repro.net.ping import ping
from repro.virt.deployment import Testbed

DEFAULT_RULE_COUNTS: Tuple[int, ...] = (0, 10000, 20000, 30000, 40000, 50000)

#: Filler rules match exact host addresses in a prefix no experiment
#: traffic uses, so a linear walk scans past every one of them (like
#: the paper's padding) while a hash index skips them entirely.
FILLER_PREFIX = IPv4Network("172.16.0.0/16")

Rtt = Tuple[float, float, float]  # (avg, min, max) seconds


@dataclass(frozen=True)
class Fig6Result:
    rule_counts: Tuple[int, ...]
    rtts: Tuple[Rtt, ...]  # linear-scan path
    #: Same probes against the hash-indexed cost model (flat curve);
    #: ``None`` when the comparison was disabled.
    indexed_rtts: Optional[Tuple[Rtt, ...]] = None

    def slope_us_per_rule(self) -> float:
        """Least-squares slope of avg RTT vs rule count, in us/rule."""
        n = len(self.rule_counts)
        xs = self.rule_counts
        ys = [r[0] for r in self.rtts]
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        return (num / den) * 1e6 if den else 0.0


def measure_rtt(
    rule_count: int,
    pings_per_point: int = 5,
    seed: int = 0,
    indexed: bool = False,
) -> Rtt:
    """One figure point: RTT through a firewall holding ``rule_count``
    filler rules, under the selected cost model."""
    testbed = Testbed(num_pnodes=2, seed=seed)
    sim = testbed.sim
    node1, node2 = testbed.pnodes
    node1.stack.fw.indexed = indexed
    # Distinct host addresses keep each rule hash-indexable; wrap
    # before the /16 runs out of hosts (never reached in practice).
    span = FILLER_PREFIX.num_addresses - 2
    for i in range(rule_count):
        node1.stack.fw.add(ACTION_COUNT, src=FILLER_PREFIX.host(1 + i % span))
    probe = ping(
        sim,
        node1.stack,
        node1.admin_address,
        node2.admin_address,
        count=pings_per_point,
        interval=0.2,
    )
    sim.run()
    res = probe.result
    return (res.avg, res.min, res.max)


def run_fig6(
    rule_counts: Sequence[int] = DEFAULT_RULE_COUNTS,
    pings_per_point: int = 5,
    seed: int = 0,
    compare_indexed: bool = True,
) -> Fig6Result:
    rtts: List[Rtt] = []
    indexed: List[Rtt] = []
    for count in rule_counts:
        rtts.append(measure_rtt(count, pings_per_point, seed, indexed=False))
        if compare_indexed:
            indexed.append(measure_rtt(count, pings_per_point, seed, indexed=True))
    return Fig6Result(
        rule_counts=tuple(rule_counts),
        rtts=tuple(rtts),
        indexed_rtts=tuple(indexed) if compare_indexed else None,
    )


def print_report(result: Fig6Result) -> str:
    headers = ["rules", "rtt avg (ms)", "min", "max"]
    if result.indexed_rtts is not None:
        headers.append("indexed avg (ms)")
    table = Table(
        headers,
        title="Figure 6: RTT vs number of firewall rules (linear scan)",
    )
    for i, (count, (avg, lo, hi)) in enumerate(zip(result.rule_counts, result.rtts)):
        row = [count, avg * 1e3, lo * 1e3, hi * 1e3]
        if result.indexed_rtts is not None:
            row.append(result.indexed_rtts[i][0] * 1e3)
        table.add_row(*row)
    lines = [table.render()]
    lines.append(f"slope: {result.slope_us_per_rule():.4f} us/rule (paper: ~0.1 us/rule)")
    if result.indexed_rtts is not None:
        flat = max(r[0] for r in result.indexed_rtts) - min(
            r[0] for r in result.indexed_rtts
        )
        lines.append(
            f"hash-indexed path: flat within {flat * 1e3:.3f} ms — the lookup "
            "IPFW cannot do (paper, 'Network Emulation')"
        )
    return "\n".join(lines)


# -- unified entry points (RunRequest -> RunResult) --------------------


def _artifacts(result: Fig6Result) -> dict:
    doc = {
        "slope_us_per_rule": result.slope_us_per_rule(),
        "max_rtt_avg": max(r[0] for r in result.rtts),
    }
    if result.indexed_rtts is not None:
        doc["max_rtt_avg_indexed"] = max(r[0] for r in result.indexed_rtts)
    return doc


def run(request: RunRequest) -> RunResult:
    """Whole-figure entry point under the unified protocol."""
    kwargs = request.kwargs
    kwargs.setdefault("seed", request.seed)
    result = run_fig6(**kwargs)
    return RunResult.ok(
        request, value=result, artifacts=_artifacts(result), report=print_report(result)
    )


def run_point(request: RunRequest) -> RunResult:
    """One sweep point: a single rule count, both firewall paths."""
    params = request.kwargs
    rule_count = int(params.get("rule_count", 0))
    pings = int(params.get("pings_per_point", 5))
    avg, lo, hi = measure_rtt(rule_count, pings, request.seed, indexed=False)
    iavg, ilo, ihi = measure_rtt(rule_count, pings, request.seed, indexed=True)
    return RunResult.ok(
        request,
        artifacts={
            "rule_count": rule_count,
            "rtt_avg_ms": avg * 1e3,
            "rtt_min_ms": lo * 1e3,
            "rtt_max_ms": hi * 1e3,
            "rtt_avg_indexed_ms": iavg * 1e3,
        },
        report=(
            f"rules={rule_count}: linear {avg * 1e3:.3f} ms, "
            f"indexed {iavg * 1e3:.3f} ms"
        ),
    )
