"""Figure 6: round-trip time vs number of firewall rules.

Paper setup: ping between two nodes while the first node's firewall
holds a varying number of rules; "latency increases nearly linearly
with the number of rules, because the rules are evaluated linearly by
the firewall" — about 5 ms at 50 000 rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.tables import Table
from repro.net.addr import IPv4Network
from repro.net.ipfw import ACTION_COUNT
from repro.net.ping import ping
from repro.virt.deployment import Testbed

DEFAULT_RULE_COUNTS: Tuple[int, ...] = (0, 10000, 20000, 30000, 40000, 50000)

#: Filler rules match a prefix no experiment traffic uses, so they are
#: scanned but never terminate evaluation — like the paper's padding.
FILLER_PREFIX = IPv4Network("172.16.0.0/16")


@dataclass(frozen=True)
class Fig6Result:
    rule_counts: Tuple[int, ...]
    rtts: Tuple[Tuple[float, float, float], ...]  # (avg, min, max) seconds

    def slope_us_per_rule(self) -> float:
        """Least-squares slope of avg RTT vs rule count, in us/rule."""
        n = len(self.rule_counts)
        xs = self.rule_counts
        ys = [r[0] for r in self.rtts]
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        return (num / den) * 1e6 if den else 0.0


def run_fig6(
    rule_counts: Sequence[int] = DEFAULT_RULE_COUNTS,
    pings_per_point: int = 5,
    seed: int = 0,
) -> Fig6Result:
    rtts: List[Tuple[float, float, float]] = []
    for count in rule_counts:
        testbed = Testbed(num_pnodes=2, seed=seed)
        sim = testbed.sim
        node1, node2 = testbed.pnodes
        for _ in range(count):
            node1.stack.fw.add(ACTION_COUNT, src=FILLER_PREFIX)
        probe = ping(
            sim,
            node1.stack,
            node1.admin_address,
            node2.admin_address,
            count=pings_per_point,
            interval=0.2,
        )
        sim.run()
        res = probe.result
        rtts.append((res.avg, res.min, res.max))
    return Fig6Result(rule_counts=tuple(rule_counts), rtts=tuple(rtts))


def print_report(result: Fig6Result) -> str:
    table = Table(
        ["rules", "rtt avg (ms)", "min", "max"],
        title="Figure 6: RTT vs number of firewall rules (linear scan)",
    )
    for count, (avg, lo, hi) in zip(result.rule_counts, result.rtts):
        table.add_row(count, avg * 1e3, lo * 1e3, hi * 1e3)
    lines = [table.render()]
    lines.append(f"slope: {result.slope_us_per_rule():.4f} us/rule (paper: ~0.1 us/rule)")
    return "\n".join(lines)
