"""Connect-cycle overhead of the libc interception (paper, text table).

Paper measurement: "the duration of a connection/disconnection cycle
was 10.22 us without the modification, to compare to 10.79 us with the
modification" — one extra bind() system call per connect(). The test
program "was connecting to a local server and disconnecting as soon as
the connection was established".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.errors import SocketError
from repro.net.addr import IPv4Address
from repro.net.socket_api import ANY
from repro.virt.deployment import Testbed
from repro.virt.libc import Libc


@dataclass(frozen=True)
class ConnectOverheadResult:
    cycles: int
    plain_us: float
    intercepted_us: float

    @property
    def overhead_us(self) -> float:
        return self.intercepted_us - self.plain_us


def run_connect_overhead(cycles: int = 1000, seed: int = 0) -> ConnectOverheadResult:
    """Measure the loopback connect/disconnect cycle both ways."""
    testbed = Testbed(num_pnodes=1, seed=seed)
    vnode = testbed.deploy([IPv4Address("10.0.0.1")])[0]
    sim = testbed.sim

    # One local server used by both measurement phases.
    def server(vn):
        libc = vn.libc
        sock = yield from libc.socket()
        yield from libc.bind(sock, (ANY, 7000))
        yield from libc.listen(sock, backlog=1024)
        while True:
            conn = yield from libc.accept(sock)
            if conn is None:
                return
            conn.close()

    vnode.spawn(server)

    durations = {}

    def client_phase(libc: Libc, tag: str):
        def app(vn):
            total = 0.0
            for _ in range(cycles):
                start = vn.sim.now
                sock = yield from libc.socket()
                try:
                    yield from libc.connect(sock, (str(vnode.address), 7000))
                except SocketError:
                    sock.close()
                    continue
                yield from libc.close(sock)
                total += vn.sim.now - start
            durations[tag] = total / cycles

        return app

    plain = Libc(vnode.pnode.stack, bindip=vnode.address, intercepting=False)
    modified = Libc(vnode.pnode.stack, bindip=vnode.address, intercepting=True)
    p1 = vnode.spawn(client_phase(plain, "plain"), start_delay=0.01)

    def phase2(vn):
        yield p1
        yield vn.spawn(client_phase(modified, "intercepted"))

    vnode.spawn(phase2)
    sim.run()
    return ConnectOverheadResult(
        cycles=cycles,
        plain_us=durations["plain"] * 1e6,
        intercepted_us=durations["intercepted"] * 1e6,
    )


def print_report(result: ConnectOverheadResult) -> str:
    table = Table(
        ["libc", "connect cycle (us)", "paper (us)"],
        title=f"libc interception overhead ({result.cycles} cycles)",
    )
    table.add_row("unmodified", result.plain_us, 10.22)
    table.add_row("modified (BINDIP)", result.intercepted_us, 10.79)
    table.add_row("overhead", result.overhead_us, 0.57)
    return table.render()


# -- unified entry point (RunRequest -> RunResult) ---------------------

#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_connect_overhead, print_report)
