"""Figure 8: evolution of the download of 160 clients.

Paper setup: 16 MB file, 4 seeders, every node on a 2 Mbps / 128 kbps /
30 ms DSL profile, clients started 10 s apart; finished clients stay
and seed. Expected shape: every per-client progress curve shows the
three phases (seeders-only start, peer reciprocation, seeder-assisted
finish), and all clients complete by roughly t = 2000 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.core.collector import progress_series
from repro.core.report import SwarmSummary, download_phases, summarize_swarm


@dataclass(frozen=True)
class Fig8Result:
    summary: SwarmSummary
    phases_first_client: Dict[str, float]
    progress: Dict[str, List[Tuple[float, float]]]
    last_completion: float


def run_fig8(
    leechers: int = 160,
    seeders: int = 4,
    file_size: int = 16 * 1024 * 1024,
    stagger: float = 10.0,
    num_pnodes: int = 16,
    seed: int = 0,
    max_time: float = 20000.0,
    fluid: bool = False,
) -> Fig8Result:
    config = SwarmConfig(
        leechers=leechers,
        seeders=seeders,
        file_size=file_size,
        stagger=stagger,
        num_pnodes=num_pnodes,
        seed=seed,
        fluid=fluid,
    )
    swarm = Swarm(config)
    last = swarm.run(max_time=max_time)
    trace = swarm.sim.trace
    first_client = swarm.leechers[0].vnode.name
    return Fig8Result(
        summary=summarize_swarm(trace),
        phases_first_client=download_phases(trace, first_client),
        progress=progress_series(trace),
        last_completion=last,
    )


def print_report(result: Fig8Result) -> str:
    table = Table(["metric", "value"], title="Figure 8: 160-client download evolution")
    for name, value in result.summary.as_rows():
        table.add_row(name, value)
    lines = [table.render()]
    ph = result.phases_first_client
    if ph:
        lines.append(
            "first client's phases: "
            f"first piece at {ph['first_piece']:.0f}s, "
            f"to 50% in {ph['to_half']:.0f}s, "
            f"50%->100% in {ph['to_done']:.0f}s"
        )
    return "\n".join(lines)


# -- unified entry point (RunRequest -> RunResult) ---------------------

def _artifacts(result: Fig8Result) -> dict:
    return {
        "last_completion": result.last_completion,
        "clients_plotted": len(result.progress),
        **{f"phase_{k}": v for k, v in sorted(result.phases_first_client.items())},
    }


#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_fig8, print_report, artifacts=_artifacts)
