"""The unified experiment protocol: ``RunRequest`` → ``RunResult``.

Historically every experiment module exposed its own ``run_figN(...)``
signature and the registry stored bare callables, which made it
impossible to drive experiments generically (sweeps, parallel
execution, checkpointing). This module defines the one contract every
entry point now speaks:

* :class:`RunRequest` — *what* to run: experiment id, parameter dict,
  seed and replication index. Frozen, hashable by its :attr:`key`,
  and JSON-round-trippable, so a request can cross process boundaries
  and name a checkpoint line.
* :class:`RunResult` — *what happened*: the request echoed back, a
  JSON-serializable ``artifacts`` dict of extracted metrics, the
  rendered report, status/error, and (in-process only) the rich
  result object.

Experiment modules keep their legacy ``run_figN(**kwargs)`` functions
as thin shims; the canonical entry point is now a module-level
``run(request: RunRequest) -> RunResult``. :func:`make_execute` builds
such an entry point from a legacy ``(run, report)`` pair for modules
that have no bespoke artifact extraction (the ablations).

The :mod:`repro.runtime` execution engine consumes exactly this
protocol — see DESIGN.md, "The RunRequest/RunResult contract".
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: Result statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


def _freeze_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, tuple-ized) form of a parameter mapping."""
    frozen = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, list):
            value = tuple(value)
        frozen.append((key, value))
    return tuple(frozen)


@dataclass(frozen=True)
class RunRequest:
    """One point of work: run ``experiment_id`` with ``params`` at ``seed``.

    ``replication`` distinguishes repeated runs of the same parameter
    point under different derived seeds (see
    :meth:`repro.runtime.plan.ExecutionPlan.build`).
    """

    experiment_id: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    replication: int = 0
    #: Worker-process cap for experiments that support the partitioned
    #: kernel (:mod:`repro.sim.partition`); ``None`` = not requested.
    #: A pure execution knob — results are byte-identical for every
    #: value — so, like the sweep executor's ``parallel``, it is NOT
    #: part of :attr:`key`: a checkpoint written at ``--partitions 2``
    #: resumes cleanly under ``--partitions 4`` (or none).
    partitions: Optional[int] = None
    #: Fluid-flow transfer model (:mod:`repro.net.fluid`); ``None`` =
    #: not requested (the experiment's own default applies). Unlike
    #: ``partitions`` this is a *model* knob — fluid runs produce
    #: different (approximated) results — so a set value IS part of
    #: :attr:`key`; unset requests keep their legacy keys.
    fluid: Optional[bool] = None
    #: Stream live telemetry (:mod:`repro.obs.telemetry`) while this
    #: point runs; ``None`` = off. Wall-clock-only observability — it
    #: can never change a result — so it is excluded from BOTH
    #: :attr:`key` and :meth:`as_dict`: no checkpoint line, sweep
    #: aggregate or serialized surface ever records whether a run was
    #: watched (that is what keeps telemetry-on output byte-identical
    #: to telemetry-off). The flag still crosses process boundaries via
    #: pickling, which is how a sweep worker learns to emit.
    telemetry: Optional[bool] = None

    @classmethod
    def make(
        cls,
        experiment_id: str,
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        replication: int = 0,
        partitions: Optional[int] = None,
        fluid: Optional[bool] = None,
        telemetry: Optional[bool] = None,
    ) -> "RunRequest":
        return cls(
            experiment_id=experiment_id,
            params=_freeze_params(params or {}),
            seed=seed,
            replication=replication,
            partitions=partitions,
            fluid=fluid,
            telemetry=telemetry,
        )

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The parameter dict to splat into a legacy run function."""
        return dict(self.params)

    @property
    def key(self) -> str:
        """Stable identity of this point — names its checkpoint line.

        Deterministic across interpreter runs and ``PYTHONHASHSEED``
        values (plain JSON of canonicalized fields, no ``hash()``).
        """
        payload = [self.experiment_id, list(list(p) for p in self.params),
                   self.seed, self.replication]
        if self.fluid is not None:
            payload.append({"fluid": self.fluid})
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
        )

    def as_dict(self) -> Dict[str, Any]:
        doc = {
            "experiment_id": self.experiment_id,
            "params": self.kwargs,
            "seed": self.seed,
            "replication": self.replication,
        }
        if self.partitions is not None:
            doc["partitions"] = self.partitions
        if self.fluid is not None:
            doc["fluid"] = self.fluid
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunRequest":
        partitions = doc.get("partitions")
        fluid = doc.get("fluid")
        telemetry = doc.get("telemetry")  # never written by as_dict
        return cls.make(
            doc["experiment_id"],
            doc.get("params") or {},
            seed=int(doc.get("seed", 0)),
            replication=int(doc.get("replication", 0)),
            partitions=None if partitions is None else int(partitions),
            fluid=None if fluid is None else bool(fluid),
            telemetry=None if telemetry is None else bool(telemetry),
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing one :class:`RunRequest`.

    ``artifacts`` is the JSON-serializable face of the result (scalar
    metrics a sweep aggregates); ``value`` is the rich in-process
    result object (dropped when a result crosses a process boundary or
    is checkpointed).
    """

    request: RunRequest
    status: str = STATUS_OK
    artifacts: Dict[str, Any] = field(default_factory=dict)
    report: str = ""
    error: Optional[str] = None
    attempts: int = 1
    value: Any = None

    @classmethod
    def ok(
        cls,
        request: RunRequest,
        value: Any = None,
        artifacts: Optional[Dict[str, Any]] = None,
        report: str = "",
    ) -> "RunResult":
        return cls(
            request=request,
            status=STATUS_OK,
            artifacts=dict(artifacts or {}),
            report=report,
            value=value,
        )

    @classmethod
    def failed(
        cls, request: RunRequest, error: str, attempts: int = 1
    ) -> "RunResult":
        return cls(
            request=request,
            status=STATUS_FAILED,
            error=error,
            attempts=attempts,
        )

    @property
    def is_ok(self) -> bool:
        return self.status == STATUS_OK

    def with_attempts(self, attempts: int) -> "RunResult":
        return dataclasses.replace(self, attempts=attempts)

    def as_dict(self) -> Dict[str, Any]:
        """Serializable form (drops :attr:`value`) — the checkpoint line."""
        return {
            "request": self.request.as_dict(),
            "status": self.status,
            "artifacts": self.artifacts,
            "report": self.report,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunResult":
        return cls(
            request=RunRequest.from_dict(doc["request"]),
            status=doc.get("status", STATUS_OK),
            artifacts=dict(doc.get("artifacts") or {}),
            report=doc.get("report", ""),
            error=doc.get("error"),
            attempts=int(doc.get("attempts", 1)),
        )


#: The unified entry-point signature.
Execute = Callable[[RunRequest], RunResult]


def default_artifacts(value: Any) -> Dict[str, Any]:
    """Best-effort artifact extraction for legacy result objects:
    every scalar (int/float/str/bool) dataclass field."""
    artifacts: Dict[str, Any] = {}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for f in dataclasses.fields(value):
            v = getattr(value, f.name)
            if isinstance(v, (int, float, str, bool)):
                artifacts[f.name] = v
    return artifacts


def make_execute(
    run: Callable[..., Any],
    report: Callable[[Any], str],
    artifacts: Optional[Callable[[Any], Dict[str, Any]]] = None,
) -> Execute:
    """Adapt a legacy ``(run_figN, print_report)`` pair to the protocol.

    The request's ``seed`` is injected as the ``seed=`` kwarg when the
    run function accepts one (deterministic CPU-model experiments take
    no seed); explicit ``params['seed']`` overrides win for backwards
    compatibility. ``request.partitions`` is forwarded the same way to
    run functions that accept a ``partitions=`` kwarg — experiments
    that cannot shard simply never see the knob.
    """
    extract = artifacts if artifacts is not None else default_artifacts
    try:
        sig = inspect.signature(run)
        var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in sig.parameters.values()
        )
        takes_seed = "seed" in sig.parameters or var_kw
        takes_partitions = "partitions" in sig.parameters
        takes_fluid = "fluid" in sig.parameters
    except (TypeError, ValueError):  # builtins / C callables
        takes_seed = True
        takes_partitions = False
        takes_fluid = False

    def execute(request: RunRequest) -> RunResult:
        kwargs = request.kwargs
        if takes_seed:
            kwargs.setdefault("seed", request.seed)
        if takes_partitions and request.partitions is not None:
            kwargs.setdefault("partitions", request.partitions)
        if takes_fluid and request.fluid is not None:
            kwargs.setdefault("fluid", request.fluid)
        value = run(**kwargs)
        return RunResult.ok(
            request,
            value=value,
            artifacts=extract(value),
            report=report(value),
        )

    return execute
