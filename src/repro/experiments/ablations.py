"""Ablations of design choices the paper calls out.

* :func:`run_rule_lookup_ablation` — linear IPFW scan vs the hash-
  indexed rule table IPFW cannot do ("it is not possible to evaluate
  the rules in a hierarchical way, or with a hash table");
* :func:`run_uplink_saturation_ablation` — the folding experiment with
  an undersized physical network: the paper found "the first limiting
  factor was the network speed";
* :func:`run_choker_ablation` — BitTorrent with reciprocation disabled,
  quantifying what the tit-for-tat machinery contributes;
* :func:`run_stagger_ablation` — client start interval (10 s vs 0)
  effect on the Figure 8 swarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.tables import Table
from repro.bittorrent.choker import Choker
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.net.addr import IPv4Address, IPv4Network
from repro.net.ipfw import ACTION_COUNT, DIR_OUT, Firewall
from repro.net.packet import Packet
from repro.units import MB, gbps, mbps


# ----------------------------------------------------------------------
# Rule lookup: linear vs hashed.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RuleLookupResult:
    vnode_counts: Tuple[int, ...]
    linear_scanned: Tuple[int, ...]
    indexed_scanned: Tuple[int, ...]


def _populate(fw: Firewall, vnodes: int) -> None:
    """Two per-vnode rules each, as the topology compiler installs."""
    base = IPv4Address("10.0.0.1")
    for i in range(vnodes):
        addr = base + i
        fw.add(ACTION_COUNT, src=addr, direction=DIR_OUT)
        fw.add(ACTION_COUNT, dst=addr, direction="in")


def run_rule_lookup_ablation(
    vnode_counts: Sequence[int] = (10, 100, 1000, 5000),
) -> RuleLookupResult:
    linear_scans = []
    indexed_scans = []
    probe = Packet(
        src=IPv4Address("10.0.0.1"), dst=IPv4Address("10.9.9.9"), proto="tcp", size=100
    )
    for count in vnode_counts:
        linear = Firewall()
        _populate(linear, count)
        linear_scans.append(linear.evaluate(probe, DIR_OUT).scanned)
        indexed = Firewall(indexed=True)
        _populate(indexed, count)
        indexed_scans.append(indexed.evaluate(probe, DIR_OUT).scanned)
    return RuleLookupResult(
        vnode_counts=tuple(vnode_counts),
        linear_scanned=tuple(linear_scans),
        indexed_scanned=tuple(indexed_scans),
    )


def print_rule_lookup_report(result: RuleLookupResult) -> str:
    table = Table(
        ["hosted vnodes", "linear scan (rules)", "hash-indexed (rules)"],
        title="Ablation: IPFW linear evaluation vs a hash-indexed table",
    )
    for i, count in enumerate(result.vnode_counts):
        table.add_row(count, result.linear_scanned[i], result.indexed_scanned[i])
    return table.render()


# ----------------------------------------------------------------------
# Uplink saturation: where folding overhead comes from.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class UplinkSaturationResult:
    port_bandwidths: Tuple[float, ...]
    last_completions: Dict[float, float]
    reference: float  # unconstrained completion time


def run_uplink_saturation_ablation(
    port_bandwidths: Sequence[float] = (gbps(1), mbps(40), mbps(10)),
    leechers: int = 24,
    seeders: int = 2,
    num_pnodes: int = 2,
    file_size: int = 4 * MB,
    stagger: float = 2.0,
    seed: int = 0,
) -> UplinkSaturationResult:
    """The folded swarm with progressively undersized physical ports.

    Every client's DSL downlink is 2 Mbps, so ``leechers/num_pnodes``
    co-hosted clients need up to that multiple per port; once the port
    is smaller, the emulation is *wrong* and completion times inflate —
    the overhead mechanism the paper monitored for.
    """
    results: Dict[float, float] = {}
    for bw in port_bandwidths:
        from repro.bittorrent.swarm import SwarmConfig

        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=num_pnodes,
            seed=seed,
        )
        swarm = Swarm(config)
        switch = swarm.testbed.switch
        for port in switch._ports.values():
            port.tx.reconfigure(bandwidth=bw)
            port.rx.reconfigure(bandwidth=bw)
        results[bw] = swarm.run(max_time=50000.0)
    return UplinkSaturationResult(
        port_bandwidths=tuple(port_bandwidths),
        last_completions=results,
        reference=results[port_bandwidths[0]],
    )


def print_uplink_report(result: UplinkSaturationResult) -> str:
    table = Table(
        ["port bandwidth (Mbps)", "last completion (s)", "slowdown"],
        title="Ablation: folding overhead appears when the physical port saturates",
    )
    for bw in result.port_bandwidths:
        t = result.last_completions[bw]
        table.add_row(bw * 8 / 1e6, t, t / result.reference)
    return table.render()


# ----------------------------------------------------------------------
# Choker: tit-for-tat on/off.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ChokerAblationResult:
    with_tft_last: float
    without_tft_last: float
    with_tft_median: float
    without_tft_median: float
    #: Mean completion of free-riders / contributors under each choker.
    #: Tit-for-tat should punish free-riders; rate-blind should not.
    tft_freerider_penalty: float
    blind_freerider_penalty: float


def run_choker_ablation(
    leechers: int = 20,
    seeders: int = 2,
    file_size: int = 4 * MB,
    stagger: float = 2.0,
    num_pnodes: int = 4,
    freeriders: int = 5,
    freerider_up_bw: float = 2000.0,  # ~16 kbps: barely contributes
    seed: int = 0,
) -> ChokerAblationResult:
    """Tit-for-tat vs rate-blind choking, in a heterogeneous swarm.

    In a homogeneous swarm reciprocation barely moves the aggregate
    numbers (everyone uploads the same); its bite shows against
    *free-riders* — "incentives build robustness in BitTorrent". The
    last ``freeriders`` leechers get a crippled uplink; the penalty
    ratio compares their mean download time to the contributors'.
    """

    def build(disable_tft: bool) -> Swarm:
        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=num_pnodes,
            seed=seed,
        )
        swarm = Swarm(config)
        for client in swarm.leechers[leechers - freeriders :]:
            swarm.set_access_link(client, up_bw=freerider_up_bw)
        if disable_tft:
            for client in swarm.clients:
                client.choker = _RateBlindChoker(
                    client,
                    interval=client.config.rechoke_interval,
                    upload_slots=client.config.upload_slots,
                    optimistic_rounds=client.config.optimistic_rounds,
                )
        return swarm

    def penalty(swarm: Swarm) -> float:
        contributors = swarm.leechers[: leechers - freeriders]
        riders = swarm.leechers[leechers - freeriders :]

        def mean_duration(clients) -> float:
            durations = [
                c.completed_at - (c.started_at or 0.0)
                for c in clients
                if c.completed_at is not None
            ]
            return sum(durations) / len(durations)

        return mean_duration(riders) / mean_duration(contributors)

    normal = build(False)
    normal_last = normal.run(max_time=50000.0)
    normal_times = normal.completion_times()
    tft_penalty = penalty(normal)

    blind = build(True)
    blind_last = blind.run(max_time=50000.0)
    blind_times = blind.completion_times()
    blind_penalty = penalty(blind)

    return ChokerAblationResult(
        with_tft_last=normal_last,
        without_tft_last=blind_last,
        with_tft_median=normal_times[len(normal_times) // 2],
        without_tft_median=blind_times[len(blind_times) // 2],
        tft_freerider_penalty=tft_penalty,
        blind_freerider_penalty=blind_penalty,
    )


class _RateBlindChoker(Choker):
    """Choker variant that ignores observed rates: every rechoke round
    hands the unchoke slots to a random set of interested peers."""

    def _rate_key(self, peer, now):
        return self._rng.random()


def print_choker_report(result: ChokerAblationResult) -> str:
    table = Table(
        [
            "choker",
            "median completion (s)",
            "last completion (s)",
            "free-rider penalty",
        ],
        title="Ablation: tit-for-tat reciprocation (swarm with crippled-uplink free-riders)",
    )
    table.add_row(
        "tit-for-tat (mainline)",
        result.with_tft_median,
        result.with_tft_last,
        result.tft_freerider_penalty,
    )
    table.add_row(
        "rate-blind",
        result.without_tft_median,
        result.without_tft_last,
        result.blind_freerider_penalty,
    )
    return table.render()


# ----------------------------------------------------------------------
# Explicit TCP ACKs vs the window-credit shortcut.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AckAblationResult:
    shortcut_last: float
    explicit_last: float
    shortcut_median: float
    explicit_median: float

    @property
    def relative_difference(self) -> float:
        return abs(self.explicit_last - self.shortcut_last) / self.shortcut_last


def run_ack_ablation(
    leechers: int = 16,
    seeders: int = 2,
    file_size: int = 2 * MB,
    stagger: float = 2.0,
    num_pnodes: int = 4,
    seed: int = 0,
) -> AckAblationResult:
    """Quantify the emulation's no-ACK shortcut (DESIGN.md deviation 3).

    The default transport credits the sender's window when a segment is
    delivered; real TCP waits for a 40-byte ACK that competes for the
    receiver's *upload* link — the scarce resource on the paper's
    asymmetric DSL profiles. Running the same swarm both ways bounds
    the error the shortcut introduces.
    """
    results = {}
    for explicit in (False, True):
        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=num_pnodes,
            seed=seed,
            tcp_explicit_acks=explicit,
        )
        swarm = Swarm(config)
        last = swarm.run(max_time=50000.0)
        times = swarm.completion_times()
        results[explicit] = (last, times[len(times) // 2])
    return AckAblationResult(
        shortcut_last=results[False][0],
        explicit_last=results[True][0],
        shortcut_median=results[False][1],
        explicit_median=results[True][1],
    )


def print_ack_report(result: AckAblationResult) -> str:
    table = Table(
        ["transport", "median completion (s)", "last completion (s)"],
        title="Ablation: explicit TCP ACK traffic vs the window-credit shortcut",
    )
    table.add_row("window credit (default)", result.shortcut_median, result.shortcut_last)
    table.add_row("explicit 40B ACKs", result.explicit_median, result.explicit_last)
    lines = [table.render()]
    lines.append(
        f"relative difference in drain time: {100 * result.relative_difference:.1f}%"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# ULE's FreeBSD 5 -> 6 fairness regression fix (the paper's ref [12]).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class UleGenerationResult:
    freebsd5_spread: float
    freebsd6_spread: float
    freebsd5_range: Tuple[float, float]
    freebsd6_range: Tuple[float, float]


def run_ule_generation_ablation(instances: int = 100, seed: int = 0) -> UleGenerationResult:
    """FreeBSD 5's ULE ("some processes were excessively privileged ...
    and allowed to run alone on a CPU", the paper's reference [12])
    versus the FreeBSD 6 behaviour Figure 3 measures."""
    from repro.hostos.machine import Machine
    from repro.hostos.scheduler.ule import (
        FREEBSD5_BIAS_SIGMA,
        FREEBSD6_BIAS_SIGMA,
        UleScheduler,
    )
    from repro.hostos.workloads import fairness_task
    from repro.sim import Simulator
    from repro.analysis.cdf import spread

    outcomes = {}
    for label, sigma in (("fb5", FREEBSD5_BIAS_SIGMA), ("fb6", FREEBSD6_BIAS_SIGMA)):
        sim = Simulator(seed=seed)
        machine = Machine(sim, UleScheduler(bias_sigma=sigma), ncpus=2)
        for i in range(instances):
            machine.submit(fairness_task(i))
        sim.run()
        finishes = sorted(r.finish_time for r in machine.results)
        outcomes[label] = (spread(finishes), (finishes[0], finishes[-1]))
    return UleGenerationResult(
        freebsd5_spread=outcomes["fb5"][0],
        freebsd6_spread=outcomes["fb6"][0],
        freebsd5_range=outcomes["fb5"][1],
        freebsd6_range=outcomes["fb6"][1],
    )


def print_ule_generation_report(result: UleGenerationResult) -> str:
    table = Table(
        ["ULE generation", "min finish (s)", "max finish (s)", "spread"],
        title="Ablation: ULE fairness, FreeBSD 5 vs FreeBSD 6 (paper ref [12])",
    )
    table.add_row(
        "FreeBSD 5 (broken)", result.freebsd5_range[0], result.freebsd5_range[1],
        result.freebsd5_spread,
    )
    table.add_row(
        "FreeBSD 6 (Figure 3)", result.freebsd6_range[0], result.freebsd6_range[1],
        result.freebsd6_spread,
    )
    return table.render()


# ----------------------------------------------------------------------
# Departure policy: the paper's "they stay online and become seeders".
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DepartureResult:
    stay_last: float
    leave_last: float
    stay_median: float
    leave_median: float

    @property
    def tail_penalty(self) -> float:
        """How much the last finisher suffers when peers leave."""
        return self.leave_last / self.stay_last


def run_departure_ablation(
    leechers: int = 16,
    seeders: int = 1,
    file_size: int = 4 * MB,
    stagger: float = 5.0,
    num_pnodes: int = 4,
    seed: int = 2,
) -> DepartureResult:
    """The paper's experiments keep finished clients seeding; this
    ablation removes them instead (selfish departure). With staggered
    starts, late arrivals then face a swarm whose capacity left with
    the early finishers — the tail of Figure 8 stretches."""
    from repro.bittorrent.client import ClientConfig

    outcomes = {}
    for stay in (True, False):
        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=num_pnodes,
            seed=seed,
            client=ClientConfig(seed_after_complete=stay),
        )
        swarm = Swarm(config)
        last = swarm.run(max_time=100000.0)
        times = swarm.completion_times()
        outcomes[stay] = (last, times[len(times) // 2])
    return DepartureResult(
        stay_last=outcomes[True][0],
        leave_last=outcomes[False][0],
        stay_median=outcomes[True][1],
        leave_median=outcomes[False][1],
    )


def print_departure_report(result: DepartureResult) -> str:
    table = Table(
        ["after completion", "median completion (s)", "last completion (s)"],
        title='Ablation: "stay online and become seeders" vs selfish departure',
    )
    table.add_row("stay and seed (paper)", result.stay_median, result.stay_last)
    table.add_row("disconnect", result.leave_median, result.leave_last)
    lines = [table.render()]
    lines.append(f"tail penalty of departure: {result.tail_penalty:.2f}x")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Super-seeding (BitTorrent 4.x "-s" mode).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SuperSeedResult:
    normal_seeder_uploaded: int
    superseed_seeder_uploaded: int
    normal_last: float
    superseed_last: float
    pieces_redistributed: int

    @property
    def upload_saving(self) -> float:
        """Fraction of seeder upload saved by super-seeding."""
        if self.normal_seeder_uploaded == 0:
            return 0.0
        return 1.0 - self.superseed_seeder_uploaded / self.normal_seeder_uploaded


def run_superseed_ablation(
    leechers: int = 10,
    file_size: int = 2 * MB,
    stagger: float = 1.0,
    num_pnodes: int = 2,
    seed: int = 4,
) -> SuperSeedResult:
    """One initial seeder, normal vs super-seeding: super-seeding's
    goal is to minimize the bytes the initial seeder must upload before
    the swarm is self-sustaining."""
    from repro.bittorrent.client import ClientConfig

    outcomes = {}
    for super_seed in (False, True):
        config = SwarmConfig(
            leechers=leechers,
            seeders=1,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=num_pnodes,
            seed=seed,
            client=ClientConfig(super_seed=super_seed),
        )
        swarm = Swarm(config)
        last = swarm.run(max_time=50000.0)
        seeder = swarm.seeders[0]
        outcomes[super_seed] = (seeder.bytes_uploaded, last, seeder.ss_pieces_redistributed)
    return SuperSeedResult(
        normal_seeder_uploaded=outcomes[False][0],
        superseed_seeder_uploaded=outcomes[True][0],
        normal_last=outcomes[False][1],
        superseed_last=outcomes[True][1],
        pieces_redistributed=outcomes[True][2],
    )


def print_superseed_report(result: SuperSeedResult) -> str:
    table = Table(
        ["seeding mode", "seeder uploaded (MiB)", "last completion (s)"],
        title="Ablation: super-seeding vs normal initial seeding",
    )
    table.add_row("normal", result.normal_seeder_uploaded / MB, result.normal_last)
    table.add_row(
        "super-seed", result.superseed_seeder_uploaded / MB, result.superseed_last
    )
    lines = [table.render()]
    lines.append(
        f"seeder upload saved: {100 * result.upload_saving:.0f}%; "
        f"{result.pieces_redistributed} grants verified redistributed"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Stagger interval.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StaggerResult:
    staggers: Tuple[float, ...]
    last_completions: Dict[float, float]
    median_durations: Dict[float, float]


def run_stagger_ablation(
    staggers: Sequence[float] = (0.0, 2.0, 10.0),
    leechers: int = 20,
    seeders: int = 2,
    file_size: int = 4 * MB,
    num_pnodes: int = 4,
    seed: int = 0,
) -> StaggerResult:
    last: Dict[float, float] = {}
    median: Dict[float, float] = {}
    for stagger in staggers:
        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=num_pnodes,
            seed=seed,
        )
        swarm = Swarm(config)
        last[stagger] = swarm.run(max_time=50000.0)
        durations = sorted(
            c.completed_at - (c.started_at or 0.0) for c in swarm.leechers
        )
        median[stagger] = durations[len(durations) // 2]
    return StaggerResult(
        staggers=tuple(staggers), last_completions=last, median_durations=median
    )


def print_stagger_report(result: StaggerResult) -> str:
    table = Table(
        ["stagger (s)", "median download (s)", "last completion (s)"],
        title="Ablation: client start interval",
    )
    for stagger in result.staggers:
        table.add_row(
            stagger, result.median_durations[stagger], result.last_completions[stagger]
        )
    return table.render()
