"""Figure 3: fairness CDFs of 100 simultaneous CPU-bound instances.

Paper setup: 100 instances of a ~5 s program started at the same time;
the CDF of per-instance completion times is plotted. Expected shape:
4BSD and Linux 2.6 nearly vertical around 250 s (100 x 5 s on 2 CPUs);
ULE visibly spread (the x-axis of the figure runs 210-290 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.cdf import empirical_cdf, spread
from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.experiments.osprofiles import PROFILES
from repro.hostos.machine import Machine
from repro.hostos.workloads import fairness_task
from repro.sim import Simulator


@dataclass(frozen=True)
class Fig3Result:
    instances: int
    finish_times: Dict[str, List[float]]  # label -> sorted completion times

    def cdf(self, label: str) -> List[Tuple[float, float]]:
        return empirical_cdf(self.finish_times[label])

    def spread(self, label: str) -> float:
        return spread(self.finish_times[label])


def run_fig3(
    instances: int = 100,
    profiles: Sequence[str] = tuple(PROFILES),
    seed: int = 0,
) -> Fig3Result:
    finish: Dict[str, List[float]] = {}
    for label in profiles:
        profile = PROFILES[label]
        sim = Simulator(seed=seed)
        machine = Machine(sim, profile.make_scheduler(), ncpus=2)
        # "An high priority process starts the instances with a lower
        # priority" — i.e. all at the same instant.
        for i in range(instances):
            machine.submit(fairness_task(i))
        sim.run()
        finish[label] = sorted(r.finish_time for r in machine.results)
    return Fig3Result(instances=instances, finish_times=finish)


def print_report(result: Fig3Result) -> str:
    table = Table(
        ["scheduler", "min (s)", "p25", "median", "p75", "max", "spread"],
        title=f"Figure 3: completion-time distribution, {result.instances} instances",
    )
    for label, times in result.finish_times.items():
        n = len(times)
        table.add_row(
            label,
            times[0],
            times[n // 4],
            times[n // 2],
            times[3 * n // 4],
            times[-1],
            result.spread(label),
        )
    return table.render()


# -- unified entry point (RunRequest -> RunResult) ---------------------

def _artifacts(result: Fig3Result) -> dict:
    return {
        "instances": result.instances,
        **{f"spread_{label}": result.spread(label) for label in sorted(result.finish_times)},
    }


#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_fig3, print_report, artifacts=_artifacts)
