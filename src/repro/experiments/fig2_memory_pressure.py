"""Figure 2: memory-intensive processes and the swap knee.

Paper setup: 5..50 instances of a CPU- and memory-intensive program
(large-matrix operations) on 2 GB machines. Expected shape: FreeBSD
(both schedulers) flat until the aggregate working set exceeds RAM,
then rising steeply ("the execution time increases a lot as soon as
virtual memory (swap) is used"); Linux 2.6 staying flat throughout.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.experiments.osprofiles import PROFILES
from repro.hostos.machine import Machine
from repro.hostos.workloads import MATRIX_MEMORY_MB, matrix_task
from repro.sim import Simulator

DEFAULT_COUNTS: Tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class Fig2Result:
    counts: Tuple[int, ...]
    curves: Dict[str, List[float]]
    knee_mb: float  # RAM size: where the FreeBSD curves take off


def run_fig2(
    counts: Sequence[int] = DEFAULT_COUNTS,
    profiles: Sequence[str] = tuple(PROFILES),
    ram_mb: float = 2048.0,
    memory_mb: float = MATRIX_MEMORY_MB,
    seed: int = 0,
) -> Fig2Result:
    curves: Dict[str, List[float]] = {}
    for label in profiles:
        profile = PROFILES[label]
        series: List[float] = []
        for n in counts:
            sim = Simulator(seed=seed)
            machine = Machine(
                sim,
                profile.make_scheduler(),
                ncpus=2,
                memory=profile.make_memory(ram_mb=ram_mb),
            )
            for i in range(n):
                machine.submit(matrix_task(i, memory_mb=memory_mb))
            sim.run()
            series.append(
                statistics.mean(r.execution_time for r in machine.results)
            )
        curves[label] = series
    return Fig2Result(counts=tuple(counts), curves=curves, knee_mb=ram_mb)


def print_report(result: Fig2Result) -> str:
    table = Table(
        ["processes", *result.curves],
        title=(
            "Figure 2: avg per-process execution time (s), memory-intensive "
            f"workload (knee expected at {result.knee_mb:.0f} MB demand)"
        ),
    )
    for i, n in enumerate(result.counts):
        table.add_row(n, *(result.curves[label][i] for label in result.curves))
    return table.render()


# -- unified entry point (RunRequest -> RunResult) ---------------------

#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_fig2, print_report)
