"""Figure 7: the hierarchical example topology and its latency
decomposition.

Paper measurement: latency between 10.1.3.207 (fast-DSL subnet, 20 ms)
and 10.2.2.117 (group2, 5 ms) across the 400 ms inter-group link was
853 ms: 20 + 400 + 5 one way, 425 for the return, ~3 ms of underlying
network and rule-evaluation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.net.ping import ping
from repro.topology.compiler import compile_topology
from repro.topology.presets import figure7_topology
from repro.units import ms
from repro.virt.deployment import Testbed


@dataclass(frozen=True)
class Fig7Result:
    measured_rtt: float
    expected_propagation: float
    overhead: float
    pair_rtts: Dict[str, float]  # "groupA->groupB" -> measured RTT
    rules_per_pnode: float


def run_fig7(scale: float = 0.02, num_pnodes: int = 8, seed: int = 0) -> Fig7Result:
    testbed = Testbed(num_pnodes=num_pnodes, seed=seed)
    spec = figure7_topology(scale=scale)
    compiler = compile_topology(spec, testbed)
    sim = testbed.sim

    def measure(src_group: str, dst_group: str) -> float:
        src = compiler.vnodes(src_group)[-1]
        dst = compiler.vnodes(dst_group)[-1]
        probe = ping(
            sim, src.pnode.stack, src.address, dst.address, count=3, interval=2.0,
            timeout=10.0,
        )
        sim.run()
        return probe.result.avg

    # The paper's headline pair: dsl-fast (20 ms) <-> group2 (5 ms).
    headline = measure("dsl-fast", "group2")
    expected = 2 * (ms(20) + ms(400) + ms(5))

    pair_rtts = {
        "dsl-fast->group2": headline,
        "dsl-fast->modem": measure("dsl-fast", "modem"),
        "dsl-fast->group3": measure("dsl-fast", "group3"),
        "group2->group3": measure("group2", "group3"),
    }
    rules = sum(len(p.stack.fw) for p in testbed.pnodes) / len(testbed.pnodes)
    return Fig7Result(
        measured_rtt=headline,
        expected_propagation=expected,
        overhead=headline - expected,
        pair_rtts=pair_rtts,
        rules_per_pnode=rules,
    )


def print_report(result: Fig7Result) -> str:
    table = Table(
        ["pair", "measured rtt (ms)"],
        title="Figure 7 topology: measured inter-group RTTs",
    )
    for pair, rtt in result.pair_rtts.items():
        table.add_row(pair, rtt * 1e3)
    lines = [table.render()]
    lines.append(
        "decomposition (paper: 853 ms measured = 2x(20+400+5) ms + ~3 ms overhead):"
    )
    lines.append(
        f"  measured {result.measured_rtt * 1e3:.1f} ms = "
        f"{result.expected_propagation * 1e3:.0f} ms propagation "
        f"+ {result.overhead * 1e3:.2f} ms overhead"
    )
    lines.append(f"  avg firewall rules per physical node: {result.rules_per_pnode:.1f}")
    return "\n".join(lines)


# -- unified entry point (RunRequest -> RunResult) ---------------------

#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_fig7, print_report)
