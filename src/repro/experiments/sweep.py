"""Seed sweeps: quantify run-to-run variability.

BitTorrent swarm dynamics are chaotic — tiny timing differences change
which peers trade with whom — so single-run comparisons (e.g. between
foldings in Figure 9) are meaningful only against the seed-to-seed
envelope. This module measures that envelope.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Callable, Dict, Sequence, Tuple

from repro.bittorrent.swarm import Swarm, SwarmConfig


@dataclass(frozen=True)
class SweepResult:
    """Distribution of one scalar metric over seeds."""

    metric: str
    seeds: Tuple[int, ...]
    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return statistics.mean(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0

    @property
    def spread(self) -> float:
        """(max - min) / mean: the chaos envelope other comparisons
        must clear to be significant."""
        mean = self.mean
        return (max(self.values) - min(self.values)) / mean if mean else 0.0

    def within_envelope(self, value: float, slack: float = 1.0) -> bool:
        """Is ``value`` indistinguishable from seed noise? True when it
        lies within the sweep's min/max widened by ``slack`` stdevs."""
        lo = min(self.values) - slack * self.stdev
        hi = max(self.values) + slack * self.stdev
        return lo <= value <= hi


def sweep_swarm(
    config: SwarmConfig,
    seeds: Sequence[int],
    metric: Callable[[Swarm, float], float] = None,
    metric_name: str = "last_completion",
    max_time: float = 50000.0,
) -> SweepResult:
    """Run the same swarm across seeds, collecting one metric.

    The default metric is the last completion time; pass any
    ``metric(swarm, last_completion) -> float`` for others.
    """
    values = []
    for seed in seeds:
        swarm = Swarm(replace(config, seed=seed))
        last = swarm.run(max_time=max_time)
        values.append(metric(swarm, last) if metric is not None else last)
    return SweepResult(
        metric=metric_name, seeds=tuple(seeds), values=tuple(values)
    )


def median_download_metric(swarm: Swarm, _last: float) -> float:
    durations = sorted(
        c.completed_at - (c.started_at or 0.0)
        for c in swarm.leechers
        if c.completed_at is not None
    )
    return durations[len(durations) // 2]
