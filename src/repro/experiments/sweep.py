"""Seed sweeps: quantify run-to-run variability.

BitTorrent swarm dynamics are chaotic — tiny timing differences change
which peers trade with whom — so single-run comparisons (e.g. between
foldings in Figure 9) are meaningful only against the seed-to-seed
envelope. This module measures that envelope.

Execution rides on :mod:`repro.runtime`: the seed list becomes an
:class:`~repro.runtime.plan.ExecutionPlan` (one replication per seed)
and runs through the same fault-tolerant executor the CLI sweeps use.
``parallel=0`` (default) runs inline exactly as before; ``parallel=N``
fans seeds out over worker processes — results are identical either
way because each seed's run is self-contained.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple

from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.errors import ExperimentError
from repro.experiments.api import RunRequest, RunResult


@dataclass(frozen=True)
class SweepResult:
    """Distribution of one scalar metric over seeds."""

    metric: str
    seeds: Tuple[int, ...]
    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return statistics.mean(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0

    @property
    def spread(self) -> float:
        """(max - min) / mean: the chaos envelope other comparisons
        must clear to be significant."""
        mean = self.mean
        return (max(self.values) - min(self.values)) / mean if mean else 0.0

    def within_envelope(self, value: float, slack: float = 1.0) -> bool:
        """Is ``value`` indistinguishable from seed noise? True when it
        lies within the sweep's min/max widened by ``slack`` stdevs."""
        lo = min(self.values) - slack * self.stdev
        hi = max(self.values) + slack * self.stdev
        return lo <= value <= hi


def _make_runner(
    config: SwarmConfig,
    metric: Optional[Callable[[Swarm, float], float]],
    metric_name: str,
    max_time: float,
):
    """Per-point runner: one swarm at ``request.seed``.

    A closure is fine here — the executor's default ``fork`` start
    method inherits it; only ``mp_context="spawn"`` would need a
    module-level runner.
    """

    def runner(request: RunRequest) -> RunResult:
        swarm = Swarm(replace(config, seed=request.seed))
        last = swarm.run(max_time=max_time)
        value = metric(swarm, last) if metric is not None else last
        return RunResult.ok(
            request,
            value=value,
            artifacts={metric_name: value, "seed": request.seed},
        )

    return runner


def sweep_swarm(
    config: SwarmConfig,
    seeds: Sequence[int],
    metric: Callable[[Swarm, float], float] = None,
    metric_name: str = "last_completion",
    max_time: float = 50000.0,
    parallel: int = 0,
) -> SweepResult:
    """Run the same swarm across seeds, collecting one metric.

    The default metric is the last completion time; pass any
    ``metric(swarm, last_completion) -> float`` for others.
    ``parallel`` is the worker-process count (0 = inline, the
    historical behaviour).
    """
    from repro.runtime import ExecutionPlan, execute_plan

    plan = ExecutionPlan.build("sweep_swarm", seeds=list(seeds))
    outcome = execute_plan(
        plan,
        parallel=parallel,
        runner=_make_runner(config, metric, metric_name, max_time),
        max_attempts=1,
    )
    if outcome.failed:
        first = outcome.failed[0]
        raise ExperimentError(
            f"seed sweep failed at seed {first.request.seed}: {first.error}"
        )
    values = [r.artifacts[metric_name] for r in outcome.results]
    return SweepResult(
        metric=metric_name, seeds=tuple(int(s) for s in seeds), values=tuple(values)
    )


def median_download_metric(swarm: Swarm, _last: float) -> float:
    durations = sorted(
        c.completed_at - (c.started_at or 0.0)
        for c in swarm.leechers
        if c.completed_at is not None
    )
    return durations[len(durations) // 2]
