"""Figure 11: clients having completed their download over time.

Derived from the same run as Figure 10 (the 5754-client scalability
experiment); this module renders the completion ramp.
"""

from __future__ import annotations

from repro.analysis.tables import render_ascii_series
from repro.experiments.fig10_scalability import Fig10Result, run_fig10
from repro.experiments.api import make_execute

#: Figure 11 is the completion curve of the Figure 10 run.
run_fig11 = run_fig10


def print_report(result: Fig10Result) -> str:
    lines = [
        render_ascii_series(
            result.completion,
            title=(
                f"Figure 11: clients having completed the download "
                f"({result.clients} clients)"
            ),
        )
    ]
    window = result.last_completion - result.first_completion
    lines.append(
        f"completion window: {result.first_completion:.0f}s .. "
        f"{result.last_completion:.0f}s ({window:.0f}s wide); the bulk "
        f"(p10-p90) of the swarm drains in {result.bulk_window:.0f}s "
        f"(steepness {result.ramp_steepness:.2f})"
    )
    return "\n".join(lines)


# -- unified entry point (RunRequest -> RunResult) ---------------------

#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_fig11, print_report)
