"""One module per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function returning structured results
and a ``print_report`` helper producing the rows/series the figure
shows. The benchmarks in ``benchmarks/`` call these with scaled-down
default parameters; ``examples/`` and EXPERIMENTS.md record runs closer
to paper scale.

Index (see DESIGN.md for the full mapping):

========  ==========================================================
fig1      CPU-bound process scalability (avg exec time vs N)
fig2      memory-bound processes (swap knee; FreeBSD vs Linux)
fig3      fairness CDFs (4BSD, ULE, Linux 2.6)
tblA      libc interception connect-cycle overhead (10.22 vs 10.79 us)
fig6      RTT vs number of firewall rules (linear scan)
fig7      hierarchical topology latency decomposition (853 ms)
fig8      160-client BitTorrent download evolution
fig9      folding ratio (1..80 clients per physical node)
fig10     5754-client scalability (selected clients' progress)
fig11     completion count over time for the same run
========  ==========================================================
"""

from repro.experiments.api import RunRequest, RunResult, make_execute
from repro.experiments.registry import EXPERIMENTS, ExperimentEntry, get_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentEntry",
    "RunRequest",
    "RunResult",
    "get_experiment",
    "make_execute",
]
