"""Registry mapping experiment ids to their run/report entry points."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    fig1_cpu_scalability,
    fig2_memory_pressure,
    fig3_fairness,
    fig6_rule_scaling,
    fig7_topology,
    fig8_download_evolution,
    fig9_folding,
    fig10_scalability,
    fig11_completion,
    tbl_alias_overhead,
    tbl_connect_overhead,
)


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible paper artefact."""

    id: str
    title: str
    run: Callable[..., object]
    report: Callable[[object], str]


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    e.id: e
    for e in [
        ExperimentEntry(
            "fig1",
            "CPU-bound process scalability",
            fig1_cpu_scalability.run_fig1,
            fig1_cpu_scalability.print_report,
        ),
        ExperimentEntry(
            "fig2",
            "Memory-intensive processes and swap",
            fig2_memory_pressure.run_fig2,
            fig2_memory_pressure.print_report,
        ),
        ExperimentEntry(
            "fig3",
            "Scheduler fairness CDFs",
            fig3_fairness.run_fig3,
            fig3_fairness.print_report,
        ),
        ExperimentEntry(
            "tblA",
            "libc interception connect overhead",
            tbl_connect_overhead.run_connect_overhead,
            tbl_connect_overhead.print_report,
        ),
        ExperimentEntry(
            "tblB",
            "interface alias overhead",
            tbl_alias_overhead.run_alias_overhead,
            tbl_alias_overhead.print_report,
        ),
        ExperimentEntry(
            "fig6",
            "RTT vs firewall rule count",
            fig6_rule_scaling.run_fig6,
            fig6_rule_scaling.print_report,
        ),
        ExperimentEntry(
            "fig7",
            "Hierarchical topology emulation",
            fig7_topology.run_fig7,
            fig7_topology.print_report,
        ),
        ExperimentEntry(
            "fig8",
            "160-client BitTorrent download evolution",
            fig8_download_evolution.run_fig8,
            fig8_download_evolution.print_report,
        ),
        ExperimentEntry(
            "fig9",
            "Folding ratio",
            fig9_folding.run_fig9,
            fig9_folding.print_report,
        ),
        ExperimentEntry(
            "fig10",
            "5754-client scalability (progress)",
            fig10_scalability.run_fig10,
            fig10_scalability.print_report,
        ),
        ExperimentEntry(
            "fig11",
            "5754-client scalability (completions)",
            fig11_completion.run_fig11,
            fig11_completion.print_report,
        ),
        ExperimentEntry(
            "abl-rule-lookup",
            "Linear vs hash-indexed firewall",
            ablations.run_rule_lookup_ablation,
            ablations.print_rule_lookup_report,
        ),
        ExperimentEntry(
            "abl-uplink",
            "Folding overhead from port saturation",
            ablations.run_uplink_saturation_ablation,
            ablations.print_uplink_report,
        ),
        ExperimentEntry(
            "abl-choker",
            "Tit-for-tat on/off",
            ablations.run_choker_ablation,
            ablations.print_choker_report,
        ),
        ExperimentEntry(
            "abl-stagger",
            "Client start stagger",
            ablations.run_stagger_ablation,
            ablations.print_stagger_report,
        ),
        ExperimentEntry(
            "abl-acks",
            "Explicit TCP ACKs vs window-credit shortcut",
            ablations.run_ack_ablation,
            ablations.print_ack_report,
        ),
        ExperimentEntry(
            "abl-ule-gen",
            "ULE fairness: FreeBSD 5 vs 6",
            ablations.run_ule_generation_ablation,
            ablations.print_ule_generation_report,
        ),
        ExperimentEntry(
            "abl-superseed",
            "Super-seeding vs normal initial seeding",
            ablations.run_superseed_ablation,
            ablations.print_superseed_report,
        ),
        ExperimentEntry(
            "abl-departure",
            "Stay-and-seed vs selfish departure",
            ablations.run_departure_ablation,
            ablations.print_departure_report,
        ),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
