"""Registry mapping experiment ids to their unified entry points.

Every entry speaks the :class:`~repro.experiments.api.RunRequest` →
:class:`~repro.experiments.api.RunResult` protocol through
:meth:`ExperimentEntry.execute`; the historical ``run``/``report``
callables remain as thin backwards-compat shims (``entry.run(**kw)``
still works everywhere it used to).

Entries that support parameter sweeps additionally carry:

* ``point`` — a per-sweep-point entry (one grid value per call), used
  by ``python -m repro sweep <id>`` so a figure's x-axis fans out over
  the :mod:`repro.runtime` worker pool;
* ``sweep_grid`` / ``sweep_base`` — the default grid (the figure's
  x-axis values) and fixed parameters.

Experiments without a bespoke ``point`` still sweep: each point is a
whole ``execute`` call with that point's parameters, which is what a
replication-only sweep (``--replications N``) wants anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments import (
    ablations,
    fig1_cpu_scalability,
    fig2_memory_pressure,
    fig3_fairness,
    fig6_rule_scaling,
    fig7_topology,
    fig8_download_evolution,
    fig9_folding,
    fig10_scalability,
    fig11_completion,
    tbl_alias_overhead,
    tbl_connect_overhead,
)
from repro.experiments.api import Execute, make_execute
from repro.units import MB


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible paper artefact."""

    id: str
    title: str
    #: Legacy kwargs entry point (backwards-compat shim).
    run: Callable[..., object]
    #: Legacy report renderer (backwards-compat shim).
    report: Callable[[object], str]
    #: Unified entry point: ``RunRequest -> RunResult``.
    execute: Execute = None  # type: ignore[assignment]
    #: Per-sweep-point entry (``None`` → sweeps reuse ``execute``).
    point: Optional[Execute] = None
    #: Default sweep grid: parameter name -> values (the figure's x-axis).
    sweep_grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: Fixed parameters every sweep point receives by default.
    sweep_base: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.execute is None:
            object.__setattr__(self, "execute", make_execute(self.run, self.report))

    @property
    def point_runner(self) -> Execute:
        """What one sweep point runs: ``point`` if defined, else the
        whole-experiment ``execute``."""
        return self.point if self.point is not None else self.execute

    @property
    def sweep_grid_dict(self) -> Dict[str, Tuple[Any, ...]]:
        return dict(self.sweep_grid)

    @property
    def sweep_base_dict(self) -> Dict[str, Any]:
        return dict(self.sweep_base)


def _entry(
    id: str,
    title: str,
    module: Any = None,
    run: Callable[..., object] = None,
    report: Callable[[object], str] = None,
    sweep_grid: Optional[Dict[str, tuple]] = None,
    sweep_base: Optional[Dict[str, Any]] = None,
) -> ExperimentEntry:
    """Build an entry from a migrated module (``run``/``run_point``
    module attributes) or an explicit legacy pair."""
    legacy_run = run if run is not None else getattr(module, f"run_{id}", None)
    legacy_report = report if report is not None else module.print_report
    execute = getattr(module, "run", None) if module is not None else None
    point = getattr(module, "run_point", None) if module is not None else None
    return ExperimentEntry(
        id=id,
        title=title,
        run=legacy_run,
        report=legacy_report,
        execute=execute,
        point=point,
        sweep_grid=tuple(sorted((k, tuple(v)) for k, v in (sweep_grid or {}).items())),
        sweep_base=tuple(sorted((sweep_base or {}).items())),
    )


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    e.id: e
    for e in [
        _entry(
            "fig1",
            "CPU-bound process scalability",
            fig1_cpu_scalability,
        ),
        _entry(
            "fig2",
            "Memory-intensive processes and swap",
            fig2_memory_pressure,
        ),
        _entry(
            "fig3",
            "Scheduler fairness CDFs",
            fig3_fairness,
        ),
        _entry(
            "tblA",
            "libc interception connect overhead",
            tbl_connect_overhead,
            run=tbl_connect_overhead.run_connect_overhead,
        ),
        _entry(
            "tblB",
            "interface alias overhead",
            tbl_alias_overhead,
            run=tbl_alias_overhead.run_alias_overhead,
        ),
        _entry(
            "fig6",
            "RTT vs firewall rule count",
            fig6_rule_scaling,
            sweep_grid={
                "rule_count": (0, 10000, 20000, 30000, 40000, 50000)
            },
            sweep_base={"pings_per_point": 5},
        ),
        _entry(
            "fig7",
            "Hierarchical topology emulation",
            fig7_topology,
        ),
        _entry(
            "fig8",
            "160-client BitTorrent download evolution",
            fig8_download_evolution,
        ),
        _entry(
            "fig9",
            "Folding ratio",
            fig9_folding,
            sweep_grid={"num_pnodes": (160, 16, 8, 4, 2)},
            sweep_base={"leechers": 160, "seeders": 4, "file_size": 16 * MB},
        ),
        _entry(
            "fig10",
            "5754-client scalability (progress)",
            fig10_scalability,
            sweep_grid={"scale": (0.01, 0.02, 0.05)},
        ),
        _entry(
            "fig11",
            "5754-client scalability (completions)",
            fig11_completion,
        ),
        _entry(
            "abl-rule-lookup",
            "Linear vs hash-indexed firewall",
            run=ablations.run_rule_lookup_ablation,
            report=ablations.print_rule_lookup_report,
        ),
        _entry(
            "abl-uplink",
            "Folding overhead from port saturation",
            run=ablations.run_uplink_saturation_ablation,
            report=ablations.print_uplink_report,
        ),
        _entry(
            "abl-choker",
            "Tit-for-tat on/off",
            run=ablations.run_choker_ablation,
            report=ablations.print_choker_report,
        ),
        _entry(
            "abl-stagger",
            "Client start stagger",
            run=ablations.run_stagger_ablation,
            report=ablations.print_stagger_report,
        ),
        _entry(
            "abl-acks",
            "Explicit TCP ACKs vs window-credit shortcut",
            run=ablations.run_ack_ablation,
            report=ablations.print_ack_report,
        ),
        _entry(
            "abl-ule-gen",
            "ULE fairness: FreeBSD 5 vs 6",
            run=ablations.run_ule_generation_ablation,
            report=ablations.print_ule_generation_report,
        ),
        _entry(
            "abl-superseed",
            "Super-seeding vs normal initial seeding",
            run=ablations.run_superseed_ablation,
            report=ablations.print_superseed_report,
        ),
        _entry(
            "abl-departure",
            "Stay-and-seed vs selfish departure",
            run=ablations.run_departure_ablation,
            report=ablations.print_departure_report,
        ),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
