"""Interface-alias overhead check (paper, "Virtualization" text).

"Evaluation showed that interface aliases produced no overhead compared
to the normal assignment of an IP address to an interface." We verify
the same property on the emulated stack: RTT to a node's primary
address equals RTT to its 1st and its 100th alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.tables import Table
from repro.experiments.api import make_execute
from repro.net.addr import IPv4Address
from repro.net.ping import ping
from repro.virt.deployment import Testbed


@dataclass(frozen=True)
class AliasOverheadResult:
    primary_rtt: float
    first_alias_rtt: float
    last_alias_rtt: float
    aliases_configured: int

    @property
    def max_overhead(self) -> float:
        return max(self.first_alias_rtt, self.last_alias_rtt) - self.primary_rtt


def run_alias_overhead(aliases: int = 100, pings: int = 5, seed: int = 0) -> AliasOverheadResult:
    testbed = Testbed(num_pnodes=2, seed=seed)
    src, dst = testbed.pnodes
    base = IPv4Address("10.0.0.1")
    for i in range(aliases):
        dst.stack.add_address(base + i)

    def rtt(target) -> float:
        probe = ping(
            testbed.sim, src.stack, src.admin_address, target, count=pings, interval=0.1
        )
        testbed.sim.run()
        return probe.result.avg

    return AliasOverheadResult(
        primary_rtt=rtt(dst.admin_address),
        first_alias_rtt=rtt(base),
        last_alias_rtt=rtt(base + (aliases - 1)),
        aliases_configured=aliases,
    )


def print_report(result: AliasOverheadResult) -> str:
    table = Table(
        ["target", "rtt (ms)"],
        title=f"Interface-alias overhead ({result.aliases_configured} aliases configured)",
    )
    table.add_row("primary address", result.primary_rtt * 1e3)
    table.add_row("alias #1", result.first_alias_rtt * 1e3)
    table.add_row(f"alias #{result.aliases_configured}", result.last_alias_rtt * 1e3)
    lines = [table.render()]
    lines.append(
        f"max overhead vs primary: {result.max_overhead * 1e6:.3f} us "
        "(paper: 'no overhead')"
    )
    return "\n".join(lines)


# -- unified entry point (RunRequest -> RunResult) ---------------------

#: Canonical entry point: ``run(RunRequest) -> RunResult``.
run = make_execute(run_alias_overhead, print_report)
