"""Figure 9: the folding ratio — identical results at 1..80 clients
per physical node.

Paper setup: the Figure 8 swarm deployed successively on 160, 16, 8, 4
and 2 physical nodes; the figure plots total data received by all
clients over time and finds the curves "nearly identical": no
emulation overhead until the physical network would saturate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.series import relative_gap
from repro.analysis.tables import Table
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.core.collector import total_payload_curve
from repro.experiments.api import RunRequest, RunResult
from repro.units import MB, gbps

Series = List[Tuple[float, float]]


@dataclass(frozen=True)
class Fig9Result:
    foldings: Tuple[int, ...]  # physical node counts
    clients_per_pnode: Tuple[int, ...]
    curves: Dict[int, Series]  # pnodes -> total-bytes curve
    last_completions: Dict[int, float]
    max_relative_gap: float  # worst curve divergence vs the unfolded run


def run_fig9(
    pnode_counts: Sequence[int] = (160, 16, 8, 4, 2),
    leechers: int = 160,
    seeders: int = 4,
    file_size: int = 16 * MB,
    stagger: float = 10.0,
    seed: int = 0,
    max_time: float = 20000.0,
    port_bandwidth: float = gbps(1),
) -> Fig9Result:
    curves: Dict[int, Series] = {}
    last: Dict[int, float] = {}
    for pnodes in pnode_counts:
        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=pnodes,
            seed=seed,
        )
        swarm = Swarm(config)
        swarm.testbed.switch.port_bandwidth = port_bandwidth
        last[pnodes] = swarm.run(max_time=max_time)
        curves[pnodes] = total_payload_curve(swarm.sim.trace, bucket=20.0)

    reference = curves[pnode_counts[0]]
    horizon = max(t for c in curves.values() for t, _ in c)
    grid = [i * 20.0 for i in range(int(horizon / 20.0) + 1)]
    worst = max(
        relative_gap(reference, curves[p], grid) for p in pnode_counts[1:]
    ) if len(pnode_counts) > 1 else 0.0
    total = leechers + seeders
    return Fig9Result(
        foldings=tuple(pnode_counts),
        clients_per_pnode=tuple(-(-total // p) for p in pnode_counts),
        curves=curves,
        last_completions=last,
        max_relative_gap=worst,
    )


def print_report(result: Fig9Result) -> str:
    table = Table(
        ["pnodes", "clients/pnode", "last completion (s)", "final bytes"],
        title="Figure 9: folding ratio (total data received must not depend on folding)",
    )
    for pnodes in result.foldings:
        curve = result.curves[pnodes]
        table.add_row(
            pnodes,
            result.clients_per_pnode[result.foldings.index(pnodes)],
            result.last_completions[pnodes],
            curve[-1][1],
        )
    lines = [table.render()]
    lines.append(
        f"max relative curve divergence vs unfolded run: "
        f"{100 * result.max_relative_gap:.2f}% (paper: 'nearly identical')"
    )
    return "\n".join(lines)


# -- unified entry points (RunRequest -> RunResult) --------------------


def _artifacts(result: Fig9Result) -> dict:
    return {
        "max_relative_gap": result.max_relative_gap,
        "foldings": len(result.foldings),
        "last_completion_unfolded": result.last_completions[result.foldings[0]],
    }


def run(request: RunRequest) -> RunResult:
    """Whole-figure entry point under the unified protocol."""
    kwargs = request.kwargs
    kwargs.setdefault("seed", request.seed)
    result = run_fig9(**kwargs)
    return RunResult.ok(
        request, value=result, artifacts=_artifacts(result), report=print_report(result)
    )


def run_point(request: RunRequest) -> RunResult:
    """One sweep point: the Figure 8 swarm at a single folding
    (``num_pnodes``); the sweep aggregate then compares final bytes
    and completion times across foldings."""
    params = request.kwargs
    pnodes = int(params.get("num_pnodes", 16))
    leechers = int(params.get("leechers", 160))
    seeders = int(params.get("seeders", 4))
    config = SwarmConfig(
        leechers=leechers,
        seeders=seeders,
        file_size=int(params.get("file_size", 16 * MB)),
        stagger=float(params.get("stagger", 10.0)),
        num_pnodes=pnodes,
        seed=request.seed,
    )
    swarm = Swarm(config)
    swarm.testbed.switch.port_bandwidth = float(
        params.get("port_bandwidth", gbps(1))
    )
    last = swarm.run(max_time=float(params.get("max_time", 20000.0)))
    curve = total_payload_curve(swarm.sim.trace, bucket=20.0)
    return RunResult.ok(
        request,
        artifacts={
            "num_pnodes": pnodes,
            "clients_per_pnode": -(-(leechers + seeders) // pnodes),
            "last_completion": last,
            "final_bytes": curve[-1][1] if curve else 0.0,
        },
        report=(
            f"folding {pnodes} pnodes: last completion {last:.0f}s, "
            f"final bytes {curve[-1][1] if curve else 0.0:.0f}"
        ),
    )
