"""Figure 9: the folding ratio — identical results at 1..80 clients
per physical node.

Paper setup: the Figure 8 swarm deployed successively on 160, 16, 8, 4
and 2 physical nodes; the figure plots total data received by all
clients over time and finds the curves "nearly identical": no
emulation overhead until the physical network would saturate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.series import relative_gap
from repro.analysis.tables import Table
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.core.collector import total_payload_curve
from repro.units import MB, gbps

Series = List[Tuple[float, float]]


@dataclass(frozen=True)
class Fig9Result:
    foldings: Tuple[int, ...]  # physical node counts
    clients_per_pnode: Tuple[int, ...]
    curves: Dict[int, Series]  # pnodes -> total-bytes curve
    last_completions: Dict[int, float]
    max_relative_gap: float  # worst curve divergence vs the unfolded run


def run_fig9(
    pnode_counts: Sequence[int] = (160, 16, 8, 4, 2),
    leechers: int = 160,
    seeders: int = 4,
    file_size: int = 16 * MB,
    stagger: float = 10.0,
    seed: int = 0,
    max_time: float = 20000.0,
    port_bandwidth: float = gbps(1),
) -> Fig9Result:
    curves: Dict[int, Series] = {}
    last: Dict[int, float] = {}
    for pnodes in pnode_counts:
        config = SwarmConfig(
            leechers=leechers,
            seeders=seeders,
            file_size=file_size,
            stagger=stagger,
            num_pnodes=pnodes,
            seed=seed,
        )
        swarm = Swarm(config)
        swarm.testbed.switch.port_bandwidth = port_bandwidth
        last[pnodes] = swarm.run(max_time=max_time)
        curves[pnodes] = total_payload_curve(swarm.sim.trace, bucket=20.0)

    reference = curves[pnode_counts[0]]
    horizon = max(t for c in curves.values() for t, _ in c)
    grid = [i * 20.0 for i in range(int(horizon / 20.0) + 1)]
    worst = max(
        relative_gap(reference, curves[p], grid) for p in pnode_counts[1:]
    ) if len(pnode_counts) > 1 else 0.0
    total = leechers + seeders
    return Fig9Result(
        foldings=tuple(pnode_counts),
        clients_per_pnode=tuple(-(-total // p) for p in pnode_counts),
        curves=curves,
        last_completions=last,
        max_relative_gap=worst,
    )


def print_report(result: Fig9Result) -> str:
    table = Table(
        ["pnodes", "clients/pnode", "last completion (s)", "final bytes"],
        title="Figure 9: folding ratio (total data received must not depend on folding)",
    )
    for pnodes in result.foldings:
        curve = result.curves[pnodes]
        table.add_row(
            pnodes,
            result.clients_per_pnode[result.foldings.index(pnodes)],
            result.last_completions[pnodes],
            curve[-1][1],
        )
    lines = [table.render()]
    lines.append(
        f"max relative curve divergence vs unfolded run: "
        f"{100 * result.max_relative_gap:.2f}% (paper: 'nearly identical')"
    )
    return "\n".join(lines)
