"""Figures 10 and 11: the 5754-client scalability run.

Paper setup: 5760 virtual nodes (5754 clients, 4 seeders, one tracker)
on 180 physical nodes (32 vnodes per pnode); 16 MB file; clients
started every 0.25 s; finished clients keep seeding. Figure 10 plots
the progress of every 50th client; Figure 11 the number of completed
clients over time. Expected shape: "most clients finish their
downloads nearly at the same time" — a steep completion ramp.

The full-scale run is minutes of wall time; ``run_fig10`` scales every
dimension with one ``scale`` parameter (1.0 = paper scale) while
keeping the 32-vnodes-per-pnode folding. For scaled runs the block
size is raised to one block per piece, trading request granularity for
event count (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import Table
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.core.collector import completion_curve
from repro.core.report import sample_progress
from repro.experiments.api import RunRequest, RunResult
from repro.units import KB, MB

Series = List[Tuple[float, float]]


@dataclass(frozen=True)
class Fig10Result:
    clients: int
    pnodes: int
    vnodes_per_pnode: int
    selected_progress: Dict[str, Series]  # Figure 10
    completion: Series  # Figure 11
    first_completion: float
    last_completion: float
    median_completion: float

    @property
    def bulk_window(self) -> float:
        """Seconds between the 10th and 90th percentile completions —
        how long the *bulk* of the swarm takes to drain."""
        if not self.completion:
            return 0.0
        times = [t for t, _ in self.completion]
        lo = times[int(0.10 * (len(times) - 1))]
        hi = times[int(0.90 * (len(times) - 1))]
        return hi - lo

    @property
    def ramp_steepness(self) -> float:
        """1 − bulk_window / last_completion: 'most clients finish
        their downloads nearly at the same time' shows up as a value
        close to 1 (80% of the swarm drains in a small slice of the
        experiment's duration)."""
        if not self.completion or self.last_completion <= 0:
            return 0.0
        return 1.0 - self.bulk_window / self.last_completion


def run_fig10(
    scale: float = 0.1,
    stagger: float = 0.25,
    file_size: int = 16 * MB,
    seed: int = 0,
    max_time: float = 30000.0,
    select_every: int = 50,
) -> Fig10Result:
    """Run the scalability experiment at ``scale`` x 5754 clients."""
    leechers = max(10, round(5754 * scale))
    pnodes = max(1, -(-(leechers + 5) // 32))  # keep 32 vnodes per pnode
    config = SwarmConfig(
        leechers=leechers,
        seeders=4,
        file_size=file_size,
        # One block per piece keeps the event count tractable at scale.
        piece_length=256 * KB,
        block_size=256 * KB,
        stagger=stagger,
        num_pnodes=pnodes,
        seed=seed,
        prefix="10.0.0.0/8",
    )
    swarm = Swarm(config)
    last = swarm.run(max_time=max_time)
    trace = swarm.sim.trace
    completion = completion_curve(trace)
    times = [t for t, _ in completion]
    selected = sample_progress(trace, every=max(1, min(select_every, leechers // 10)))
    return Fig10Result(
        clients=leechers,
        pnodes=pnodes,
        vnodes_per_pnode=-(-(leechers + 5) // pnodes),
        selected_progress=selected,
        completion=completion,
        first_completion=times[0],
        last_completion=last,
        median_completion=times[len(times) // 2],
    )


def print_report(result: Fig10Result) -> str:
    table = Table(
        ["metric", "value"],
        title=(
            f"Figures 10/11: scalability run, {result.clients} clients on "
            f"{result.pnodes} pnodes (~{result.vnodes_per_pnode} vnodes/pnode)"
        ),
    )
    table.add_row("first completion (s)", result.first_completion)
    table.add_row("median completion (s)", result.median_completion)
    table.add_row("last completion (s)", result.last_completion)
    table.add_row("bulk (p10-p90) window (s)", result.bulk_window)
    table.add_row("completion ramp steepness", result.ramp_steepness)
    table.add_row("selected clients plotted", len(result.selected_progress))
    return table.render()


# -- unified entry points (RunRequest -> RunResult) --------------------


def _artifacts(result: Fig10Result) -> dict:
    return {
        "clients": result.clients,
        "pnodes": result.pnodes,
        "first_completion": result.first_completion,
        "median_completion": result.median_completion,
        "last_completion": result.last_completion,
        "bulk_window": result.bulk_window,
        "ramp_steepness": result.ramp_steepness,
    }


def run(request: RunRequest) -> RunResult:
    """Whole-figure entry point under the unified protocol."""
    kwargs = request.kwargs
    kwargs.setdefault("seed", request.seed)
    result = run_fig10(**kwargs)
    return RunResult.ok(
        request, value=result, artifacts=_artifacts(result), report=print_report(result)
    )


def run_point(request: RunRequest) -> RunResult:
    """One sweep point: the scalability run at a single ``scale``
    (fraction of the paper's 5754 clients); the aggregate shows how
    the completion ramp evolves with swarm size."""
    params = request.kwargs
    params.setdefault("scale", 0.01)
    result = run_fig10(seed=request.seed, **params)
    return RunResult.ok(
        request,
        value=result,
        artifacts=_artifacts(result),
        report=(
            f"scale={params['scale']}: {result.clients} clients on "
            f"{result.pnodes} pnodes, last completion "
            f"{result.last_completion:.0f}s, steepness {result.ramp_steepness:.2f}"
        ),
    )
