"""Figures 10 and 11: the 5754-client scalability run.

Paper setup: 5760 virtual nodes (5754 clients, 4 seeders, one tracker)
on 180 physical nodes (32 vnodes per pnode); 16 MB file; clients
started every 0.25 s; finished clients keep seeding. Figure 10 plots
the progress of every 50th client; Figure 11 the number of completed
clients over time. Expected shape: "most clients finish their
downloads nearly at the same time" — a steep completion ramp.

The full-scale run is minutes of wall time; ``run_fig10`` scales every
dimension with one ``scale`` parameter (1.0 = paper scale) while
keeping the 32-vnodes-per-pnode folding. For scaled runs the block
size is raised to one block per piece, trading request granularity for
event count (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.tables import Table
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.core.collector import completion_curve, progress_series
from repro.core.report import sample_progress
from repro.errors import ExperimentError
from repro.experiments.api import RunRequest, RunResult
from repro.sim.config import SimConfig
from repro.sim.partition import CellHandle, CellSpec, PartitionResult, run_partitioned
from repro.units import KB, MB

Series = List[Tuple[float, float]]

#: Default cell count of the partitioned decomposition. Fixed by the
#: experiment definition, NOT by ``partitions`` — the worker-process
#: cap must never change what is computed (see repro.sim.partition).
DEFAULT_CELLS = 4


@dataclass(frozen=True)
class Fig10Result:
    clients: int
    pnodes: int
    vnodes_per_pnode: int
    selected_progress: Dict[str, Series]  # Figure 10
    completion: Series  # Figure 11
    first_completion: float
    last_completion: float
    median_completion: float
    #: N-invariant partition layout when the run was partitioned
    #: (cells, lookahead, windows); None for the legacy path.
    partition: Optional[Dict[str, Any]] = None

    @property
    def bulk_window(self) -> float:
        """Seconds between the 10th and 90th percentile completions —
        how long the *bulk* of the swarm takes to drain."""
        if not self.completion:
            return 0.0
        times = [t for t, _ in self.completion]
        lo = times[int(0.10 * (len(times) - 1))]
        hi = times[int(0.90 * (len(times) - 1))]
        return hi - lo

    @property
    def ramp_steepness(self) -> float:
        """1 − bulk_window / last_completion: 'most clients finish
        their downloads nearly at the same time' shows up as a value
        close to 1 (80% of the swarm drains in a small slice of the
        experiment's duration)."""
        if not self.completion or self.last_completion <= 0:
            return 0.0
        return 1.0 - self.bulk_window / self.last_completion


def run_fig10(
    scale: float = 0.1,
    stagger: float = 0.25,
    file_size: int = 16 * MB,
    seed: int = 0,
    max_time: float = 30000.0,
    select_every: int = 50,
    partitions: Optional[int] = None,
    cells: Optional[int] = None,
    fluid: bool = False,
) -> Fig10Result:
    """Run the scalability experiment at ``scale`` x 5754 clients.

    ``partitions=N`` switches to the partitioned decomposition (the
    swarm split into ``cells`` independent sub-swarms, each with its
    own tracker and address block, run by the distributed kernel on up
    to ``N`` worker processes). The partitioned result depends on the
    cell count — part of the experiment definition — but **not** on
    ``N``: ``partitions=1`` and ``partitions=8`` are byte-identical.
    ``partitions=None`` is the legacy single-simulator path.
    """
    if partitions is not None:
        result, _merged = run_fig10_partitioned(
            scale=scale,
            stagger=stagger,
            file_size=file_size,
            seed=seed,
            max_time=max_time,
            select_every=select_every,
            partitions=partitions,
            cells=cells,
            fluid=fluid,
        )
        return result
    leechers = max(10, round(5754 * scale))
    pnodes = max(1, -(-(leechers + 5) // 32))  # keep 32 vnodes per pnode
    config = SwarmConfig(
        leechers=leechers,
        seeders=4,
        file_size=file_size,
        # One block per piece keeps the event count tractable at scale.
        piece_length=256 * KB,
        block_size=256 * KB,
        stagger=stagger,
        num_pnodes=pnodes,
        seed=seed,
        prefix="10.0.0.0/8",
        fluid=fluid,
    )
    swarm = Swarm(config)
    last = swarm.run(max_time=max_time)
    trace = swarm.sim.trace
    completion = completion_curve(trace)
    times = [t for t, _ in completion]
    selected = sample_progress(trace, every=max(1, min(select_every, leechers // 10)))
    return Fig10Result(
        clients=leechers,
        pnodes=pnodes,
        vnodes_per_pnode=-(-(leechers + 5) // pnodes),
        selected_progress=selected,
        completion=completion,
        first_completion=times[0],
        last_completion=last,
        median_completion=times[len(times) // 2],
    )


# -- partitioned decomposition (repro.sim.partition) -------------------


def _build_fig10_cell(
    handle: CellHandle,
    leechers: int,
    seeders: int,
    file_size: int,
    stagger: float,
    stagger_offset: int,
    num_pnodes: int,
    prefix: str,
) -> Dict[str, Any]:
    """Build one independent sub-swarm on the cell's simulator.

    Each cell is a self-contained swarm (own tracker, own address
    block, leechers occupying its slice of the global stagger slots);
    cells never exchange traffic, so the decomposition needs no
    lookahead and the driver runs a single fully-parallel window.
    """
    cfg = SwarmConfig(
        leechers=leechers,
        seeders=seeders,
        file_size=file_size,
        piece_length=256 * KB,
        block_size=256 * KB,
        stagger=stagger,
        stagger_offset=stagger_offset,
        num_pnodes=num_pnodes,
        seed=handle.seed,
        prefix=prefix,
    )
    swarm = Swarm(cfg, sim=handle.sim)
    state: Dict[str, Any] = {"swarm": swarm, "done_at": {}}
    target = len(swarm.leechers)

    def on_complete(rec) -> None:
        state["done_at"][rec.get("node")] = rec.time
        if len(state["done_at"]) >= target:
            handle.sim.stop()

    swarm.sim.trace.subscribe("bt.complete", on_complete)
    swarm.launch()
    return state


def _finish_fig10_cell(handle: CellHandle, state: Dict[str, Any]) -> Dict[str, Any]:
    swarm = state["swarm"]
    done_at = state["done_at"]
    target = len(swarm.leechers)
    if len(done_at) < target:
        raise ExperimentError(
            f"cell {handle.name!r} did not complete: {len(done_at)}/{target} "
            f"leechers done by t={handle.sim.now:.0f}s"
        )
    return {
        "completion_times": sorted(done_at.values()),
        "progress": progress_series(swarm.sim.trace),
        "clients": target,
        "pnodes": swarm.config.num_pnodes,
    }


def _leecher_split(leechers: int, cells: int) -> List[int]:
    """Near-even deterministic split (first ``leechers % cells`` cells
    take the extra client)."""
    base, extra = divmod(leechers, cells)
    return [base + (1 if i < extra else 0) for i in range(cells)]


def run_fig10_partitioned(
    scale: float = 0.1,
    stagger: float = 0.25,
    file_size: int = 16 * MB,
    seed: int = 0,
    max_time: float = 30000.0,
    select_every: int = 50,
    partitions: int = 1,
    cells: Optional[int] = None,
    fluid: bool = False,
) -> Tuple[Fig10Result, PartitionResult]:
    """The partitioned scalability run; returns the figure result plus
    the merged :class:`PartitionResult` (metrics/trace/flights — the
    byte-identity comparison surface of the A/B tests)."""
    leechers = max(10, round(5754 * scale))
    num_cells = DEFAULT_CELLS if cells is None else cells
    if num_cells < 1:
        raise ExperimentError(f"cells must be >= 1, got {num_cells}")
    num_cells = min(num_cells, leechers)  # every cell needs a leecher
    splits = _leecher_split(leechers, num_cells)
    specs: List[CellSpec] = []
    offset = 0
    pnodes_per_cell: List[int] = []
    for i, count in enumerate(splits):
        pnodes = max(1, -(-(count + 5) // 32))  # 32 vnodes/pnode per cell
        pnodes_per_cell.append(pnodes)
        specs.append(
            CellSpec(
                name=f"swarm{i}",
                build=partial(
                    _build_fig10_cell,
                    leechers=count,
                    seeders=4,
                    file_size=file_size,
                    stagger=stagger,
                    stagger_offset=offset,
                    num_pnodes=pnodes,
                    prefix=f"10.{i}.0.0/16",
                ),
                finish=_finish_fig10_cell,
            )
        )
        offset += count
    merged = run_partitioned(
        specs,
        until=max_time,
        seed=seed,
        config=SimConfig(partitions=partitions, fluid=fluid),
    )

    all_times = sorted(
        t
        for name in merged.cells
        for t in merged.per_cell[name]["artifacts"]["completion_times"]
    )
    completion = [(t, float(i + 1)) for i, t in enumerate(all_times)]
    # Figure 10 sampling over the union of cells: qualify node names by
    # cell (vnode names repeat per cell), order by start time, keep
    # every k-th — the same rule sample_progress applies to one trace.
    all_progress: Dict[str, Series] = {}
    for name in merged.cells:
        for node, series in merged.per_cell[name]["artifacts"]["progress"].items():
            all_progress[f"{name}:{node}"] = series
    every = max(1, min(select_every, leechers // 10))
    ordered = sorted(all_progress.items(), key=lambda item: item[1][0][0])
    selected = {
        node: series
        for i, (node, series) in enumerate(ordered, start=1)
        if i % every == 0
    }
    total_pnodes = sum(pnodes_per_cell)
    total_vnodes = leechers + num_cells * 5  # +4 seeders +1 tracker per cell
    result = Fig10Result(
        clients=leechers,
        pnodes=total_pnodes,
        vnodes_per_pnode=-(-total_vnodes // total_pnodes),
        selected_progress=selected,
        completion=completion,
        first_completion=all_times[0],
        last_completion=all_times[-1],
        median_completion=all_times[len(all_times) // 2],
        partition=merged.layout(),
    )
    return result, merged


def print_report(result: Fig10Result) -> str:
    table = Table(
        ["metric", "value"],
        title=(
            f"Figures 10/11: scalability run, {result.clients} clients on "
            f"{result.pnodes} pnodes (~{result.vnodes_per_pnode} vnodes/pnode)"
        ),
    )
    table.add_row("first completion (s)", result.first_completion)
    table.add_row("median completion (s)", result.median_completion)
    table.add_row("last completion (s)", result.last_completion)
    table.add_row("bulk (p10-p90) window (s)", result.bulk_window)
    table.add_row("completion ramp steepness", result.ramp_steepness)
    table.add_row("selected clients plotted", len(result.selected_progress))
    if result.partition is not None:
        table.add_row("partition cells", len(result.partition["cells"]))
        table.add_row("barrier windows", result.partition["windows"])
    return table.render()


# -- unified entry points (RunRequest -> RunResult) --------------------


def _artifacts(result: Fig10Result) -> dict:
    out = {
        "clients": result.clients,
        "pnodes": result.pnodes,
        "first_completion": result.first_completion,
        "median_completion": result.median_completion,
        "last_completion": result.last_completion,
        "bulk_window": result.bulk_window,
        "ramp_steepness": result.ramp_steepness,
    }
    if result.partition is not None:
        out["partition"] = result.partition
    return out


def run(request: RunRequest) -> RunResult:
    """Whole-figure entry point under the unified protocol."""
    kwargs = request.kwargs
    kwargs.setdefault("seed", request.seed)
    if request.partitions is not None:
        kwargs.setdefault("partitions", request.partitions)
    result = run_fig10(**kwargs)
    return RunResult.ok(
        request, value=result, artifacts=_artifacts(result), report=print_report(result)
    )


def run_point(request: RunRequest) -> RunResult:
    """One sweep point: the scalability run at a single ``scale``
    (fraction of the paper's 5754 clients); the aggregate shows how
    the completion ramp evolves with swarm size."""
    params = request.kwargs
    params.setdefault("scale", 0.01)
    if request.partitions is not None:
        params.setdefault("partitions", request.partitions)
    result = run_fig10(seed=request.seed, **params)
    return RunResult.ok(
        request,
        value=result,
        artifacts=_artifacts(result),
        report=(
            f"scale={params['scale']}: {result.clients} clients on "
            f"{result.pnodes} pnodes, last completion "
            f"{result.last_completion:.0f}s, steepness {result.ramp_steepness:.2f}"
        ),
    )
