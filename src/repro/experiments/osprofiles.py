"""The three OS configurations compared by the suitability study."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.hostos.memory import POLICY_GRACEFUL, POLICY_THRASH, MemoryModel
from repro.hostos.scheduler import (
    Bsd4Scheduler,
    Linux26Scheduler,
    Scheduler,
    UleScheduler,
)


@dataclass(frozen=True)
class OsProfile:
    """A scheduler + memory-management pairing (one curve per figure)."""

    label: str
    make_scheduler: Callable[[], Scheduler]
    memory_policy: str

    def make_memory(self, ram_mb: float = 2048.0) -> MemoryModel:
        return MemoryModel(ram_mb=ram_mb, policy=self.memory_policy)


#: The three curves of Figures 1-3. FreeBSD runs both of its
#: schedulers; memory behaviour is per-OS, not per-scheduler.
PROFILES: Dict[str, OsProfile] = {
    "ULE scheduler": OsProfile("ULE scheduler", UleScheduler, POLICY_THRASH),
    "4BSD scheduler": OsProfile("4BSD scheduler", Bsd4Scheduler, POLICY_THRASH),
    "Linux 2.6": OsProfile("Linux 2.6", Linux26Scheduler, POLICY_GRACEFUL),
}
