"""The simulator: clock, scheduling and run loop."""

from __future__ import annotations

from sys import getrefcount
from time import perf_counter
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.hotpath import SLOW_PATH
from repro.obs.flight import FlightRecorder, NULL_FLIGHT
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.profile import EventLoopProfiler, NULL_PROFILER
from repro.obs.span import NULL_TRACER, Tracer
from repro.sim.config import SimConfig
from repro.sim.event import EVENT_POOL_CAP, Event, EventQueue, PRIORITY_NORMAL
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

#: Sentinel distinguishing "kwarg not passed" from an explicit value in
#: the deprecated ``Simulator(flight=..., fast=...)`` shim.
_UNSET: Any = object()

#: Bucket edges for the (wall-clock) per-callback latency histogram —
#: callbacks run in microseconds to milliseconds.
CALLBACK_SECONDS_EDGES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


class Simulator:
    """Deterministic discrete-event simulator.

    A single :class:`Simulator` instance backs one experiment: all
    machines, network components and application processes schedule
    their work on it. Time is a float number of seconds starting at 0.

    Parameters
    ----------
    seed:
        Root seed for the experiment's :class:`~repro.sim.rng.RngRegistry`.
        All stochastic components derive their streams from it, making
        runs exactly reproducible.
    observe:
        ``False`` swaps every instrument for its shared NULL no-op.
    config:
        A :class:`~repro.sim.config.SimConfig` naming every behaviour
        knob (hot path, flight recording, profiler, packet reuse,
        partitioning). This is the canonical configuration surface.
    flight, fast:
        **Deprecated** keyword shims for ``config=SimConfig(flight=...,
        fast=...)``; they emit a :class:`DeprecationWarning` and
        override the corresponding config field for one release of
        back-compat. ``fast=True`` enables the hot-path optimisations
        (calendar event queue, event free list, packet reuse);
        ``fast=False`` selects the unoptimised reference path; ``None``
        follows the ``REPRO_SLOW_PATH`` environment escape hatch (see
        :mod:`repro.hotpath`) — both paths are observationally
        identical. ``flight=True`` (with ``observe=True``) attaches a
        :class:`~repro.obs.flight.FlightRecorder` as ``sim.flight``.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (2.5, ['hello'])
    """

    def __init__(
        self,
        seed: int = 0,
        observe: bool = True,
        config: Optional[SimConfig] = None,
        flight: Any = _UNSET,
        fast: Any = _UNSET,
    ) -> None:
        if flight is not _UNSET or fast is not _UNSET:
            import warnings

            warnings.warn(
                "Simulator(flight=..., fast=...) is deprecated; pass "
                "config=SimConfig(flight=..., fast=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = (config if config is not None else SimConfig()).replace(
                **(
                    ({} if flight is _UNSET else {"flight": flight})
                    | ({} if fast is _UNSET else {"fast": fast})
                )
            )
        #: The resolved configuration (defaults when none was given).
        self.config: SimConfig = config if config is not None else SimConfig()
        config = self.config
        self.now: float = 0.0
        self.fast = (not SLOW_PATH) if config.fast is None else config.fast
        self._queue = EventQueue(calendar=self.fast)
        #: Transports may recycle pooled packets when this is True; it
        #: is cleared whenever a packet tap is installed (a tap may
        #: retain packet objects) and on the slow reference path.
        self.allow_packet_reuse = (
            self.fast
            if config.allow_packet_reuse is None
            else config.allow_packet_reuse
        )
        self.rng = RngRegistry(seed)
        self.trace = TraceRecorder()
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        # Packet-train support (net/pipe.py). Trains coalesce per-pipe
        # back-to-back deliveries into one kernel event; to stay
        # observationally identical to the per-packet reference path
        # the train drain needs the loop's horizon and permission to
        # dispatch inline, and the kernel needs to account for
        # deliveries the trains are holding outside the queue.
        #: Active ``run(until=...)`` horizon (None outside ``run``).
        self._horizon: Optional[float] = None
        #: True while a train may dispatch coalesced deliveries inline
        #: (set by ``run()``; off under ``max_events`` budgets, while
        #: profiling, and outside ``run`` entirely, where every train
        #: entry is re-materialised as a real queue event instead).
        self._train_inline = False
        #: Inline deliveries dispatched by trains this run; folded into
        #: ``events_processed`` so the count matches the reference path.
        self._extra_events = 0
        #: Deliveries currently coalesced inside pipe trains (they are
        #: pending work, but not queue entries).
        self._deferred_deliveries = 0
        # Observability substrate (repro.obs). ``observe=False`` swaps
        # in shared no-op instruments: the hot loop then pays one bool
        # test per event and nothing else.
        if observe:
            self.metrics = MetricsRegistry()
            self.tracer = Tracer(lambda: self.now)
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER
        #: Per-packet lifecycle recorder (NULL no-op unless requested).
        #: Network components cache this at construction, so it must be
        #: chosen before any stack/pipe/switch is built.
        self.flight = (
            FlightRecorder() if (observe and config.flight) else NULL_FLIGHT
        )
        #: Event-loop profiler (wall-clock; NULL no-op by default).
        #: Enable with ``SimConfig(profiler=True)`` or
        #: :meth:`enable_profiler` *before* ``run()``.
        self.profiler = (
            EventLoopProfiler() if config.profiler else NULL_PROFILER
        )
        #: When True, each callback's wall-clock duration is recorded
        #: into the ``sim.kernel.callback_seconds`` histogram (a *wall*
        #: metric — excluded from deterministic snapshots).
        self.profile_callbacks = False
        self._m_events = self.metrics.counter("sim.kernel.events_processed")
        self._m_runs = self.metrics.counter("sim.kernel.runs")
        self._m_queue_depth = self.metrics.gauge("sim.kernel.queue_depth")
        self._m_callback = self.metrics.histogram(
            "sim.kernel.callback_seconds", edges=CALLBACK_SECONDS_EDGES, wall=True
        )
        #: Flow-level transfer engine (net/fluid.py), or ``None``.
        #: Requires the fast path; ``REPRO_SLOW_PATH=1`` always selects
        #: the reference packet path regardless of the config.
        self.fluid = None
        if config.fluid and self.fast and not SLOW_PATH:
            from repro.net.fluid import FlowScheduler

            self.fluid = FlowScheduler(self, threshold=config.fluid_threshold)

    def enable_profiler(self) -> EventLoopProfiler:
        """Attach (and return) a live :class:`EventLoopProfiler`.

        Idempotent: repeated calls return the same profiler. Wall-clock
        data only — never part of deterministic snapshots.
        """
        if not self.profiler.enabled:
            self.profiler = EventLoopProfiler()
        return self.profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self._queue.push(self.now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past (now={self.now}, requested={time})"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Cancelling twice is a no-op."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the queue drains.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time; the clock is left
            at ``until`` (events at exactly ``until`` are processed).
        max_events:
            Safety valve: stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        queue = self._queue
        processed = 0
        profiler = self.profiler
        profile_cb = self.profile_callbacks
        profile = profile_cb or profiler.enabled
        observe_cb = self._m_callback.observe
        record_prof = profiler.record if profiler.enabled else None
        self._horizon = until
        # Inline train dispatch bypasses the loop head, so it must be
        # off whenever the loop head enforces something per-event: an
        # event budget, or per-callback profiling.
        self._train_inline = max_events is None and not profile
        try:
            if self.fast and not profile:
                # Hot path: the common iteration — next slot of the
                # queue's opened sorted run holds a live entry — is
                # fully inlined here (zero queue calls per event); the
                # residue (tombstones, bucket opening, window advance,
                # horizon) falls back to the single-walk ``pop_ready``.
                # No per-event instrument tests (hoisted into the
                # branch selection), and event handles are recycled
                # when the refcount proves no caller kept them.
                pop_ready = queue.pop_ready
                recycle = queue.recycle
                free = queue._free
                pool_cap = EVENT_POOL_CAP
                while True:
                    if self._stopped:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    s = queue._sorted
                    si = queue._si
                    if si < len(s):
                        entry = s[si]
                        ev = entry[3]
                        callback = ev.callback
                        if callback is not None:
                            t = entry[0]
                            if until is not None and t > until:
                                self.now = until
                                break
                            s[si] = None
                            queue._si = si + 1
                            queue._near -= 1
                            queue._live -= 1
                            self.now = t
                            args = ev.args
                            # Free references before the callback runs
                            # so an exception cannot pin the payload.
                            ev.callback = None
                            ev.args = ()
                            callback(*args)
                            processed += 1
                            # 3 accounted refs: the ``entry`` tuple,
                            # the ``ev`` local, getrefcount's argument.
                            # Any external handle pushes this higher
                            # and the event is left to the GC.
                            if getrefcount(ev) == 3 and len(free) < pool_cap:
                                free.append(ev)
                            continue
                    ev = pop_ready(until)
                    if ev is None:
                        # Same clock semantics as the reference loop:
                        # a non-empty queue means the next event is
                        # past the horizon (clock lands on ``until``);
                        # an empty queue advances only forward.
                        if until is not None and (queue or until > self.now):
                            self.now = until
                        break
                    self.now = ev.time
                    callback, args = ev.callback, ev.args
                    ev.callback = None
                    ev.args = ()
                    callback(*args)
                    processed += 1
                    if getrefcount(ev) == 2:  # loop local + getrefcount arg
                        recycle(ev)
            else:
                while queue:
                    if self._stopped:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        self.now = until
                        break
                    ev = queue.pop()
                    self.now = ev.time
                    callback, args = ev.callback, ev.args
                    # Free references before the callback runs so that an
                    # exception does not pin the event's payload.
                    ev.callback = None
                    ev.args = ()
                    if profile:
                        t0 = perf_counter()
                        callback(*args)
                        wall = perf_counter() - t0
                        if profile_cb:
                            observe_cb(wall)
                        if record_prof is not None:
                            record_prof(callback, wall)
                    else:
                        callback(*args)
                    processed += 1
                else:
                    if until is not None and until > self.now:
                        self.now = until
        finally:
            processed += self._extra_events
            self._extra_events = 0
            self._horizon = None
            self._train_inline = False
            self.events_processed += processed
            self._m_events.inc(processed)
            self._m_runs.inc()
            depth = len(queue) + self._deferred_deliveries
            if self.fluid is not None:
                depth += self.fluid.deferred
            self._m_queue_depth.set(depth)
            self._running = False

    def step(self) -> bool:
        """Process a single event. Returns ``False`` if none remained."""
        if not self._queue:
            return False
        ev = self._queue.pop()
        self.now = ev.time
        callback, args = ev.callback, ev.args
        ev.callback = None
        ev.args = ()
        callback(*args)
        self.events_processed += 1
        self._m_events.inc()
        self._m_queue_depth.set(len(self._queue) + self._deferred_deliveries)
        return True

    def stop(self) -> None:
        """Request the active :meth:`run` loop to stop after the current event."""
        self._stopped = True

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when idle.

        A safe lower bound on when this simulator can next act: pipe
        packet trains always keep their head delivery materialised in
        the queue, and the fluid flow engine keeps one event at (or
        before) its earliest pending delivery, so deferred deliveries
        never hide behind it. The
        partition driver (:mod:`repro.sim.partition`) uses this between
        barrier windows to compute the global conservative horizon.
        """
        return self._queue.peek_time()

    @property
    def stopped(self) -> bool:
        """True when the most recent :meth:`run` ended via :meth:`stop`.

        Cleared on entry to the next ``run()``. The partition driver
        reads this after each barrier window: a cell that stopped
        itself (e.g. a sub-swarm whose leechers all completed) is done
        and drops out of subsequent windows.
        """
        return self._stopped

    @property
    def pending(self) -> int:
        """Number of live scheduled events (including deliveries
        coalesced inside pipe packet trains and segments held by the
        fluid flow engine)."""
        n = len(self._queue) + self._deferred_deliveries
        if self.fluid is not None:
            n += self.fluid.deferred
        return n

    def manifest(
        self,
        topology_hash: Optional[str] = None,
        wall_time_seconds: Optional[float] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Provenance record of this run (see :mod:`repro.obs.manifest`)."""
        from repro.obs.manifest import RunManifest

        return RunManifest.from_sim(
            self,
            topology_hash=topology_hash,
            wall_time_seconds=wall_time_seconds,
            **extra,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending})"
