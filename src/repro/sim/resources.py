"""Synchronisation primitives built on :class:`~repro.sim.process.Signal`.

These are the queueing building blocks used by the socket layer
(receive buffers), the tracker (request queues) and the host-OS model
(run queues are bespoke, but tasks block on these).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.process import Signal


class Channel:
    """Unbounded FIFO message channel.

    ``put`` never blocks; ``get`` returns a :class:`Signal` that a
    process yields on and which triggers with the next item. Items are
    delivered in FIFO order to getters in FIFO order.

    Examples
    --------
    >>> from repro.sim import Simulator
    >>> from repro.sim.process import Process
    >>> sim = Simulator()
    >>> ch = Channel(sim, name="demo")
    >>> got = []
    >>> def consumer():
    ...     item = yield ch.get()
    ...     got.append(item)
    >>> _ = Process(sim, consumer())
    >>> ch.put(42)
    >>> sim.run()
    >>> got
    [42]
    """

    __slots__ = ("sim", "name", "_items", "_getters", "_subscriber", "closed")

    def __init__(self, sim, name: str = "channel") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._subscriber = None
        self.closed = False

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self.closed:
            raise SimulationError(f"put on closed channel {self.name!r}")
        if self._subscriber is not None:
            self._subscriber(item)
        elif self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def subscribe(self, callback) -> None:
        """Push mode: deliver every item (queued and future) to
        ``callback`` synchronously; ``None`` is delivered at close.
        Used where a waiting process per channel would be too heavy
        (one BitTorrent peer connection per remote peer)."""
        if self._subscriber is not None:
            raise SimulationError(f"channel {self.name!r} already subscribed")
        if self._getters:
            raise SimulationError(
                f"channel {self.name!r} has blocked getters; cannot subscribe"
            )
        self._subscriber = callback
        while self._items:
            callback(self._items.popleft())
        if self.closed:
            callback(None)

    def get(self) -> Signal:
        """Return a signal that fires with the next item (or ``None`` at close)."""
        sig = Signal(self.sim, name=f"{self.name}.get")
        if self._items:
            sig.trigger(self._items.popleft())
        elif self.closed:
            sig.trigger(None)
        else:
            self._getters.append(sig)
        return sig

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        return self._items.popleft() if self._items else None

    def close(self) -> None:
        """Close the channel: pending and future getters receive ``None``."""
        if self.closed:
            return
        self.closed = True
        if self._subscriber is not None:
            self._subscriber(None)
        while self._getters:
            self._getters.popleft().trigger(None)

    def __len__(self) -> int:
        return len(self._items)


#: A Store is semantically identical to a Channel in this kernel.
Store = Channel


class Resource:
    """Counted resource (semaphore) with FIFO acquisition order.

    Examples
    --------
    >>> from repro.sim import Simulator
    >>> from repro.sim.process import Process
    >>> sim = Simulator()
    >>> res = Resource(sim, capacity=1)
    >>> order = []
    >>> def user(tag, hold):
    ...     yield res.acquire()
    ...     order.append((tag, sim.now))
    ...     yield hold
    ...     res.release()
    >>> _ = Process(sim, user("a", 2.0))
    >>> _ = Process(sim, user("b", 1.0))
    >>> sim.run()
    >>> order
    [('a', 0.0), ('b', 2.0)]
    """

    __slots__ = ("sim", "name", "capacity", "in_use", "_waiters")

    def __init__(self, sim, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Signal] = deque()

    def acquire(self) -> Signal:
        """Return a signal that fires once a unit is granted."""
        sig = Signal(self.sim, name=f"{self.name}.acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            sig.trigger(None)
        else:
            self._waiters.append(sig)
        return sig

    def try_acquire(self) -> bool:
        """Non-blocking acquire."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return one unit; grants it to the oldest waiter, if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of unheld resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter; in_use unchanged.
            self._waiters.popleft().trigger(None)
        else:
            self.in_use -= 1

    @property
    def waiting(self) -> int:
        return len(self._waiters)
