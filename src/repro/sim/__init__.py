"""Discrete-event simulation kernel.

This subpackage is the substrate for the whole emulation: a
deterministic event queue (:mod:`repro.sim.event`), a simulator clock
and run loop (:mod:`repro.sim.kernel`), generator-based simulated
processes (:mod:`repro.sim.process`), synchronisation primitives
(:mod:`repro.sim.resources`), named seeded RNG streams
(:mod:`repro.sim.rng`) and structured tracing (:mod:`repro.sim.trace`).

The kernel is intentionally small and allocation-light: the BitTorrent
scalability experiments (Figures 10/11 of the paper) push millions of
events through it.
"""

from repro.sim.config import DEFAULT_CONFIG, SimConfig
from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.partition import (
    CellHandle,
    CellSpec,
    PartitionLayout,
    PartitionResult,
    run_partitioned,
)
from repro.sim.process import Process, Signal
from repro.sim.resources import Channel, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "DEFAULT_CONFIG",
    "SimConfig",
    "CellHandle",
    "CellSpec",
    "PartitionLayout",
    "PartitionResult",
    "run_partitioned",
    "Event",
    "EventQueue",
    "Simulator",
    "Process",
    "Signal",
    "Channel",
    "Resource",
    "Store",
    "RngRegistry",
    "TraceRecorder",
]
