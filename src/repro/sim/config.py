"""The unified simulator configuration surface: :class:`SimConfig`.

:class:`~repro.sim.kernel.Simulator` accreted one keyword argument per
PR (``fast=``, ``flight=``, profiler enablement via a method call,
packet-reuse as a mutable attribute). ``SimConfig`` absorbs that sprawl
into one frozen dataclass so a simulator's behaviour is named by a
single hashable value that can be stored in manifests, threaded through
:class:`~repro.experiments.api.RunRequest`, and shipped to partition
worker processes (:mod:`repro.sim.partition`) without re-encoding each
knob.

``Simulator(config=SimConfig(...))`` is the canonical constructor; the
historical ``Simulator(flight=..., fast=...)`` kwargs survive one
release as a deprecation shim that maps onto an equivalent config (see
:class:`~repro.sim.kernel.Simulator`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class SimConfig:
    """Everything that selects a :class:`Simulator`'s behaviour.

    Attributes
    ----------
    fast:
        Hot-path selection: ``True`` = calendar queue + pooling,
        ``False`` = reference path, ``None`` (default) = follow the
        ``REPRO_SLOW_PATH`` environment escape hatch.
    flight:
        Attach a :class:`~repro.obs.flight.FlightRecorder` (requires an
        observing simulator).
    profiler:
        Attach the wall-clock event-loop profiler from construction
        (equivalent to calling :meth:`Simulator.enable_profiler` before
        the first ``run()``).
    allow_packet_reuse:
        Force the packet pool on/off; ``None`` (default) follows
        ``fast`` (pooling on exactly on the hot path).
    partitions:
        Worker processes a partitioned run may use
        (:mod:`repro.sim.partition`). ``1`` = a single worker; the
        value is a *cap*, not a layout: the model's cell decomposition
        is fixed independently, so results never depend on it.
    lookahead:
        Conservative sync window for partitioned runs, in simulated
        seconds; ``None`` derives it from the topology (or treats
        cells as uncoupled when they declare no cross-traffic).
    fluid:
        Attach a :class:`~repro.net.fluid.FlowScheduler` to the
        simulator: eligible long-lived bulk TCP transfers are modelled
        as *flows* advanced by rate-change epochs instead of per-packet
        events. Only effective on the fast path; ``REPRO_SLOW_PATH=1``
        always selects the reference packet path regardless.
    fluid_threshold:
        Minimum wire size (bytes, TCP header included) a segment must
        reach to be eligible for the fluid path; smaller transfers stay
        on the exact packet path.
    """

    fast: Optional[bool] = None
    flight: bool = False
    profiler: bool = False
    allow_packet_reuse: Optional[bool] = None
    partitions: int = 1
    lookahead: Optional[float] = None
    fluid: bool = False
    fluid_threshold: int = 8192

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise SimulationError(
                f"partitions must be >= 1, got {self.partitions!r}"
            )
        if self.lookahead is not None and self.lookahead <= 0:
            raise SimulationError(
                f"lookahead must be positive, got {self.lookahead!r}"
            )
        if self.fluid_threshold < 1:
            raise SimulationError(
                f"fluid_threshold must be >= 1, got {self.fluid_threshold!r}"
            )

    def replace(self, **changes: Any) -> "SimConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (manifests, cross-process transfer)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SimConfig":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


#: The all-defaults config (shared; SimConfig is immutable).
DEFAULT_CONFIG = SimConfig()
