"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``. The sequence
number makes ordering total and deterministic: two events scheduled for
the same instant fire in scheduling order, independent of hash seeds or
heap internals.

Two queue implementations live behind one API (DESIGN.md, "Hot-path
architecture"):

* **heap-only** (``calendar=False``, the ``REPRO_SLOW_PATH=1``
  reference path): a binary heap of ``(time, priority, seq, event)``
  tuples with lazy cancellation, exactly the pre-optimisation kernel;
* **calendar fast path** (the default): a bucketed near-future window
  in front of the heap. Events landing inside the current window go
  straight into a fixed-width bucket (O(1) append); each bucket is
  sorted once when the pop cursor reaches it, so the short-delay
  timers that dominate TCP/pipe traffic skip the heap entirely.
  Events beyond the window overflow into the heap and are migrated
  in batches when the window advances.

Both orderings are the same total order — the property tests in
``tests/test_event_fastpath.py`` pit them against each other on
randomized schedules (including cancellations) and require identical
pop sequences. An :class:`Event` free list recycles handles that the
kernel has proven unreferenced, cutting the per-event allocation that
dominated ``push`` in profiles.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.hotpath import SLOW_PATH

#: Default priority; lower fires first among same-time events.
PRIORITY_NORMAL = 0
#: Used by the kernel for bookkeeping that must run before user events.
PRIORITY_HIGH = -1
#: Used for events that must observe all same-time user events.
PRIORITY_LOW = 1

#: Calendar tier geometry: ``NEAR_BUCKETS`` buckets of ``BUCKET_WIDTH``
#: seconds each. The window spans 256 ms — wide enough that loopback
#: (µs), rule-scan (µs–ms), serialization (µs–ms) and LAN/pipe delays
#: (tens of ms) all land in the near tier; retransmission and choker
#: timers (0.5 s+) overflow to the heap and migrate in batches.
NEAR_BUCKETS = 256
BUCKET_WIDTH = 1e-3

#: Upper bound on the Event free list (handles, not payloads).
EVENT_POOL_CAP = 4096

#: Window-advance hybrid threshold: when at most this many heap entries
#: fall inside the new window they are served directly as one sorted
#: run (heap pops already come out in total order); above it they are
#: distributed into buckets so later same-window pushes stay O(1)
#: appends instead of O(n) ordered inserts into a huge run.
SPARSE_RUN_MAX = 512


class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires.
    callback:
        Callable invoked as ``callback(*args)``. ``None`` after
        cancellation.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the queue.

        Cancelling is O(1): the entry stays in the queue (heap or
        bucket) as a tombstone and is discarded lazily when reached.
        """
        self.callback = None
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else getattr(
            self.callback, "__qualname__", repr(self.callback)
        )
        return f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.seq}, {state})"


class EventQueue:
    """Priority queue of :class:`Event` objects.

    Entries everywhere are ``(time, priority, seq, event)`` tuples so
    both heap sifting and bucket sorting compare plain numbers in C
    instead of calling ``Event.__lt__`` — a measurable win at the
    millions-of-events scale of the Figure 10/11 experiments.

    Parameters
    ----------
    calendar:
        ``True`` enables the bucketed near-future tier (the fast
        path); ``False`` is the heap-only reference implementation.
        ``None`` (default) follows :data:`repro.hotpath.SLOW_PATH`.

    Invariant of the calendar tier: every heap entry's time is
    ``>= _win_end`` and every near entry's time is ``< _win_end``, so
    the near tier always drains before the heap and the pop order is
    exactly the heap-only ``(time, priority, seq)`` total order.
    """

    __slots__ = (
        "_heap", "_seq", "_live", "_calendar", "_free",
        "_buckets", "_occ", "_sorted", "_si", "_cur",
        "_win_start", "_win_end", "_near", "_inv_width", "_span",
    )

    def __init__(self, calendar: Optional[bool] = None) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._live = 0
        self._calendar = (not SLOW_PATH) if calendar is None else calendar
        self._free: list[Event] = []
        # Near-future calendar tier (unused when ``calendar`` is off).
        self._span = NEAR_BUCKETS * BUCKET_WIDTH
        self._inv_width = 1.0 / BUCKET_WIDTH
        self._buckets: list[list[tuple]] = [[] for _ in range(NEAR_BUCKETS)]
        self._occ: list[int] = []  # int-heap of (possibly stale) nonempty bucket indices
        self._sorted: list = []    # the opened (current) bucket, sorted
        self._si = 0               # consumption index into ``_sorted``
        self._cur = 0              # index of the opened bucket
        self._win_start = 0.0
        self._win_end = self._span
        self._near = 0             # entries (live + tombstones) in the near tier

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Insert a new event and return its handle (for cancellation)."""
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.callback = callback
            ev.args = args
        else:
            ev = Event(time, priority, seq, callback, args)
        entry = (time, priority, seq, ev)
        if self._calendar and time < self._win_end:
            # Near tier. Bucket index relative to the window start;
            # times at or before the current bucket (including
            # float-edge rounding and out-of-order pushes below the
            # window) join the opened sorted run, where an ordered
            # insert keeps pop order exact.
            idx = int((time - self._win_start) * self._inv_width)
            if idx >= NEAR_BUCKETS:
                idx = NEAR_BUCKETS - 1
            if idx > self._cur:
                bucket = self._buckets[idx]
                if not bucket:
                    heapq.heappush(self._occ, idx)
                bucket.append(entry)
            else:
                s = self._sorted
                si = self._si
                if si >= len(s):
                    # The opened run is fully consumed (its slots are
                    # tombstoned to None); start a fresh run.
                    self._sorted = [entry]
                    self._si = 0
                elif entry >= s[-1]:
                    s.append(entry)  # overwhelmingly common: same-time FIFO
                else:
                    insort(s, entry, si)
            self._near += 1
        else:
            heapq.heappush(self._heap, entry)
        return ev

    # ------------------------------------------------------------------
    # Near-tier machinery
    # ------------------------------------------------------------------
    def _open_next_bucket(self) -> None:
        """Advance the cursor to the next nonempty bucket and sort it."""
        occ = self._occ
        buckets = self._buckets
        while True:
            idx = heapq.heappop(occ)  # _near > 0 guarantees a hit
            bucket = buckets[idx]
            if bucket:
                bucket.sort()
                buckets[idx] = []
                self._sorted = bucket
                self._si = 0
                self._cur = idx
                return

    def _advance_window(self) -> None:
        """Re-anchor the (empty) near window at the heap's top time and
        migrate every heap entry inside the new window into the near
        tier.

        Hybrid migration: heap pops come out in ``(time, priority,
        seq)`` order already, so a *sparse* window (at most
        :data:`SPARSE_RUN_MAX` entries) is served directly as the
        opened sorted run — no bucket machinery, no re-sort, the
        per-entry cost is exactly the heap pop the reference path pays
        anyway. A *dense* window is distributed into buckets so that
        subsequent same-window pushes stay O(1) appends.
        """
        heap = self._heap
        t0 = heap[0][0]
        span = self._span
        inv = self._inv_width
        self._win_start = t0
        end = self._win_end = t0 + span
        self._occ.clear()
        heappop = heapq.heappop
        run: list = []
        append = run.append
        budget = SPARSE_RUN_MAX
        while heap and heap[0][0] < end:
            append(heappop(heap))
            if budget == 0:
                break
            budget -= 1
        if not heap or heap[0][0] >= end:
            # Sparse window: serve the (already sorted) batch directly.
            # The cursor rises to the run's last bucket so that later
            # same-window pushes below it do an ordered insert into the
            # run (order with buckets above the cursor stays correct:
            # every run time < (cur+1) bucket boundary).
            self._sorted = run
            self._si = 0
            self._near = len(run)
            idx = int((run[-1][0] - t0) * inv)
            self._cur = NEAR_BUCKETS - 1 if idx >= NEAR_BUCKETS else idx
            return
        # Dense window: distribute into buckets.
        buckets = self._buckets
        occ = self._occ
        self._cur = 0
        migrated = len(run)
        for entry in run:
            idx = int((entry[0] - t0) * inv)
            if idx >= NEAR_BUCKETS:
                idx = NEAR_BUCKETS - 1
            bucket = buckets[idx]
            if not bucket and idx > 0:
                heapq.heappush(occ, idx)
            bucket.append(entry)
        while heap and heap[0][0] < end:
            entry = heappop(heap)
            idx = int((entry[0] - t0) * inv)
            if idx >= NEAR_BUCKETS:
                idx = NEAR_BUCKETS - 1
            bucket = buckets[idx]
            if not bucket and idx > 0:
                heapq.heappush(occ, idx)
            bucket.append(entry)
            migrated += 1
        self._near = migrated
        bucket = buckets[0]  # holds the old heap top (idx 0) by construction
        bucket.sort()
        buckets[0] = []
        self._sorted = bucket
        self._si = 0

    def _peek_entry(self) -> Optional[tuple]:
        """The next live entry, or ``None``. Tombstones are discarded."""
        if not self._calendar:
            heap = self._heap
            while heap:
                entry = heap[0]
                if entry[3].callback is not None:
                    return entry
                heapq.heappop(heap)
            return None
        while True:
            s = self._sorted
            si = self._si
            n = len(s)
            while si < n:
                entry = s[si]
                if entry[3].callback is not None:
                    self._si = si
                    return entry
                s[si] = None  # release the tombstone's payload
                si += 1
                self._near -= 1
            self._si = si
            if self._near > 0:
                self._open_next_bucket()
                continue
            heap = self._heap
            while heap:
                if heap[0][3].callback is not None:
                    self._advance_window()
                    break
                heapq.heappop(heap)
            else:
                return None

    def _consume(self, entry: tuple) -> Event:
        """Remove the entry returned by :meth:`_peek_entry`."""
        if self._calendar:
            si = self._si
            self._sorted[si] = None  # drop the tuple's reference to the event
            self._si = si + 1
            self._near -= 1
        else:
            heapq.heappop(self._heap)
        self._live -= 1
        return entry[3]

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        if not self._calendar:
            # Heap-only reference path, kept byte-for-byte equivalent to
            # the pre-optimisation queue (it is also the baseline the
            # microbenches compare against).
            heap = self._heap
            while heap:
                ev = heapq.heappop(heap)[3]
                if ev.callback is not None:
                    self._live -= 1
                    return ev
            raise SimulationError("pop from empty event queue")
        entry = self._peek_entry()
        if entry is None:
            raise SimulationError("pop from empty event queue")
        return self._consume(entry)

    def pop_ready(self, until: Optional[float] = None) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is empty or the next event fires after ``until``.

        This is the kernel's single-walk fast path: one call replaces
        the ``peek_time`` + ``pop`` pair (which traversed the heap
        twice per event). The common case — next slot of the opened
        sorted run holds a live entry — is fully inlined.
        """
        if self._calendar:
            s = self._sorted
            si = self._si
            # Invariant: the slot at ``_si`` is never a consumed/None
            # slot (tombstone sweeps null the slot *and* advance _si),
            # so it is either past the end or a real entry tuple.
            if si < len(s):
                entry = s[si]
                if entry[3].callback is not None:
                    if until is not None and entry[0] > until:
                        return None
                    s[si] = None
                    self._si = si + 1
                    self._near -= 1
                    self._live -= 1
                    return entry[3]
        entry = self._peek_entry()
        if entry is None or (until is not None and entry[0] > until):
            return None
        return self._consume(entry)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        if not self._calendar:
            heap = self._heap
            while heap and heap[0][3].callback is None:
                heapq.heappop(heap)
            return heap[0][0] if heap else None
        entry = self._peek_entry()
        return entry[0] if entry is not None else None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def recycle(self, ev: Event) -> None:
        """Return a *proven-unreferenced* event handle to the free list.

        Only the kernel calls this, and only after checking that no
        external reference to the handle survives — recycling a handle
        someone still holds would let a stale ``cancel()`` kill an
        unrelated future event.
        """
        free = self._free
        if len(free) < EVENT_POOL_CAP:
            ev.callback = None
            ev.args = ()
            free.append(ev)

    def note_cancelled(self) -> None:
        """Account for one external cancellation (kept O(1))."""
        self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
        for bucket in self._buckets:
            bucket.clear()
        self._occ.clear()
        self._sorted = []
        self._si = 0
        self._cur = 0
        self._win_start = 0.0
        self._win_end = self._span
        self._near = 0
