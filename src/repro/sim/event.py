"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``. The sequence
number makes ordering total and deterministic: two events scheduled for
the same instant fire in scheduling order, independent of hash seeds or
heap internals.

Two queue implementations live behind one API (DESIGN.md, "Hot-path
architecture"):

* **heap-only** (``calendar=False``, the ``REPRO_SLOW_PATH=1``
  reference path): a binary heap of ``(time, priority, seq, event)``
  tuples with lazy cancellation, exactly the pre-optimisation kernel;
* **calendar fast path** (the default): a bucketed near-future window
  in front of the heap. Events landing inside the current window go
  straight into a fixed-width bucket (O(1) append); each bucket is
  sorted once when the pop cursor reaches it, so the short-delay
  timers that dominate TCP/pipe traffic skip the heap entirely.
  Events beyond the window overflow into the heap and are migrated
  in batches when the window advances.

The calendar window is **adaptive**: the bucket count is fixed
(:data:`NEAR_BUCKETS`) but the bucket *width* — and therefore the
window span — is re-derived at every :meth:`_advance_window` re-anchor
from the observed inter-event gaps of the far tier (the window is
sized to hold about :data:`TARGET_WINDOW_EVENTS` events), and widened
further under sustained near-tier push misses. A swarm whose timers
span seconds (BitTorrent rerequest/choke/tracker timers) gets a
seconds-wide window instead of falling through to the heap for almost
every push; a burst of microsecond timers keeps the original
256 x 1 ms geometry (the span never shrinks below
``NEAR_BUCKETS * BUCKET_WIDTH``).

Migration itself is sort-based rather than pop-based: a sorted
ascending list satisfies the heap invariant, so the far tier can be
``list.sort()``-ed in place (C-speed, and Timsort is nearly linear on
the mostly-sorted arrays that monotone far pushes produce) and the new
window sliced off its front — instead of paying one Python-level
``heappop`` per migrated entry, which is exactly what made the fixed
256 ms window *lose* to the reference heap on wide timer horizons.

Both orderings are the same total order — the property tests in
``tests/test_event_fastpath.py`` pit them against each other on
randomized schedules (including cancellations) and require identical
pop sequences. An :class:`Event` free list recycles handles that the
kernel has proven unreferenced, cutting the per-event allocation that
dominated ``push`` in profiles.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.hotpath import SLOW_PATH

#: Default priority; lower fires first among same-time events.
PRIORITY_NORMAL = 0
#: Used by the kernel for bookkeeping that must run before user events.
PRIORITY_HIGH = -1
#: Used for events that must observe all same-time user events.
PRIORITY_LOW = 1

#: Calendar tier geometry: ``NEAR_BUCKETS`` buckets. ``BUCKET_WIDTH``
#: is the *initial and minimum* bucket width: the window never spans
#: less than ``NEAR_BUCKETS * BUCKET_WIDTH`` (256 ms) — wide enough
#: that loopback (µs), rule-scan (µs–ms), serialization (µs–ms) and
#: LAN/pipe delays (tens of ms) all land in the near tier. The width
#: grows adaptively when the pending timers actually span further
#: (multi-second rerequest/choke/tracker timers).
NEAR_BUCKETS = 256
BUCKET_WIDTH = 1e-3

#: The adaptive window is sized to hold about this many far-tier
#: events per re-anchor: the span candidate is the time offset of the
#: ``TARGET_WINDOW_EVENTS``-th entry of the (sorted) far tier.
TARGET_WINDOW_EVENTS = 1024

#: Sustained near-tier miss pressure: when at least this many pushes
#: since the last re-anchor landed just beyond the window (within
#: ``MISS_HORIZON_SPANS`` spans of it), the next window is widened to
#: cover the widest such miss.
MISS_PRESSURE_MIN = 64
MISS_HORIZON_SPANS = 4.0

#: Upper bound on the Event free list (handles, not payloads).
EVENT_POOL_CAP = 4096

#: Window-advance hybrid threshold: a migrated window of at most this
#: many entries is served directly as one sorted run (the slice is
#: already in total order); above it entries are distributed into
#: buckets so later same-window pushes stay O(1) appends instead of
#: O(n) ordered inserts into a huge run.
SPARSE_RUN_MAX = 512


class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires.
    callback:
        Callable invoked as ``callback(*args)``. ``None`` after
        cancellation.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the queue.

        Cancelling is O(1): the entry stays in the queue (heap or
        bucket) as a tombstone and is discarded lazily when reached.
        """
        self.callback = None
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    # A cancelled entry re-inserted through ``push_with_seq`` can tie an
    # existing tombstone on all of (time, priority, seq), so entry-tuple
    # comparisons may reach the Event objects themselves. At most one of
    # such a pair is live (the other is skipped on pop), making their
    # mutual order irrelevant — these just keep the comparison total.
    def __le__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) <= (
            other.time,
            other.priority,
            other.seq,
        )

    def __gt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) > (
            other.time,
            other.priority,
            other.seq,
        )

    def __ge__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) >= (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else getattr(
            self.callback, "__qualname__", repr(self.callback)
        )
        return f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.seq}, {state})"


class EventQueue:
    """Priority queue of :class:`Event` objects.

    Entries everywhere are ``(time, priority, seq, event)`` tuples so
    both heap sifting and bucket sorting compare plain numbers in C
    instead of calling ``Event.__lt__`` — a measurable win at the
    millions-of-events scale of the Figure 10/11 experiments.

    Parameters
    ----------
    calendar:
        ``True`` enables the bucketed near-future tier (the fast
        path); ``False`` is the heap-only reference implementation.
        ``None`` (default) follows :data:`repro.hotpath.SLOW_PATH`.

    Invariant of the calendar tier: every heap entry's time is
    ``>= _win_end`` and every near entry's time is ``< _win_end``, so
    the near tier always drains before the heap and the pop order is
    exactly the heap-only ``(time, priority, seq)`` total order.

    On the calendar path the far tier additionally tracks whether its
    backing list is fully sorted (``_heap_sorted``): a sorted ascending
    list is a valid binary heap, monotone far pushes keep it sorted
    with a plain append, and window migration then reduces to a bisect
    plus a front slice. Out-of-order far pushes fall back to
    ``heappush`` and clear the flag; the next re-anchor restores it
    with one C-speed ``sort()``.
    """

    __slots__ = (
        "_heap", "_seq", "_live", "_calendar", "_free",
        "_buckets", "_occ", "_sorted", "_si", "_cur",
        "_win_start", "_win_end", "_near", "_inv_width", "_span",
        "_heap_sorted", "_miss_near", "_miss_span",
    )

    def __init__(self, calendar: Optional[bool] = None) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._live = 0
        self._calendar = (not SLOW_PATH) if calendar is None else calendar
        self._free: list[Event] = []
        # Near-future calendar tier (unused when ``calendar`` is off).
        self._span = NEAR_BUCKETS * BUCKET_WIDTH
        self._inv_width = 1.0 / BUCKET_WIDTH
        self._buckets: list[list[tuple]] = [[] for _ in range(NEAR_BUCKETS)]
        self._occ: list[int] = []  # int-heap of (possibly stale) nonempty bucket indices
        self._sorted: list = []    # the opened (current) bucket, sorted
        self._si = 0               # consumption index into ``_sorted``
        self._cur = 0              # index of the opened bucket
        self._win_start = 0.0
        self._win_end = self._span
        self._near = 0             # entries (live + tombstones) in the near tier
        self._heap_sorted = True   # far-tier list is fully sorted (empty is)
        self._miss_near = 0        # far pushes just beyond the window, since re-anchor
        self._miss_span = 0.0      # widest such miss, as an offset from _win_start

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Insert a new event and return its handle (for cancellation)."""
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.callback = callback
            ev.args = args
        else:
            ev = Event(time, priority, seq, callback, args)
        entry = (time, priority, seq, ev)
        if not self._calendar:
            # Heap-only reference path, kept byte-for-byte equivalent
            # to the pre-optimisation queue.
            heapq.heappush(self._heap, entry)
            return ev
        if time < self._win_end:
            self._insert_near(entry)
        else:
            self._insert_far(entry)
        return ev

    def push_with_seq(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        priority: int,
        seq: int,
    ) -> Event:
        """Insert an event carrying a previously :meth:`burn_seq`-ed
        sequence number.

        This is how the pipe packet-train machinery re-materialises a
        coalesced delivery as a real kernel event: the entry gets
        exactly the ``(time, priority, seq)`` identity the per-packet
        reference path would have given it, so the total order — and
        therefore every observable — is unchanged.
        """
        self._live += 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.callback = callback
            ev.args = args
        else:
            ev = Event(time, priority, seq, callback, args)
        entry = (time, priority, seq, ev)
        if not self._calendar:
            heapq.heappush(self._heap, entry)
        elif time < self._win_end:
            self._insert_near(entry)
        else:
            self._insert_far(entry)
        return ev

    def burn_seq(self) -> int:
        """Allocate (and consume) one sequence number without inserting
        an event.

        The caller promises to account for it: either dispatch the
        associated work itself in exact ``(time, priority, seq)`` order
        (the in-train fast path) or re-insert it later through
        :meth:`push_with_seq`. Burning keeps the global sequence stream
        identical to the reference path's, where every delivery is a
        real ``push``.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def _insert_near(self, entry: tuple) -> None:
        """Near tier. Bucket index relative to the window start; times
        at or before the current bucket (including float-edge rounding
        and out-of-order pushes below the window) join the opened
        sorted run, where an ordered insert keeps pop order exact."""
        idx = int((entry[0] - self._win_start) * self._inv_width)
        if idx >= NEAR_BUCKETS:
            idx = NEAR_BUCKETS - 1
        if idx > self._cur:
            bucket = self._buckets[idx]
            if not bucket:
                heapq.heappush(self._occ, idx)
            bucket.append(entry)
        else:
            s = self._sorted
            si = self._si
            if si >= len(s):
                # The opened run is fully consumed (its slots are
                # tombstoned to None); start a fresh run.
                self._sorted = [entry]
                self._si = 0
            elif entry >= s[-1]:
                s.append(entry)  # overwhelmingly common: same-time FIFO
            else:
                insort(s, entry, si)
        self._near += 1

    def _insert_far(self, entry: tuple) -> None:
        """Far tier, with the sorted-append fast path and the
        near-miss pressure accounting the adaptive window feeds on."""
        heap = self._heap
        if self._heap_sorted and (not heap or entry >= heap[-1]):
            heap.append(entry)  # a sorted list stays a valid heap
        else:
            heapq.heappush(heap, entry)
            self._heap_sorted = False
        time = entry[0]
        if time < self._win_end + self._span * MISS_HORIZON_SPANS:
            # A near miss: had the window been a few spans wider this
            # push would have been an O(1) bucket append. The widest
            # miss is kept as an absolute time — the window start will
            # have moved by the time it is read at the next re-anchor.
            self._miss_near += 1
            if time > self._miss_span:
                self._miss_span = time

    # ------------------------------------------------------------------
    # Near-tier machinery
    # ------------------------------------------------------------------
    def _open_next_bucket(self) -> None:
        """Advance the cursor to the next nonempty bucket and sort it."""
        occ = self._occ
        buckets = self._buckets
        while True:
            idx = heapq.heappop(occ)  # _near > 0 guarantees a hit
            bucket = buckets[idx]
            if bucket:
                bucket.sort()
                buckets[idx] = []
                self._sorted = bucket
                self._si = 0
                self._cur = idx
                return

    def _advance_window(self) -> None:
        """Re-anchor the (empty) near window at the heap's top time and
        migrate every heap entry inside the new window into the near
        tier.

        The new window's span is *adaptive*, derived from the far
        tier's observed inter-event gaps: it is sized to hold about
        :data:`TARGET_WINDOW_EVENTS` entries (the offset of the
        TARGET-th entry of the sorted far tier), floored at the
        original ``NEAR_BUCKETS * BUCKET_WIDTH`` geometry, and widened
        to cover sustained near-miss push pressure. Adaptation depends
        only on queue contents, never on wall clock, so it is fully
        deterministic.

        Migration is sort-based: the far tier is sorted in place (a
        sorted list is a valid heap; a no-op when monotone appends
        kept it sorted) and the window sliced off its front. A
        *sparse* window (at most :data:`SPARSE_RUN_MAX` entries) is
        served directly as the opened sorted run; a *dense* window is
        distributed into buckets — in ascending order, so each bucket
        is born sorted and its open-time ``sort()`` is a linear scan.
        """
        heap = self._heap
        if not self._heap_sorted:
            heap.sort()
            self._heap_sorted = True
        t0 = heap[0][0]
        n = len(heap)
        if n > TARGET_WINDOW_EVENTS:
            cand = heap[TARGET_WINDOW_EVENTS][0] - t0
        else:
            cand = heap[-1][0] - t0  # small far tier: take all of it
        if self._miss_near >= MISS_PRESSURE_MIN and self._miss_span - t0 > cand:
            cand = self._miss_span - t0
        self._miss_near = 0
        self._miss_span = 0.0
        min_span = NEAR_BUCKETS * BUCKET_WIDTH
        span = cand if cand > min_span else min_span
        self._span = span
        inv = self._inv_width = NEAR_BUCKETS / span
        self._win_start = t0
        end = self._win_end = t0 + span
        # Entries with time == end stay in the heap (the invariant is
        # strict: near times < _win_end). ``(end,)`` sorts before any
        # real ``(end, prio, seq, ev)`` entry, so bisect_left lands on
        # the first entry with time >= end.
        k = bisect_left(heap, (end,))
        run = heap[:k]
        del heap[:k]
        self._occ.clear()
        self._near = k
        if k <= SPARSE_RUN_MAX:
            # Sparse window: serve the (already sorted) slice directly.
            # The cursor rises to the run's last bucket so that later
            # same-window pushes below it do an ordered insert into the
            # run (order with buckets above the cursor stays correct:
            # every run time < (cur+1) bucket boundary).
            self._sorted = run
            self._si = 0
            idx = int((run[-1][0] - t0) * inv)
            self._cur = NEAR_BUCKETS - 1 if idx >= NEAR_BUCKETS else idx
            return
        # Dense window: distribute into buckets, in ascending order.
        buckets = self._buckets
        occ = self._occ
        self._cur = 0
        heappush = heapq.heappush
        for entry in run:
            idx = int((entry[0] - t0) * inv)
            if idx >= NEAR_BUCKETS:
                idx = NEAR_BUCKETS - 1
            bucket = buckets[idx]
            if not bucket and idx > 0:
                heappush(occ, idx)
            bucket.append(entry)
        bucket = buckets[0]  # holds the old heap top (idx 0) by construction
        buckets[0] = []
        self._sorted = bucket  # slices of a sorted run are sorted
        self._si = 0

    def _peek_entry(self) -> Optional[tuple]:
        """The next live entry, or ``None``. Tombstones are discarded."""
        if not self._calendar:
            heap = self._heap
            while heap:
                entry = heap[0]
                if entry[3].callback is not None:
                    return entry
                heapq.heappop(heap)
            return None
        while True:
            s = self._sorted
            si = self._si
            n = len(s)
            while si < n:
                entry = s[si]
                if entry[3].callback is not None:
                    self._si = si
                    return entry
                s[si] = None  # release the tombstone's payload
                si += 1
                self._near -= 1
            self._si = si
            if self._near > 0:
                self._open_next_bucket()
                continue
            heap = self._heap
            if self._heap_sorted:
                # Sweep dead tops with one front slice, keeping the
                # sorted-far-tier invariant (heappop would scramble it).
                i = 0
                hn = len(heap)
                while i < hn and heap[i][3].callback is None:
                    i += 1
                if i:
                    del heap[:i]
                if heap:
                    self._advance_window()
                    continue
                return None
            while heap:
                if heap[0][3].callback is not None:
                    self._advance_window()
                    break
                heapq.heappop(heap)
            else:
                return None

    def next_entry(self) -> Optional[tuple]:
        """The next live ``(time, priority, seq, event)`` entry without
        consuming it, or ``None`` when the queue is empty.

        Used by the pipe packet-train drain to prove that a coalesced
        delivery precedes everything still in the queue: a candidate
        ``(time, priority, seq)`` triple compares against the returned
        entry tuple directly (the comparison always resolves at the
        unique ``seq`` and never reaches the event object).
        """
        return self._peek_entry()

    def _consume(self, entry: tuple) -> Event:
        """Remove the entry returned by :meth:`_peek_entry`."""
        if self._calendar:
            si = self._si
            self._sorted[si] = None  # drop the tuple's reference to the event
            self._si = si + 1
            self._near -= 1
        else:
            heapq.heappop(self._heap)
        self._live -= 1
        return entry[3]

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        if not self._calendar:
            # Heap-only reference path, kept byte-for-byte equivalent to
            # the pre-optimisation queue (it is also the baseline the
            # microbenches compare against).
            heap = self._heap
            while heap:
                ev = heapq.heappop(heap)[3]
                if ev.callback is not None:
                    self._live -= 1
                    return ev
            raise SimulationError("pop from empty event queue")
        entry = self._peek_entry()
        if entry is None:
            raise SimulationError("pop from empty event queue")
        return self._consume(entry)

    def pop_ready(self, until: Optional[float] = None) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is empty or the next event fires after ``until``.

        This is the kernel's single-walk fast path: one call replaces
        the ``peek_time`` + ``pop`` pair (which traversed the heap
        twice per event). The common case — next slot of the opened
        sorted run holds a live entry — is fully inlined.
        """
        if self._calendar:
            s = self._sorted
            si = self._si
            # Invariant: the slot at ``_si`` is never a consumed/None
            # slot (tombstone sweeps null the slot *and* advance _si),
            # so it is either past the end or a real entry tuple.
            if si < len(s):
                entry = s[si]
                if entry[3].callback is not None:
                    if until is not None and entry[0] > until:
                        return None
                    s[si] = None
                    self._si = si + 1
                    self._near -= 1
                    self._live -= 1
                    return entry[3]
        entry = self._peek_entry()
        if entry is None or (until is not None and entry[0] > until):
            return None
        return self._consume(entry)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        if not self._calendar:
            heap = self._heap
            while heap and heap[0][3].callback is None:
                heapq.heappop(heap)
            return heap[0][0] if heap else None
        entry = self._peek_entry()
        return entry[0] if entry is not None else None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def recycle(self, ev: Event) -> None:
        """Return a *proven-unreferenced* event handle to the free list.

        Only the kernel calls this, and only after checking that no
        external reference to the handle survives — recycling a handle
        someone still holds would let a stale ``cancel()`` kill an
        unrelated future event.
        """
        free = self._free
        if len(free) < EVENT_POOL_CAP:
            ev.callback = None
            ev.args = ()
            free.append(ev)

    def note_cancelled(self) -> None:
        """Account for one external cancellation (kept O(1))."""
        self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
        for bucket in self._buckets:
            bucket.clear()
        self._occ.clear()
        self._sorted = []
        self._si = 0
        self._cur = 0
        self._span = NEAR_BUCKETS * BUCKET_WIDTH
        self._inv_width = 1.0 / BUCKET_WIDTH
        self._win_start = 0.0
        self._win_end = self._span
        self._near = 0
        self._heap_sorted = True
        self._miss_near = 0
        self._miss_span = 0.0
