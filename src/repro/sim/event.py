"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``. The sequence
number makes ordering total and deterministic: two events scheduled for
the same instant fire in scheduling order, independent of hash seeds or
heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Default priority; lower fires first among same-time events.
PRIORITY_NORMAL = 0
#: Used by the kernel for bookkeeping that must run before user events.
PRIORITY_HIGH = -1
#: Used for events that must observe all same-time user events.
PRIORITY_LOW = 1


class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires.
    callback:
        Callable invoked as ``callback(*args)``. ``None`` after
        cancellation.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the queue.

        Cancelling is O(1): the entry stays in the heap and is discarded
        lazily when popped.
        """
        self.callback = None
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else getattr(
            self.callback, "__qualname__", repr(self.callback)
        )
        return f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.seq}, {state})"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Heap entries are ``(time, priority, seq, event)`` tuples so heap
    sifting compares plain numbers in C instead of calling
    ``Event.__lt__`` — a measurable win at the millions-of-events scale
    of the Figure 10/11 experiments.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Insert a new event and return its handle (for cancellation)."""
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        seq = self._seq
        ev = Event(time, priority, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if ev.callback is not None:
                self._live -= 1
                return ev
            # Lazily dropped cancelled entry.
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].callback is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def note_cancelled(self) -> None:
        """Account for one external cancellation (kept O(1))."""
        self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
