"""Named, seeded random-number streams.

Every stochastic component asks the registry for a stream by name
(e.g. ``"pipe.loss/10.0.0.7"`` or ``"bt.choker/10.1.2.3"``). Stream
seeds are derived deterministically from the root seed and the name, so

* two runs with the same root seed are bit-identical, and
* adding a new consumer does not perturb existing streams (unlike
  sharing one global ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)``.

    Uses BLAKE2b rather than ``hash()`` so results are stable across
    interpreter runs and PYTHONHASHSEED values.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(root_seed).encode("ascii"))
    h.update(b"\x00")
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
