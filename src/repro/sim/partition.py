"""Distributed kernel driver: shard a model across worker processes.

The paper's platform is *decentralized* — each physical node emulates
the network for its own vnodes — yet one :class:`~repro.sim.kernel.
Simulator` runs everything in a single Python process. This module is
the scale-out seam: a model is decomposed into **cells** (independent
or message-coupled fragments, each with its own simulator, derived
seed and packet-id stream), the cells are spread over worker processes,
and a conservative barrier-window protocol advances them in lock-step
windows bounded by the declared cross-cell **lookahead**.

Determinism contract
--------------------
The cell decomposition is part of the *experiment definition* (chosen
by the model/config), while ``SimConfig.partitions`` is only a cap on
worker processes. Everything a cell computes is a function of the cell
alone — its derived seed (BLAKE2b, ``derive_seed(seed, "cell/<name>")``),
its own packet-id stream (:func:`repro.net.packet.swap_id_stream`), and
the deterministic barrier schedule — so the merged result is
**byte-identical for every worker count**, including ``partitions=1``
(the single-process run). The subprocess A/B tests and the ``dist-smoke``
CI job enforce exactly this.

Barrier-window protocol
-----------------------
Each round the driver:

1. injects the previous window's cross-cell messages into their target
   cells (globally sorted by ``(delivery_time, src_cell, seq)``);
2. collects every live cell's ``next_event_time()`` and takes the
   global minimum ``m``;
3. advances every live cell with ``run(until=H)`` where
   ``H = min(m + lookahead, until)`` — or ``H = until`` outright when
   the cells declare no coupling (``lookahead=None``), which collapses
   the run to a single fully-parallel window.

Safety: a message posted at time ``t`` inside a window carries
``delay >= lookahead`` (enforced by :meth:`CellHandle.post`), and
``t >= m`` because ``m`` is the global minimum next-event time, so its
delivery time is ``>= m + lookahead = H`` — never inside the window
that produced it. A delivery landing *exactly on* ``H`` (the window
edge) is scheduled at the barrier and processed at the top of the next
window; the slip is deterministic and independent of worker count.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.net import packet as _packet
from repro.obs import telemetry as _telemetry
from repro.sim.config import SimConfig
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed

#: Metric-name prefix for the driver's own bookkeeping.
_SEED_NAMESPACE = "cell"


# ----------------------------------------------------------------------
# Public cell surface
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One cell of a partitioned model.

    ``build(handle)`` runs once in the owning worker before the first
    window; it constructs the cell's model on ``handle.sim`` and
    returns an opaque model object kept alive for the run.
    ``finish(handle, model)`` runs after the last window and returns
    the cell's JSON-ready artifacts. Both callables must be picklable
    under the ``spawn`` start method (module-level functions /
    ``functools.partial``); under ``fork`` closures also work.
    """

    name: str
    build: Callable[["CellHandle"], Any]
    finish: Optional[Callable[["CellHandle", Any], Dict[str, Any]]] = None


class CellHandle:
    """What a cell's builder sees: its simulator plus the cross-cell
    message seam.

    ``post()`` is the *only* way state leaves a cell mid-run, and it
    requires the payload to be picklable and the delay to respect the
    declared lookahead — the two properties the conservative protocol
    needs. Direct object sharing between cells (the style the in-process
    network layers use across an emulated wire) is exactly what a cell
    boundary forbids.
    """

    def __init__(
        self,
        name: str,
        index: int,
        sim: Simulator,
        seed: int,
        lookahead: Optional[float],
        outbound: List[Tuple[float, int, int, str, str, Any]],
    ) -> None:
        self.name = name
        self.index = index
        self.sim = sim
        #: The cell's derived root seed (``derive_seed(root, "cell/<name>")``).
        self.seed = seed
        self.lookahead = lookahead
        self._outbound = outbound
        self._receivers: Dict[str, Callable[[Any], None]] = {}
        self._seq = itertools.count()

    # -- cross-cell messaging ------------------------------------------
    def post(self, dst: str, channel: str, payload: Any, delay: float) -> None:
        """Send ``payload`` to cell ``dst``'s ``channel`` receiver,
        arriving ``delay`` simulated seconds from now.

        ``delay`` must be at least the declared lookahead — that bound
        is what lets every other cell advance through the current
        window without waiting for this message.
        """
        if self.lookahead is None:
            raise SimulationError(
                f"cell {self.name!r} posted a message but the partition "
                "declares no coupling; pass lookahead= to run_partitioned()"
            )
        if delay < self.lookahead:
            raise SimulationError(
                f"cell {self.name!r}: post delay {delay!r} is below the "
                f"declared lookahead {self.lookahead!r}"
            )
        self._outbound.append(
            (self.sim.now + delay, self.index, next(self._seq), dst, channel, payload)
        )

    def on_receive(self, channel: str, callback: Callable[[Any], None]) -> None:
        """Register the receiver for inbound messages on ``channel``."""
        self._receivers[channel] = callback

    def _deliver(self, channel: str, payload: Any) -> None:
        try:
            receiver = self._receivers[channel]
        except KeyError:
            raise SimulationError(
                f"cell {self.name!r}: no receiver for channel {channel!r}"
            ) from None
        receiver(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellHandle({self.name!r}, t={self.sim.now:.6f})"


# ----------------------------------------------------------------------
# Worker-side state (also the inline partitions=1 engine)
# ----------------------------------------------------------------------
class _CellRuntime:
    """One built cell inside a worker."""

    __slots__ = ("spec", "handle", "model", "ids", "outbound", "done", "busy")

    def __init__(self, spec: CellSpec, handle: CellHandle, outbound) -> None:
        self.spec = spec
        self.handle = handle
        self.model: Any = None
        #: The cell's private packet-id stream; swapped in around every
        #: slice of cell code so ids are a function of the cell alone.
        self.ids = itertools.count(1)
        self.outbound = outbound
        self.done = False
        #: CPU seconds this process spent executing the cell (build +
        #: windows). Wall-only diagnostics: reported outside the
        #: deterministic result surface, used by ``bench_dist`` to
        #: compute the critical-path speedup.
        self.busy = 0.0


class _WorkerState:
    """Executes partition commands for the cells one worker owns.

    The same object serves both modes: driven directly by the
    coordinator when running inline, or inside a
    :class:`~repro.runtime.executor.CommandWorker` process otherwise —
    one code path, so worker count cannot change semantics.
    """

    def __init__(
        self,
        cells: Sequence[Tuple[int, CellSpec]],
        seed: int,
        config: SimConfig,
        observe: bool,
    ) -> None:
        self.cells: List[_CellRuntime] = []
        self._probe_labels: List[str] = []
        cell_config = config.replace(partitions=1)
        for index, spec in cells:
            outbound: List[Tuple[float, int, int, str, str, Any]] = []
            cell_seed = derive_seed(seed, f"{_SEED_NAMESPACE}/{spec.name}")
            sim = Simulator(seed=cell_seed, observe=observe, config=cell_config)
            handle = CellHandle(
                spec.name, index, sim, cell_seed, config.lookahead, outbound
            )
            self.cells.append(_CellRuntime(spec, handle, outbound))
            if _telemetry.active():
                # Wall-side progress probe, sampled by the owning
                # process's heartbeat thread — never by the sim itself.
                self._probe_labels.append(
                    _telemetry.register_sim(sim, f"cell/{spec.name}")
                )

    # -- command handlers ----------------------------------------------
    def handle(self, command: str, payload: Any) -> Any:
        if command == "build":
            return self.build()
        if command == "window":
            return self.window(*payload)
        if command == "peek":
            return self.peek(payload)
        if command == "finish":
            return self.finish()
        raise SimulationError(f"unknown partition command {command!r}")

    def build(self):
        """Build every owned cell; return (outbound, next_times)."""
        out: List[Tuple[float, int, int, str, str, Any]] = []
        for rt in self.cells:
            prev = _packet.swap_id_stream(rt.ids)
            t0 = time.process_time()
            try:
                rt.model = rt.spec.build(rt.handle)
            finally:
                rt.busy += time.process_time() - t0
                _packet.swap_id_stream(prev)
            out.extend(rt.outbound)
            rt.outbound.clear()
        return out, self._next_times()

    def window(self, horizon: float, inbound):
        """Inject ``inbound``, run every live cell to ``horizon``;
        return (outbound, next_times, done_flags)."""
        self._inject(inbound)
        out: List[Tuple[float, int, int, str, str, Any]] = []
        for rt in self.cells:
            if rt.done:
                continue
            prev = _packet.swap_id_stream(rt.ids)
            t0 = time.process_time()
            try:
                rt.handle.sim.run(until=horizon)
            finally:
                rt.busy += time.process_time() - t0
                _packet.swap_id_stream(prev)
            if rt.handle.sim.stopped:
                rt.done = True
            out.extend(rt.outbound)
            rt.outbound.clear()
        return out, self._next_times(), [rt.done for rt in self.cells]

    def peek(self, inbound):
        """Barrier-only variant of :meth:`window`: inject then report
        next-event times without advancing (used when the coordinator
        needs fresh horizons after a message exchange)."""
        self._inject(inbound)
        return self._next_times()

    def finish(self):
        """Finalize every owned cell; return per-cell payloads."""
        payloads = []
        for rt in self.cells:
            prev = _packet.swap_id_stream(rt.ids)
            try:
                sim = rt.handle.sim
                artifacts = (
                    rt.spec.finish(rt.handle, rt.model)
                    if rt.spec.finish is not None
                    else {}
                )
                payloads.append(
                    {
                        "name": rt.spec.name,
                        "index": rt.handle.index,
                        "now": sim.now,
                        "events_processed": sim.events_processed,
                        "metrics": sim.metrics.snapshot(),
                        "trace": [
                            [rec.time, rec.category, [list(kv) for kv in rec.fields]]
                            for rec in sim.trace.select()
                        ],
                        "flights": (
                            sim.flight.as_list() if sim.flight.enabled else []
                        ),
                        "artifacts": artifacts,
                        "busy_seconds": rt.busy,
                    }
                )
            finally:
                _packet.swap_id_stream(prev)
        for label in self._probe_labels:
            _telemetry.unregister_probe(label)
        self._probe_labels = []
        return payloads

    # -- internals ------------------------------------------------------
    def _inject(self, inbound) -> None:
        """Schedule inbound messages (already globally sorted)."""
        by_index = {rt.handle.index: rt for rt in self.cells}
        for time, _src, _seq, dst_index, channel, payload in inbound:
            rt = by_index[dst_index]
            rt.handle.sim.schedule_at(
                time, rt.handle._deliver, channel, payload
            )

    def _next_times(self):
        """Per-cell earliest pending event time (None = idle or done)."""
        return [
            None if rt.done else rt.handle.sim.next_event_time()
            for rt in self.cells
        ]


def _worker_factory(payload):
    """Module-level :class:`CommandWorker` factory (spawn-picklable)."""
    cells, seed, config_doc, observe = payload
    state = _WorkerState(cells, seed, SimConfig.from_dict(config_doc), observe)
    return state.handle


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionLayout:
    """Assignment of cell indices to worker processes.

    ``requested`` is the ``partitions=`` cap; ``assignments`` holds one
    non-empty tuple of cell indices per *actual* worker. Asking for
    more workers than there are cells degrades to one cell per worker
    — never an empty worker, never an error.
    """

    requested: int
    assignments: Tuple[Tuple[int, ...], ...]

    @property
    def workers(self) -> int:
        return len(self.assignments)

    @classmethod
    def block(cls, num_cells: int, partitions: int) -> "PartitionLayout":
        """Contiguous block assignment (the same shape as
        :meth:`repro.virt.deployment.Testbed.deploy` block placement:
        ceil(C/W) cells per worker, empties dropped)."""
        if partitions < 1:
            raise SimulationError(f"partitions must be >= 1, got {partitions!r}")
        if num_cells < 1:
            raise SimulationError("a partitioned run needs at least one cell")
        workers = min(partitions, num_cells)
        per = -(-num_cells // workers)  # ceil
        assignments = tuple(
            tuple(range(lo, min(lo + per, num_cells)))
            for lo in range(0, num_cells, per)
        )
        return cls(requested=partitions, assignments=assignments)


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_metric_snapshots(snapshots: Sequence[Dict[str, Dict[str, Any]]]):
    """Merge per-cell metric snapshots into one platform-wide snapshot.

    Counters sum; gauges sum both current value and peak (each cell's
    instruments are disjoint populations, so the sums are exact totals
    — except the summed peak, which is an upper bound on the true
    simultaneous peak and is documented as such); histograms require
    identical edges and sum count/sum/per-bucket counts, min/max fold.
    The merge is associative and order-independent in value, and the
    output is name-sorted — byte-identical however cells were grouped.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        for name, doc in snap.items():
            cur = merged.get(name)
            if cur is None:
                merged[name] = {
                    k: (list(v) if isinstance(v, list) else v)
                    for k, v in doc.items()
                }
                continue
            if cur["kind"] != doc["kind"]:
                raise SimulationError(
                    f"metric {name!r}: kind mismatch across cells "
                    f"({cur['kind']} vs {doc['kind']})"
                )
            kind = doc["kind"]
            if kind == "counter":
                cur["value"] += doc["value"]
            elif kind == "gauge":
                cur["value"] += doc["value"]
                cur["peak"] += doc["peak"]
            else:  # histogram
                if cur["edges"] != doc["edges"]:
                    raise SimulationError(
                        f"histogram {name!r}: edge mismatch across cells"
                    )
                cur["count"] += doc["count"]
                cur["sum"] += doc["sum"]
                cur["counts"] = [
                    a + b for a, b in zip(cur["counts"], doc["counts"])
                ]
                for k, fold in (("min", min), ("max", max)):
                    if doc[k] is not None:
                        cur[k] = doc[k] if cur[k] is None else fold(cur[k], doc[k])
    return {name: merged[name] for name in sorted(merged)}


@dataclass
class PartitionResult:
    """The merged output of a partitioned run.

    Everything except :attr:`workers` is invariant in the worker count;
    :meth:`as_dict` (the A/B comparison surface) therefore excludes it
    unless ``deterministic_only=False``.
    """

    seed: int
    until: float
    lookahead: Optional[float]
    cells: List[str]
    windows: int
    partitions: int
    workers: int
    metrics: Dict[str, Dict[str, Any]]
    trace: List[List[Any]]  # [time, cell, category, {field: value}]
    flights: List[Dict[str, Any]]
    per_cell: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Per-cell CPU seconds (build + windows) in the owning worker.
    #: Wall-clock diagnostics — excluded from the deterministic
    #: comparison surface, consumed by ``benchmarks/bench_dist.py``.
    busy_seconds: Dict[str, float] = field(default_factory=dict)

    def layout(self) -> Dict[str, Any]:
        """The N-invariant partition layout (for manifests)."""
        return {
            "cells": list(self.cells),
            "lookahead": self.lookahead,
            "windows": self.windows,
        }

    def as_dict(self, deterministic_only: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "seed": self.seed,
            "until": self.until,
            "layout": self.layout(),
            "metrics": self.metrics,
            "trace": self.trace,
            "flights": self.flights,
            "per_cell": self.per_cell,
        }
        if not deterministic_only:
            doc["partitions"] = self.partitions
            doc["workers"] = self.workers
            doc["busy_seconds"] = self.busy_seconds
        return doc


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_partitioned(
    cells: Sequence[CellSpec],
    until: float,
    seed: int = 0,
    config: Optional[SimConfig] = None,
    observe: bool = True,
    mp_context: Optional[str] = None,
) -> PartitionResult:
    """Run ``cells`` to ``until`` under the barrier-window protocol.

    ``config.partitions`` caps the worker processes (1 = run every
    cell inline in this process — no subprocesses at all);
    ``config.lookahead`` is the conservative window size, or ``None``
    when the cells are uncoupled (single window, full parallelism).
    The result is byte-identical for every ``partitions`` value.
    """
    config = config if config is not None else SimConfig()
    if until is None or until <= 0:
        raise SimulationError(f"partitioned runs need a positive until, got {until!r}")
    names = [spec.name for spec in cells]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate cell names: {names}")
    partitions = config.partitions
    if partitions > 1 and multiprocessing.current_process().daemon:
        # A daemonic parent (e.g. a sweep-executor worker running this
        # point with --parallel) cannot spawn child processes; degrade
        # to inline execution. Safe: the merged result is byte-identical
        # for every worker count by contract.
        partitions = 1
    layout = PartitionLayout.block(len(cells), partitions)
    name_to_index = {spec.name: i for i, spec in enumerate(cells)}
    index_to_worker = {
        idx: w for w, group in enumerate(layout.assignments) for idx in group
    }

    # -- spin up the engine(s) -----------------------------------------
    inline: Optional[_WorkerState] = None
    workers: List[Any] = []
    if layout.workers == 1:
        inline = _WorkerState(
            list(enumerate(cells)), seed, config, observe
        )
    else:
        from repro.runtime.executor import CommandWorker, receive_all

        # Live telemetry is inherited from the ambient emitter: child
        # workers heartbeat over their command pipes and this process
        # relays the events to whatever hub/pipe it is itself wired to.
        emitter = _telemetry.get_emitter()
        for w, group in enumerate(layout.assignments):
            workers.append(
                CommandWorker(
                    _worker_factory,
                    init_payload=(
                        [(i, cells[i]) for i in group],
                        seed,
                        config.as_dict(),
                        observe,
                    ),
                    mp_context=mp_context,
                    name=f"repro-partition-{w}",
                    telemetry=emitter.enabled,
                    on_telemetry=emitter.forward if emitter.enabled else None,
                )
            )

    def broadcast(command: str, payloads):
        """One request per engine, fanned out before any reply is
        collected; returns per-worker replies in worker order.
        Replies are multiplexed (:func:`repro.runtime.executor.
        receive_all`) so one slow worker's window never blinds the
        others' telemetry streams."""
        if inline is not None:
            return [inline.handle(command, payloads[0])]
        for worker, payload in zip(workers, payloads):
            worker.send(command, payload)
        return receive_all(workers)

    def split_messages(messages):
        """Group a globally sorted message batch by owning worker,
        rewriting destination names to cell indices."""
        per_worker: List[List[Any]] = [[] for _ in range(max(1, layout.workers))]
        for time, src, seq, dst, channel, payload in messages:
            try:
                dst_index = name_to_index[dst]
            except KeyError:
                raise SimulationError(f"message posted to unknown cell {dst!r}") from None
            per_worker[index_to_worker[dst_index]].append(
                (time, src, seq, dst_index, channel, payload)
            )
        return per_worker

    windows = 0
    emitter = _telemetry.get_emitter()
    try:
        # Build every cell; collect build-time messages + first horizons.
        replies = broadcast("build", [None] * max(1, layout.workers))
        pending = sorted(
            (m for out, _times in replies for m in out),
            key=lambda m: (m[0], m[1], m[2]),
        )
        next_times = [t for _out, times in replies for t in times]

        while True:
            inbound = split_messages(pending)
            if pending:
                # Injection changes the horizons; refresh them first.
                replies = broadcast("peek", inbound)
                next_times = [t for times in replies for t in times]
                inbound = [[] for _ in inbound]  # already injected
                pending = []
            live = [t for t in next_times if t is not None]
            if not live:
                break
            min_next = min(live)
            if min_next > until:
                break
            horizon = (
                until
                if config.lookahead is None
                else min(min_next + config.lookahead, until)
            )
            replies = broadcast(
                "window", [(horizon, batch) for batch in inbound]
            )
            windows += 1
            emitter.emit(
                "partition_window",
                window=windows,
                horizon=horizon,
                live_cells=len(live),
                workers=layout.workers,
            )
            pending = sorted(
                (m for out, _times, _done in replies for m in out),
                key=lambda m: (m[0], m[1], m[2]),
            )
            next_times = [t for _out, times, _done in replies for t in times]
            if horizon >= until and not pending:
                break

        replies = broadcast("finish", [None] * max(1, layout.workers))
        cell_payloads = sorted(
            (p for payloads in replies for p in payloads),
            key=lambda p: p["index"],
        )
    finally:
        for worker in workers:
            worker.close()

    # -- deterministic merge -------------------------------------------
    trace: List[List[Any]] = []
    flights: List[Dict[str, Any]] = []
    per_cell: Dict[str, Dict[str, Any]] = {}
    busy_seconds: Dict[str, float] = {}
    for payload in cell_payloads:
        name = payload["name"]
        busy_seconds[name] = payload["busy_seconds"]
        for time, category, fields in payload["trace"]:
            trace.append([time, name, category, {k: v for k, v in fields}])
        for doc in payload["flights"]:
            flights.append({"cell": name, **doc})
        per_cell[name] = {
            "now": payload["now"],
            "events_processed": payload["events_processed"],
            "metrics": payload["metrics"],
            "artifacts": payload["artifacts"],
        }
    # Stable sort: records already appear in (cell, position) order, so
    # sorting by time alone keeps the (time, cell, position) total order.
    trace.sort(key=lambda rec: rec[0])
    return PartitionResult(
        seed=seed,
        until=until,
        lookahead=config.lookahead,
        cells=names,
        windows=windows,
        partitions=config.partitions,
        workers=layout.workers,
        metrics=merge_metric_snapshots([p["metrics"] for p in cell_payloads]),
        trace=trace,
        flights=flights,
        per_cell=per_cell,
        busy_seconds=busy_seconds,
    )
