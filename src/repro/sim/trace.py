"""Structured trace records.

The paper's experiments work from time-stamped client logs (the
BitTorrent client was "slightly modified to allow data collection: a
time-stamp was added to the default output"). :class:`TraceRecorder`
plays that role: components append ``(time, category, fields)`` records
and experiments filter them afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One time-stamped log line."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.fields)


class TraceRecorder:
    """Append-only store of trace records with category filters.

    Recording is off by default per category; experiments enable only
    the categories they consume, keeping the hot path cheap for the
    large-scale runs.
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._enabled: set[str] = set()
        self._listeners: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def enable(self, *categories: str) -> None:
        """Start recording the given categories."""
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def enabled(self, category: str) -> bool:
        return category in self._enabled

    def categories(self) -> "set[str]":
        """The categories currently being recorded (a copy)."""
        return set(self._enabled)

    def subscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` for every record of ``category`` (implies enable)."""
        self.enable(category)
        self._listeners.setdefault(category, []).append(listener)

    def unsubscribe(
        self, category: str, listener: Callable[[TraceRecord], None]
    ) -> None:
        """Detach one listener mid-run.

        The category stays enabled (recording was requested via
        :meth:`enable`, possibly implicitly) — call :meth:`disable`
        to silence it entirely. Unknown listeners are a no-op so
        teardown code can unsubscribe unconditionally.
        """
        listeners = self._listeners.get(category)
        if not listeners:
            return
        try:
            listeners.remove(listener)
        except ValueError:
            return
        if not listeners:
            del self._listeners[category]

    def record(self, time: float, category: str, **fields: Any) -> None:
        """Append a record if its category is enabled."""
        if category not in self._enabled:
            return
        rec = TraceRecord(time, category, tuple(fields.items()))
        self._records.append(rec)
        for listener in self._listeners.get(category, ()):
            listener(rec)

    def select(
        self, category: Optional[str] = None, **field_filters: Any
    ) -> Iterator[TraceRecord]:
        """Iterate records, optionally filtering by category and field values."""
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if field_filters and any(
                rec.get(k, _MISSING) != v for k, v in field_filters.items()
            ):
                continue
            yield rec

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop accumulated records; categories and listeners persist
        (mid-run truncation between measurement windows)."""
        self._records.clear()

    def reset(self) -> None:
        """Full reset: records, enabled categories *and* listeners —
        back to the freshly-constructed state."""
        self._records.clear()
        self._enabled.clear()
        self._listeners.clear()


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
