"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator. The generator *yields*
what it wants to wait for, and the kernel resumes it when the wait is
satisfied:

``yield 2.5``
    sleep for 2.5 simulated seconds;
``yield signal``
    wait until the :class:`Signal` is triggered; the trigger value is
    returned by the ``yield``;
``yield (signal, timeout)``
    wait with a timeout; returns :data:`TIMEOUT` if it expires first;
``yield other_process``
    join: wait for the other process to finish; returns its result.

Application code in the emulation (BitTorrent clients, trackers, the
workload tasks of the scheduler study) is written as such processes.

Examples
--------
>>> from repro.sim import Simulator
>>> from repro.sim.process import Process
>>> sim = Simulator()
>>> def worker():
...     yield 1.0
...     return "done"
>>> p = Process(sim, worker(), name="w")
>>> sim.run()
>>> (p.result, sim.now)
('done', 1.0)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError


class _Timeout:
    """Sentinel returned by a ``(signal, timeout)`` wait that timed out."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TIMEOUT"


TIMEOUT = _Timeout()


class Signal:
    """A one-shot waitable event carrying an optional value.

    Processes wait on it by yielding it; plain callbacks can subscribe
    with :meth:`wait_callback`. Triggering an already-triggered signal
    raises unless ``idempotent`` was requested.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters", "idempotent")

    def __init__(self, sim, name: str = "", idempotent: bool = False) -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self.idempotent = idempotent
        self._waiters: List[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, resuming all waiters with ``value``."""
        if self.triggered:
            if self.idempotent:
                return
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(value)

    def wait_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when triggered (immediately if already)."""
        if self.triggered:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def remove_callback(self, callback: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"triggered value={self.value!r}" if self.triggered else "pending"
        return f"Signal({self.name!r}, {state})"


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        self.cause = cause
        super().__init__(cause)


class Process:
    """A simulated process executing a generator on a simulator.

    The process is scheduled to take its first step at ``start_delay``
    seconds after construction (default: immediately, i.e. at the
    current simulation time once the kernel runs).
    """

    __slots__ = (
        "sim",
        "name",
        "gen",
        "done",
        "result",
        "alive",
        "_pending_event",
        "_waiting_on",
    )

    def __init__(
        self,
        sim,
        gen: Generator[Any, Any, Any],
        name: str = "process",
        start_delay: float = 0.0,
    ) -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = Signal(sim, name=f"{name}.done", idempotent=True)
        self.result: Any = None
        self.alive = True
        self._pending_event = None
        self._waiting_on: Optional[Tuple[Signal, Callable[[Any], None]]] = None
        self._pending_event = sim.schedule(start_delay, self._resume, None)

    # ------------------------------------------------------------------
    def _resume(self, send_value: Any) -> None:
        """Advance the generator by one step and dispatch its next wait."""
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(target)

    def _throw(self, exc: BaseException) -> None:
        """Throw an exception into the generator (used by interrupt)."""
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(target)

    def _dispatch(self, target: Any) -> None:
        sim = self.sim
        if isinstance(target, (int, float)):
            self._pending_event = sim.schedule(float(target), self._resume, None)
        elif isinstance(target, Signal):
            self._wait_signal(target)
        elif isinstance(target, Process):
            self._wait_signal(target.done)
        elif isinstance(target, tuple) and len(target) == 2:
            signal, timeout = target
            if not isinstance(signal, Signal):
                raise SimulationError(f"cannot wait on {target!r}")
            self._wait_signal_timeout(signal, float(timeout))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unwaitable {target!r}"
            )

    def _wait_signal(self, signal: Signal) -> None:
        if signal.triggered:
            # Resume via the queue (not synchronously) to bound stack depth
            # and preserve event ordering.
            self._pending_event = self.sim.schedule(0.0, self._resume, signal.value)
            return

        def on_trigger(value: Any) -> None:
            self._resume(value)

        self._waiting_on = (signal, on_trigger)
        signal.wait_callback(on_trigger)

    def _wait_signal_timeout(self, signal: Signal, timeout: float) -> None:
        if signal.triggered:
            self._pending_event = self.sim.schedule(0.0, self._resume, signal.value)
            return
        state = {"done": False}

        def on_trigger(value: Any) -> None:
            if state["done"]:
                return
            state["done"] = True
            self.sim.cancel(timer)
            self._resume(value)

        def on_timeout() -> None:
            if state["done"]:
                return
            state["done"] = True
            signal.remove_callback(on_trigger)
            self._resume(TIMEOUT)

        timer = self.sim.schedule(timeout, on_timeout)
        self._waiting_on = (signal, on_trigger)
        signal.wait_callback(on_trigger)

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self.gen = None  # type: ignore[assignment]
        self.done.trigger(result)

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process may catch it to clean up; if uncaught, the process
        terminates with the exception propagating to the kernel.
        """
        if not self.alive:
            return
        if self._pending_event is not None:
            self.sim.cancel(self._pending_event)
            self._pending_event = None
        if self._waiting_on is not None:
            signal, cb = self._waiting_on
            signal.remove_callback(cb)
            self._waiting_on = None
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process without running any more of its code."""
        if not self.alive:
            return
        if self._pending_event is not None:
            self.sim.cancel(self._pending_event)
            self._pending_event = None
        if self._waiting_on is not None:
            signal, cb = self._waiting_on
            signal.remove_callback(cb)
            self._waiting_on = None
        gen = self.gen
        self._finish(None)
        if gen is not None:
            gen.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"done result={self.result!r}"
        return f"Process({self.name!r}, {state})"
