"""TCP-like reliable connection transport.

Message-level rather than byte-stream: each :meth:`Connection.send`
puts one application message on the wire as one segment (plus header
overhead), because that is the granularity Dummynet charges bandwidth
at in this emulation (see :mod:`repro.net.packet`).

What is modeled faithfully:

* connection establishment over the full emulated path (Fig. 5 of the
  paper: ``socket/bind/connect`` vs ``socket/bind/listen/accept``),
  costing one RTT, with RST when nothing listens;
* in-order reliable delivery: segments carry sequence numbers, the
  receiver reorders, and segments dropped by a pipe (loss or queue
  overflow) are retransmitted with exponential backoff;
* a bounded send window providing sender backpressure, so application
  senders block when the emulated access link is the bottleneck;
* FIN/RST teardown with EOF delivery after in-order data.

What is simplified (documented in DESIGN.md): there are no explicit ACK
segments — the send window is credited when a segment is delivered,
i.e. half an RTT earlier than a real ACK clock, and congestion control
is absent (the Dummynet pipes themselves are the bottleneck, as in the
paper's DSL scenarios where the access link, not TCP dynamics,
dominates).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.errors import (
    AddressInUse,
    ConnectionRefused,
    ConnectionReset,
    InvalidSocketState,
    SocketError,
)
from repro.net.addr import IPv4Address
from repro.net.packet import Packet, PROTO_TCP, TCP_HEADER, acquire
from repro.obs.flight import NULL_FLIGHT
from repro.obs.metrics import NULL_REGISTRY
from repro.sim.process import Signal
from repro.sim.resources import Channel

KIND_SYN = "syn"
KIND_SYNACK = "synack"
KIND_RST = "rst"
KIND_DATA = "data"
KIND_FIN = "fin"
KIND_ACK = "ack"

#: Default per-connection send window (bytes in flight).
DEFAULT_WINDOW = 256 * 1024
#: First retransmission timeout; doubles on every retry.
INITIAL_RTO = 0.5
#: Retransmission attempts before the connection is reset.
MAX_RETRIES = 8
#: SYN retransmission timeout and retry budget.
SYN_RTO = 1.0
SYN_RETRIES = 5

Endpoint = Tuple[IPv4Address, int]


class _Segment:
    """Payload envelope carried inside a data/fin packet."""

    __slots__ = ("seq", "payload", "size", "ack_hook", "acked", "sent_at", "last_pkt_id")

    def __init__(self, seq: int, payload: Any, size: int, ack_hook: Callable[["_Segment"], None]) -> None:
        self.seq = seq
        self.payload = payload
        self.size = size
        self.ack_hook = ack_hook
        self.acked = False
        #: Sim-time of the most recent (re)transmission — the basis of
        #: the ``net.tcp.rtt_seconds`` samples.
        self.sent_at: Optional[float] = None
        #: Packet id of the most recent (re)transmission, for the
        #: flight recorder's ack hop (None when flights are off).
        self.last_pkt_id: Optional[int] = None


class Connection:
    """One established (or establishing) TCP connection endpoint."""

    # States
    CONNECTING = "connecting"
    ESTABLISHED = "established"
    CLOSED = "closed"

    def __init__(
        self,
        tcp: "TcpLayer",
        local: Endpoint,
        remote: Endpoint,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.tcp = tcp
        self.sim = tcp.stack.sim
        self.local = local
        self.remote = remote
        self.window = window
        self.state = Connection.CONNECTING
        self.connect_signal: Optional[Signal] = None

        # Send side.
        self._next_seq = 0
        self._in_flight = 0
        self._send_queue: Deque[Tuple[_Segment, Optional[Signal], str]] = deque()
        self._retries: Dict[int, int] = {}
        self.local_closed = False
        self._fin_sent = False
        self._fin_acked = False

        # Receive side.
        self._expected_seq = 0
        self._reorder: Dict[int, Tuple[str, _Segment]] = {}
        self.recv_channel = Channel(self.sim, name=f"tcp.recv/{local}->{remote}")
        self.remote_closed = False

        # Stats.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.retransmissions = 0

        # Shared observability instruments (aggregate over every
        # connection of the run; see repro.obs).
        registry = getattr(self.sim, "metrics", None) or NULL_REGISTRY
        self._m_retx = registry.counter("net.tcp.retransmissions")
        self._m_segments = registry.counter("net.tcp.segments_sent")
        self._m_rtt = registry.histogram("net.tcp.rtt_seconds")
        # Flight recorder, cached at construction (NULL when disabled).
        self._flight = getattr(self.sim, "flight", NULL_FLIGHT)

    # -- sending -------------------------------------------------------
    def send(self, payload: Any, size: int) -> Signal:
        """Queue one application message of ``size`` payload bytes.

        Returns a signal triggered once the message has been admitted
        to the network (window space granted) — yield on it for
        sender-side backpressure. Raises if the connection is closed.
        """
        if self.state is not Connection.ESTABLISHED:
            raise InvalidSocketState(f"send on {self.state} connection")
        if self.local_closed:
            raise InvalidSocketState("send after close")
        if size <= 0:
            raise InvalidSocketState(f"message size must be positive, got {size}")
        admitted = Signal(self.sim, name="tcp.send.admitted")
        seg = _Segment(self._next_seq, payload, size, self._on_segment_delivered)
        self._next_seq += 1
        self._send_queue.append((seg, admitted, KIND_DATA))
        self._pump()
        return admitted

    def _pump(self) -> None:
        """Admit queued segments while window space is available."""
        while self._send_queue:
            seg, admitted, kind = self._send_queue[0]
            if kind == KIND_DATA and self._in_flight + seg.size > self.window and self._in_flight > 0:
                break
            self._send_queue.popleft()
            self._in_flight += seg.size
            self._transmit(seg, kind)
            if admitted is not None:
                admitted.trigger(None)

    def _transmit(self, seg: _Segment, kind: str) -> None:
        if kind == KIND_DATA:
            # Fluid seam: an attached FlowScheduler (SimConfig(fluid=True))
            # may take over delivery of eligible bulk DATA segments —
            # no packet is built and no per-hop events are scheduled.
            # Control traffic (SYN/FIN/ACK/RST) and ineligible segments
            # always take the exact packet path below.
            fluid = getattr(self.sim, "fluid", None)
            if fluid is not None and fluid.admit(self, seg, kind):
                seg.sent_at = self.sim.now
                self._m_segments.inc()
                self.bytes_sent += seg.size
                self.messages_sent += 1
                return
        pkt = acquire(
            self.local[0],
            self.remote[0],
            PROTO_TCP,
            seg.size + TCP_HEADER if kind == KIND_DATA else TCP_HEADER,
            sport=self.local[1],
            dport=self.remote[1],
            payload=seg,
            kind=kind,
        )
        pkt.on_drop = lambda _pkt, seg=seg, kind=kind: self._on_segment_dropped(seg, kind)
        seg.sent_at = self.sim.now
        if self._flight.enabled:
            # Stamp the connection-level flow label so every segment
            # (and each retransmission attempt) groups under it.
            pkt.flow = (
                f"tcp:{self.local[0]}:{self.local[1]}->"
                f"{self.remote[0]}:{self.remote[1]}"
            )
            seg.last_pkt_id = pkt.id
        self._m_segments.inc()
        self.tcp.stack.send_packet(pkt)
        if kind == KIND_DATA:
            self.bytes_sent += seg.size
            self.messages_sent += 1

    def _on_segment_dropped(self, seg: _Segment, kind: str) -> None:
        """A pipe dropped the segment: retransmit with backoff."""
        if self.state is Connection.CLOSED:
            return
        attempt = self._retries.get(seg.seq, 0) + 1
        if attempt > MAX_RETRIES:
            self._fail_reset("too many retransmissions")
            return
        self._retries[seg.seq] = attempt
        self.retransmissions += 1
        self._m_retx.inc()
        rto = INITIAL_RTO * (2 ** (attempt - 1))
        self.sim.schedule(rto, self._retransmit, seg, kind)

    def _retransmit(self, seg: _Segment, kind: str) -> None:
        if self.state is Connection.CLOSED:
            return
        self._transmit(seg, kind)

    def _on_segment_delivered(self, seg: _Segment) -> None:
        """Emulation-level ACK: the segment reached the peer."""
        if seg.acked:
            return  # duplicate arrival of a retransmitted segment
        seg.acked = True
        if seg.sent_at is not None:
            # Sim-time round-trip sample: with explicit ACKs this is a
            # true RTT; in the default window-credit shortcut it is the
            # one-way delivery time standing in for it.
            rtt = self.sim.now - seg.sent_at
            self._m_rtt.observe(rtt)
            if self._flight.enabled and seg.last_pkt_id is not None:
                self._flight.ack(
                    seg.last_pkt_id, self.tcp.stack.name, self.sim.now, rtt
                )
        self._retries.pop(seg.seq, None)
        self._in_flight -= seg.size
        self._pump()

    @property
    def in_flight(self) -> int:
        return self._in_flight

    # -- receiving -------------------------------------------------------
    def recv(self) -> Signal:
        """Signal that fires with the next message, or ``None`` at EOF."""
        return self.recv_channel.get()

    def handle_data(self, kind: str, seg: _Segment) -> None:
        """Called by the layer when a data/fin segment arrives."""
        if self.state is Connection.CLOSED:
            return
        if self.tcp.explicit_acks:
            # Fidelity mode: a 40-byte ACK travels the reverse path
            # (through the receiver's *upload* pipe) and credits the
            # sender's window only on arrival.
            self._send_ack(seg)
        else:
            # Default emulation shortcut: credit the window at delivery.
            seg.ack_hook(seg)
        if seg.seq < self._expected_seq or seg.seq in self._reorder:
            return  # duplicate from a spurious retransmission
        self._reorder[seg.seq] = (kind, seg)
        while self._expected_seq in self._reorder:
            next_kind, next_seg = self._reorder.pop(self._expected_seq)
            self._expected_seq += 1
            if next_kind == KIND_FIN:
                self.remote_closed = True
                self.recv_channel.close()
                self._maybe_teardown()
            else:
                self.messages_received += 1
                self.bytes_received += next_seg.size
                self.recv_channel.put((next_seg.payload, next_seg.size))

    def _send_ack(self, seg: _Segment) -> None:
        pkt = acquire(
            self.local[0],
            self.remote[0],
            PROTO_TCP,
            TCP_HEADER,
            sport=self.local[1],
            dport=self.remote[1],
            payload=seg,
            kind=KIND_ACK,
        )
        # A dropped ACK is re-sent after a short delay so the sender's
        # window cannot leak shut.
        pkt.on_drop = lambda _p, seg=seg: self.sim.schedule(
            INITIAL_RTO, self._send_ack, seg
        )
        self.tcp.stack.send_packet(pkt)

    # -- teardown --------------------------------------------------------
    def close(self) -> None:
        """Half-close the sending direction (FIN after queued data)."""
        if self.local_closed or self.state is Connection.CLOSED:
            return
        self.local_closed = True
        if self.state is Connection.CONNECTING:
            if self.connect_signal is not None:
                sig, self.connect_signal = self.connect_signal, None
                sig.trigger(ConnectionReset("closed while connecting"))
            self._teardown()
            return
        seg = _Segment(self._next_seq, None, 0, self._on_fin_delivered)
        self._next_seq += 1
        self._fin_sent = True
        self._send_queue.append((seg, None, KIND_FIN))
        self._pump()

    def _on_fin_delivered(self, seg: _Segment) -> None:
        if seg.acked:
            return
        seg.acked = True
        self._retries.pop(seg.seq, None)
        self._fin_acked = True
        self._maybe_teardown()

    def _maybe_teardown(self) -> None:
        """Fully closed in both directions: release the 4-tuple."""
        if self.local_closed and self.remote_closed and self._fin_acked:
            self._teardown()

    def abort(self) -> None:
        """Send RST and reset immediately (dropped data is lost)."""
        if self.state is Connection.CLOSED:
            return
        pkt = acquire(
            self.local[0],
            self.remote[0],
            PROTO_TCP,
            TCP_HEADER,
            sport=self.local[1],
            dport=self.remote[1],
            kind=KIND_RST,
        )
        pkt.on_drop = None
        self.tcp.stack.send_packet(pkt)
        self._teardown()

    def handle_rst(self) -> None:
        if self.state is Connection.CONNECTING and self.connect_signal is not None:
            sig, self.connect_signal = self.connect_signal, None
            self._teardown()
            sig.trigger(ConnectionRefused(f"{self.remote[0]}:{self.remote[1]}"))
            return
        self._teardown()

    def _fail_reset(self, reason: str) -> None:
        if self.state is Connection.CONNECTING and self.connect_signal is not None:
            sig, self.connect_signal = self.connect_signal, None
            self._teardown()
            sig.trigger(ConnectionReset(reason))
            return
        self._teardown()

    def _teardown(self) -> None:
        if self.state is Connection.CLOSED:
            return
        self.state = Connection.CLOSED
        self._send_queue.clear()
        self._retries.clear()
        self.remote_closed = True
        if not self.recv_channel.closed:
            self.recv_channel.close()
        self.tcp.forget(self)
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            fluid.on_conn_closed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Connection({self.local[0]}:{self.local[1]} <-> "
            f"{self.remote[0]}:{self.remote[1]}, {self.state})"
        )


class Listener:
    """A listening endpoint with a backlog of established connections."""

    def __init__(self, tcp: "TcpLayer", local: Endpoint, backlog: int = 128) -> None:
        self.tcp = tcp
        self.local = local
        self.backlog = backlog
        self.accept_channel = Channel(tcp.stack.sim, name=f"tcp.accept/{local}")
        self.closed = False

    def accept(self) -> Signal:
        """Signal that fires with the next established :class:`Connection`."""
        return self.accept_channel.get()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.tcp.remove_listener(self)
        self.accept_channel.close()


class TcpLayer:
    """Per-stack TCP: demux tables and packet handling."""

    EPHEMERAL_BASE = 49152

    def __init__(self, stack, explicit_acks: bool = False) -> None:
        self.stack = stack
        #: When True, data segments are acknowledged by real 40-byte
        #: packets on the reverse path instead of the delivery-time
        #: window credit (see the module docstring's trade-off note).
        self.explicit_acks = explicit_acks
        self._listeners: Dict[Tuple[int, int], Listener] = {}
        self._conns: Dict[Tuple[int, int, int, int], Connection] = {}
        self._next_ephemeral: Dict[int, int] = {}

    # -- port management -------------------------------------------------
    def alloc_ephemeral_port(self, local_ip: IPv4Address) -> int:
        key = local_ip.value
        port = self._next_ephemeral.get(key, self.EPHEMERAL_BASE)
        start = port
        while (key, port) in self._listeners or self._port_in_use(key, port):
            port = port + 1 if port < 65535 else self.EPHEMERAL_BASE
            if port == start:
                raise SocketError("EADDRNOTAVAIL", f"no free ports on {local_ip}")
        self._next_ephemeral[key] = port + 1 if port < 65535 else self.EPHEMERAL_BASE
        return port

    def _port_in_use(self, ip_value: int, port: int) -> bool:
        for (lip, lport, _rip, _rport) in self._conns:
            if lport == port and lip == ip_value:
                return True
        return False

    # -- listener management ----------------------------------------------
    def listen(self, local: Endpoint, backlog: int = 128) -> Listener:
        key = (local[0].value, local[1])
        if key in self._listeners:
            raise AddressInUse(f"{local[0]}:{local[1]}")
        listener = Listener(self, local, backlog)
        self._listeners[key] = listener
        return listener

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.pop((listener.local[0].value, listener.local[1]), None)

    def _find_listener(self, dst: IPv4Address, dport: int) -> Optional[Listener]:
        listener = self._listeners.get((dst.value, dport))
        if listener is None:
            listener = self._listeners.get((0, dport))  # INADDR_ANY
        return listener

    # -- connection management ---------------------------------------------
    def connect(self, local: Endpoint, remote: Endpoint, window: int = DEFAULT_WINDOW) -> Tuple[Connection, Signal]:
        """Open an active connection; returns (conn, completion signal).

        The signal triggers with the connection on success or with a
        :class:`SocketError` instance on failure (refused / timeout).
        """
        key = (local[0].value, local[1], remote[0].value, remote[1])
        if key in self._conns:
            raise AddressInUse(f"4-tuple {key} in use")
        conn = Connection(self, local, remote, window=window)
        sig = Signal(self.stack.sim, name=f"tcp.connect/{local}->{remote}")
        conn.connect_signal = sig
        self._conns[key] = conn
        self._send_syn(conn, attempt=1)
        return conn, sig

    def _send_syn(self, conn: Connection, attempt: int) -> None:
        if conn.state is not Connection.CONNECTING:
            return
        if attempt > SYN_RETRIES:
            conn._fail_reset("connect timed out")
            return
        pkt = acquire(
            conn.local[0],
            conn.remote[0],
            PROTO_TCP,
            TCP_HEADER,
            sport=conn.local[1],
            dport=conn.remote[1],
            kind=KIND_SYN,
        )
        pkt.on_drop = None  # the SYN timer below covers loss
        self.stack.send_packet(pkt)
        self.stack.sim.schedule(SYN_RTO * attempt, self._syn_timer, conn, attempt)

    def _syn_timer(self, conn: Connection, attempt: int) -> None:
        if conn.state is Connection.CONNECTING:
            self._send_syn(conn, attempt + 1)

    def forget(self, conn: Connection) -> None:
        self._conns.pop(
            (conn.local[0].value, conn.local[1], conn.remote[0].value, conn.remote[1]),
            None,
        )

    @property
    def connections(self) -> Dict[Tuple[int, int, int, int], Connection]:
        return dict(self._conns)

    # -- packet ingress -----------------------------------------------------
    def handle_packet(self, pkt: Packet) -> None:
        key = (pkt.dst.value, pkt.dport, pkt.src.value, pkt.sport)
        conn = self._conns.get(key)
        kind = pkt.kind

        if kind == KIND_SYN:
            if conn is not None:
                # Duplicate SYN: our SYNACK was lost; resend it.
                self._send_synack(conn)
                return
            listener = self._find_listener(pkt.dst, pkt.dport)
            if listener is None or listener.closed:
                self._send_rst(pkt)
                return
            if len(listener.accept_channel) >= listener.backlog:
                self._send_rst(pkt)
                return
            server_conn = Connection(
                self, local=(pkt.dst, pkt.dport), remote=(pkt.src, pkt.sport)
            )
            server_conn.state = Connection.ESTABLISHED
            self._conns[key] = server_conn
            self._send_synack(server_conn)
            listener.accept_channel.put(server_conn)
            return

        if conn is None:
            if kind not in (KIND_RST, KIND_ACK):
                self._send_rst(pkt)
            return

        if kind == KIND_SYNACK:
            if conn.state is Connection.CONNECTING:
                conn.state = Connection.ESTABLISHED
                if conn.connect_signal is not None:
                    sig, conn.connect_signal = conn.connect_signal, None
                    sig.trigger(conn)
                conn._pump()
            return

        if kind == KIND_RST:
            conn.handle_rst()
            return

        if kind in (KIND_DATA, KIND_FIN):
            conn.handle_data(kind, pkt.payload)
            return

        if kind == KIND_ACK:
            seg = pkt.payload
            seg.ack_hook(seg)
            return

    def _send_synack(self, conn: Connection) -> None:
        pkt = acquire(
            conn.local[0],
            conn.remote[0],
            PROTO_TCP,
            TCP_HEADER,
            sport=conn.local[1],
            dport=conn.remote[1],
            kind=KIND_SYNACK,
        )
        pkt.on_drop = None  # client SYN timer recovers
        self.stack.send_packet(pkt)

    def _send_rst(self, offending: Packet) -> None:
        pkt = acquire(
            offending.dst,
            offending.src,
            PROTO_TCP,
            TCP_HEADER,
            sport=offending.dport,
            dport=offending.sport,
            kind=KIND_RST,
        )
        pkt.on_drop = None
        self.stack.send_packet(pkt)
