"""POSIX-flavoured socket API over the emulated transports.

This is the surface the studied applications program against, and the
surface that P2PLab's modified libc intercepts (paper Fig. 5 shows the
call order: ``socket -> bind -> connect`` / ``socket -> bind -> listen
-> accept``). Applications normally use :mod:`repro.virt.libc`, which
wraps these calls with syscall costs and ``BINDIP`` rewriting; tests
and low-level code may use this API directly.

Blocking calls return a :class:`~repro.sim.process.Signal`; processes
``yield`` on it. ``connect``'s signal triggers with the socket itself
on success or a :class:`~repro.errors.SocketError` *instance* on
failure (yielding exceptions as values keeps generator code simple);
:func:`raise_if_error` converts.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

from repro.errors import (
    AddressNotAvailable,
    InvalidSocketState,
    SocketError,
)
from repro.net.addr import IPv4Address, ip
from repro.net.tcp import Connection, DEFAULT_WINDOW, Listener
from repro.net.udp import UdpEndpoint
from repro.sim.process import Signal

#: Wildcard bind address (INADDR_ANY).
ANY = IPv4Address(0)

AddrPort = Tuple[Union[IPv4Address, str], int]


def raise_if_error(value: Any) -> Any:
    """Re-raise a :class:`SocketError` received as a signal value."""
    if isinstance(value, SocketError):
        raise value
    return value


class Socket:
    """An emulated socket (TCP stream or UDP datagram)."""

    TCP = "tcp"
    UDP = "udp"

    def __init__(self, stack, type: str = TCP, window: int = DEFAULT_WINDOW) -> None:
        if type not in (Socket.TCP, Socket.UDP):
            raise InvalidSocketState(f"unknown socket type {type!r}")
        self.stack = stack
        self.type = type
        self.window = window
        self.local: Optional[Tuple[IPv4Address, int]] = None
        self._listener: Optional[Listener] = None
        self._conn: Optional[Connection] = None
        self._udp: Optional[UdpEndpoint] = None
        self.closed = False

    # -- shared ------------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise InvalidSocketState("operation on closed socket")

    def bind(self, addr: AddrPort) -> None:
        """Bind to ``(ip, port)``; ip may be :data:`ANY`, port may be 0
        (ephemeral). Validates the address is configured locally."""
        self._check_open()
        if self.local is not None:
            raise InvalidSocketState("socket already bound")
        a, port = ip(addr[0]), int(addr[1])
        if a != ANY and not self.stack.has_address(a):
            raise AddressNotAvailable(str(a))
        if self.type == Socket.UDP:
            if port == 0:
                port = self.stack.udp.alloc_ephemeral_port(a)
            self._udp = self.stack.udp.bind((a, port))
            self.local = (a, port)
        else:
            if port == 0:
                port = self.stack.tcp.alloc_ephemeral_port(a)
            self.local = (a, port)

    # -- TCP ------------------------------------------------------------------
    def listen(self, backlog: int = 128) -> None:
        self._check_open()
        if self.type != Socket.TCP:
            raise InvalidSocketState("listen on non-TCP socket")
        if self._conn is not None or self._listener is not None:
            raise InvalidSocketState("socket already active")
        if self.local is None:
            raise InvalidSocketState("listen before bind")
        self._listener = self.stack.tcp.listen(self.local, backlog=backlog)

    def accept(self) -> Signal:
        """Signal firing with a new connected :class:`Socket` (or None
        if the listener closes)."""
        self._check_open()
        if self._listener is None:
            raise InvalidSocketState("accept on non-listening socket")
        out = Signal(self.stack.sim, name="socket.accept")

        def on_conn(conn: Optional[Connection]) -> None:
            if conn is None:
                out.trigger(None)
                return
            sock = Socket(self.stack, Socket.TCP)
            sock.local = conn.local
            sock._conn = conn
            out.trigger(sock)

        self._listener.accept().wait_callback(on_conn)
        return out

    def connect(self, addr: AddrPort) -> Signal:
        """Start connecting; signal fires with this socket on success or
        a :class:`SocketError` instance on refusal/timeout."""
        self._check_open()
        if self.type != Socket.TCP:
            raise InvalidSocketState("connect on non-TCP socket")
        if self._conn is not None or self._listener is not None:
            raise InvalidSocketState("socket already active")
        remote = (ip(addr[0]), int(addr[1]))
        if self.local is None:
            # Implicit bind: pick a source address the OS would choose —
            # the interface primary (P2PLab's libc forces BINDIP instead).
            src = self.stack.iface.primary
            if src is None:
                raise AddressNotAvailable("no local address configured")
            self.local = (src, self.stack.tcp.alloc_ephemeral_port(src))
        conn, sig = self.stack.tcp.connect(self.local, remote, window=self.window)
        self._conn = conn
        out = Signal(self.stack.sim, name="socket.connect")

        def on_result(value: Any) -> None:
            out.trigger(self if isinstance(value, Connection) else value)

        sig.wait_callback(on_result)
        return out

    def send(self, payload: Any, size: int) -> Signal:
        """Send one message; signal fires when admitted to the network."""
        self._check_open()
        if self._conn is None:
            raise InvalidSocketState("send on unconnected socket")
        return self._conn.send(payload, size)

    def recv(self) -> Signal:
        """Signal firing with ``(payload, size)`` or ``None`` at EOF."""
        self._check_open()
        if self._conn is None:
            raise InvalidSocketState("recv on unconnected socket")
        return self._conn.recv()

    @property
    def connection(self) -> Optional[Connection]:
        return self._conn

    @property
    def peer(self) -> Optional[Tuple[IPv4Address, int]]:
        return self._conn.remote if self._conn is not None else None

    # -- UDP ---------------------------------------------------------------------
    def sendto(self, payload: Any, size: int, addr: AddrPort) -> None:
        self._check_open()
        if self.type != Socket.UDP:
            raise InvalidSocketState("sendto on non-UDP socket")
        if self._udp is None:
            src = self.stack.iface.primary
            if src is None:
                raise AddressNotAvailable("no local address configured")
            self.bind((src, 0))
        assert self._udp is not None
        self._udp.sendto(payload, size, (ip(addr[0]), int(addr[1])))

    def recvfrom(self) -> Signal:
        self._check_open()
        if self._udp is None:
            raise InvalidSocketState("recvfrom before bind")
        return self._udp.recvfrom()

    # -- teardown ------------------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._listener is not None:
            self._listener.close()
        if self._conn is not None:
            self._conn.close()
        if self._udp is not None:
            self._udp.close()

    def abort(self) -> None:
        """RST-close (used when a peer misbehaves)."""
        if self._conn is not None:
            self._conn.abort()
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = (
            "listening" if self._listener else
            "connected" if self._conn else
            "udp" if self._udp else "fresh"
        )
        return f"Socket({self.type}, {role}, local={self.local})"
