"""Packet capture on a network stack (``tcpdump`` for the emulation).

A sniffer attaches to the stack's packet-tap seam
(:meth:`~repro.net.stack.NetworkStack.add_tap`), records packet
headers (never payloads — like a real ``tcpdump -s 64``), and supports
BPF-ish filtering by protocol, address and port. Used for debugging
emulated applications and in tests asserting what actually crossed
the wire.

Tap placement matters: egress taps fire *after* the outbound firewall
verdict, so packets denied by an ipfw rule never appear in a capture
(exactly like ``tcpdump`` on a real interface, which sees traffic
after the firewall on the outbound path). Ingress taps fire on wire
arrival, *before* the inbound verdict — the packet demonstrably
crossed the wire even if the local firewall then drops it.

Example
-------
>>> from repro.net.sniffer import Sniffer              # doctest: +SKIP
>>> sniffer = Sniffer(stack, proto="tcp", port=6881)   # doctest: +SKIP
>>> ... run experiment ...                             # doctest: +SKIP
>>> sniffer.stop()                                     # doctest: +SKIP
>>> for cap in sniffer.captured[:10]:                  # doctest: +SKIP
...     print(cap)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.net.addr import IPv4Address, ip
from repro.net.ipfw import DIR_IN, DIR_OUT
from repro.net.packet import Packet


@dataclass(frozen=True)
class Capture:
    """One captured packet header."""

    time: float
    direction: str  # "out" or "in"
    src: IPv4Address
    sport: int
    dst: IPv4Address
    dport: int
    proto: str
    kind: str
    size: int

    def __str__(self) -> str:
        return (
            f"{self.time:12.6f} {self.direction:>3} "
            f"{self.src}:{self.sport} > {self.dst}:{self.dport} "
            f"{self.proto}/{self.kind} len={self.size}"
        )


class Sniffer:
    """Tap a stack's send/receive paths with optional filters."""

    def __init__(
        self,
        stack,
        proto: Optional[str] = None,
        host: Union[IPv4Address, str, None] = None,
        port: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        proto:
            Capture only this protocol (``"tcp"``/``"udp"``/``"icmp"``).
        host:
            Capture only packets whose src *or* dst is this address.
        port:
            Capture only packets whose sport or dport matches.
        max_packets:
            Stop capturing after this many packets (the tap stays
            installed but records nothing further).
        """
        self.stack = stack
        self.proto = proto
        self.host = ip(host) if host is not None else None
        self.port = port
        self.max_packets = max_packets
        self.captured: List[Capture] = []
        self.dropped_by_filter = 0
        self._active = True
        stack.add_tap(self._tap_out, direction=DIR_OUT)
        stack.add_tap(self._tap_in, direction=DIR_IN)

    # ------------------------------------------------------------------
    def _matches(self, pkt: Packet) -> bool:
        if self.proto is not None and pkt.proto != self.proto:
            return False
        if self.host is not None and pkt.src != self.host and pkt.dst != self.host:
            return False
        if self.port is not None and pkt.sport != self.port and pkt.dport != self.port:
            return False
        return True

    def _record(self, pkt: Packet, direction: str) -> None:
        if not self._active:
            return
        if self.max_packets is not None and len(self.captured) >= self.max_packets:
            return
        if not self._matches(pkt):
            self.dropped_by_filter += 1
            return
        self.captured.append(
            Capture(
                time=self.stack.sim.now,
                direction=direction,
                src=pkt.src,
                sport=pkt.sport,
                dst=pkt.dst,
                dport=pkt.dport,
                proto=pkt.proto,
                kind=pkt.kind,
                size=pkt.size,
            )
        )

    def _tap_out(self, pkt: Packet) -> None:
        self._record(pkt, "out")

    def _tap_in(self, pkt: Packet) -> None:
        self._record(pkt, "in")

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Remove the tap (captures remain readable)."""
        if not self._active:
            return
        self._active = False
        self.stack.remove_tap(self._tap_out)
        self.stack.remove_tap(self._tap_in)

    def total_bytes(self, direction: Optional[str] = None) -> int:
        return sum(
            c.size
            for c in self.captured
            if direction is None or c.direction == direction
        )

    def __len__(self) -> int:
        return len(self.captured)

    def dump(self, limit: Optional[int] = None) -> str:
        """tcpdump-style text rendering of the capture."""
        rows = self.captured if limit is None else self.captured[:limit]
        return "\n".join(str(c) for c in rows)
