"""Per-physical-node network stack.

Ties together one interface (with virtual-node aliases), the node's
IPFW firewall with its Dummynet pipes, the transports, and the switch
uplink. This is where the paper's *decentralized* emulation model
lives: "each physical node is in charge of the network emulation for
its virtual nodes" — outgoing packets are shaped by the sender's rules,
incoming packets by the receiver's rules, and nothing central exists.

Packet walk for ``A -> B`` (different physical nodes)::

    A.send_packet
      └ A.fw.evaluate(out)  -> rule-scan latency + matched pipes
          └ pipe chain (e.g. vnode upload pipe, inter-group delay pipe)
              └ switch: A's tx port pipe -> B's rx port pipe
                  └ B.receive_from_wire
                      └ B.fw.evaluate(in) -> latency + matched pipes
                          └ pipe chain (e.g. vnode download pipe)
                              └ transport demux (tcp/udp/icmp)

Loopback traffic (both addresses on this stack) skips the firewall and
the switch, as FreeBSD's ``lo0`` short-circuit does; it costs a fixed
small latency calibrated against the paper's 10.22 µs connect cycle.
"""

from __future__ import annotations

from sys import getrefcount
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.addr import IPv4Address, ip
from repro.net.ipfw import DIR_IN, DIR_OUT, Firewall
from repro.net.nic import Interface
from repro.net.packet import (
    ICMP_HEADER,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    acquire,
    release,
    retag,
)
from repro.net.pipe import DummynetPipe
from repro.net.switch import Switch
from repro.net.tcp import TcpLayer
from repro.net.udp import UdpLayer
from repro.obs.flight import NULL_FLIGHT
from repro.sim.process import Signal

#: Cost of scanning one IPFW rule, calibrated to Figure 6 of the paper
#: (~5 ms of extra RTT at 50 000 rules, two firewall passes per RTT).
DEFAULT_RULE_EVAL_COST = 50e-9

#: One-way loopback latency, calibrated so the connect/disconnect
#: microbenchmark lands at the paper's 10.22 µs (see repro.virt.libc).
DEFAULT_LOOPBACK_DELAY = 4.255e-6


class NetworkStack:
    """The network personality of one physical node."""

    def __init__(
        self,
        sim,
        name: str,
        switch: Optional[Switch] = None,
        rule_eval_cost: float = DEFAULT_RULE_EVAL_COST,
        loopback_delay: float = DEFAULT_LOOPBACK_DELAY,
        tcp_explicit_acks: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        #: Flight recorder, cached at construction (NULL when disabled).
        self.flight = getattr(sim, "flight", NULL_FLIGHT)
        #: Packet taps (sniffers). Egress taps fire *after* the outgoing
        #: firewall verdict allows the packet — captures reflect what
        #: actually crossed the wire, never ipfw-denied traffic.
        #: Ingress taps fire on wire arrival, before the inbound verdict
        #: (the packet did cross the wire even if ipfw then denies it).
        self._egress_taps: List[Callable[[Packet], None]] = []
        self._ingress_taps: List[Callable[[Packet], None]] = []
        self.iface = Interface("eth0")
        #: Cached live view of the interface's configured address
        #: values (the set is mutated in place by alias changes, never
        #: rebound) — per-packet local-destination checks are a raw set
        #: membership with no method call.
        self._local_values = self.iface.local_values
        #: Same contract for the interface's alias blocks: the live
        #: list, consulted (via the interface, which promotes hits into
        #: the set) only when the set misses and blocks exist.
        self._local_blocks = self.iface.alias_blocks
        self.fw = Firewall(name=f"ipfw/{name}", metrics=getattr(sim, "metrics", None))
        self.tcp = TcpLayer(self, explicit_acks=tcp_explicit_acks)
        self.udp = UdpLayer(self)
        self.switch = switch
        self.rule_eval_cost = rule_eval_cost
        self.loopback_delay = loopback_delay
        self._icmp_pending: Dict[int, Tuple[float, Signal]] = {}
        self._icmp_ident = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_denied = 0
        if switch is not None:
            switch.attach(self)

    # -- addressing ------------------------------------------------------
    def set_admin_address(self, addr: Union[IPv4Address, str]) -> IPv4Address:
        """Set the primary (administration) address of the node."""
        addr = ip(addr)
        self.iface.set_primary(addr)
        if self.switch is not None:
            self.switch.register_address(addr, self)
        return addr

    def add_address(self, addr: Union[IPv4Address, str]) -> IPv4Address:
        """Add a virtual-node alias address."""
        addr = self.iface.add_alias(addr)
        if self.switch is not None:
            self.switch.register_address(addr, self)
        return addr

    def add_address_block(self, start: int, end: int) -> None:
        """Add the contiguous alias run ``[start, end)`` in one call —
        the streaming deployment path's O(1)-per-slice registration
        (interface aliases + switch learning together)."""
        self.iface.add_alias_block(start, end)
        if self.switch is not None:
            self.switch.register_address_block(start, end, self)

    def is_local_value(self, value: int) -> bool:
        """Is ``value`` one of this stack's configured addresses?
        Set-first with block fallback — the out-of-line twin of the
        inlined per-packet check in :meth:`send`."""
        return value in self._local_values or self.iface.check_block(value)

    def remove_address(self, addr: Union[IPv4Address, str]) -> None:
        addr = ip(addr)
        self.iface.remove_alias(addr)
        if self.switch is not None:
            self.switch.unregister_address(addr)

    def has_address(self, addr: Union[IPv4Address, str, int]) -> bool:
        return self.iface.has_address(addr)

    # -- packet taps (sniffers) ------------------------------------------
    def add_tap(
        self, tap: Callable[[Packet], None], direction: str = DIR_OUT
    ) -> None:
        """Attach a packet tap. ``direction="out"`` observes egress
        *after* the outgoing firewall allows the packet; ``"in"``
        observes wire arrivals before the inbound verdict."""
        taps = self._egress_taps if direction == DIR_OUT else self._ingress_taps
        taps.append(tap)
        # A tap may retain packet objects (sniffers hand them to user
        # code), so packet recycling is no longer safe anywhere on this
        # simulator: clear the sim-wide reuse flag permanently.
        if getattr(self.sim, "allow_packet_reuse", False):
            self.sim.allow_packet_reuse = False
        # A tap must observe real packets: any fluid flow touching this
        # stack de-fluidizes, materializing its remaining bytes back
        # onto the packet path at the flow's current offset.
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            fluid.on_tap_attached(self)

    def remove_tap(self, tap: Callable[[Packet], None]) -> None:
        """Detach a tap from whichever direction it is attached to."""
        for taps in (self._egress_taps, self._ingress_taps):
            if tap in taps:
                taps.remove(tap)

    # -- egress ------------------------------------------------------------
    def send_packet(self, pkt: Packet) -> None:
        """Emit a packet from this node (transport layers call this)."""
        self.packets_sent += 1
        iface = self.iface
        iface.tx_packets += 1
        iface.tx_bytes += pkt.size
        sim = self.sim
        flight = self.flight
        if flight.enabled:
            flight.send(pkt, self.name, sim.now)
        if pkt.src.value == pkt.dst.value:
            # True loopback (same identity): no firewall, no pipes,
            # constant kernel latency.
            if flight.enabled:
                flight.loopback(
                    pkt, self.name, sim.now, sim.now + self.loopback_delay
                )
            if self._egress_taps:
                for tap in self._egress_taps:
                    tap(pkt)
            sim.schedule(self.loopback_delay, self._deliver_local, pkt)
            return
        verdict = self.fw.evaluate(pkt, DIR_OUT)
        extra = verdict.scanned * self.rule_eval_cost
        if not verdict.allowed:
            self.packets_denied += 1
            if flight.enabled:
                # The scan happened but the packet goes nowhere: record
                # the verdict detail as an instant, then the denial. No
                # sim latency is charged (no event is scheduled).
                flight.ipfw(
                    pkt, self.name, DIR_OUT, sim.now, sim.now,
                    verdict.scanned, verdict.matched, self.fw.indexed,
                )
                flight.deny(pkt, self.name, sim.now, DIR_OUT)
            if pkt.on_drop is not None:
                pkt.on_drop(pkt)
            return
        if flight.enabled:
            flight.ipfw(
                pkt, self.name, DIR_OUT, sim.now, sim.now + extra,
                verdict.scanned, verdict.matched, self.fw.indexed,
            )
        if self._egress_taps:
            # After the allow verdict: denied packets never reach taps.
            for tap in self._egress_taps:
                tap(pkt)
        if pkt.dst.value in self._local_values or (
            self._local_blocks and self.iface.check_block(pkt.dst.value)
        ):
            # Co-hosted virtual nodes: traffic stays on this host (lo0)
            # but IPFW/Dummynet still shape it in both directions — this
            # is what keeps folded experiments faithful (Figure 9). The
            # loopback kernel cost also bounds callback recursion depth.
            if flight.enabled:
                # Boundaries use the same arithmetic _run_chain's
                # schedule uses, so hops tile exactly.
                flight.loopback(
                    pkt,
                    self.name,
                    sim.now + extra,
                    sim.now + (extra + self.loopback_delay),
                )
            self._run_chain(
                pkt, verdict.pipes, 0, self.receive_from_wire, extra + self.loopback_delay
            )
            return
        self._run_chain(pkt, verdict.pipes, 0, self._to_switch, extra)

    def _run_chain(
        self,
        pkt: Packet,
        pipes: Tuple[DummynetPipe, ...],
        index: int,
        final: Callable[[Packet], None],
        extra_delay: float,
    ) -> None:
        """Walk the packet through ``pipes[index:]`` then call ``final``.

        ``extra_delay`` (firewall rule-scan latency) is folded into the
        first hop to avoid a separate kernel event.
        """
        if index >= len(pipes):
            if extra_delay > 0.0:
                self.sim.schedule(extra_delay, final, pkt)
            else:
                final(pkt)
            return
        pipe = pipes[index]
        if index + 1 >= len(pipes):
            next_cb = final
        else:
            def next_cb(p: Packet, _i: int = index + 1) -> None:
                self._run_chain(p, pipes, _i, final, 0.0)
        if extra_delay > 0.0:
            self.sim.schedule(extra_delay, self._pipe_hop, pipe, pkt, next_cb)
        else:
            self._pipe_hop(pipe, pkt, next_cb)

    @staticmethod
    def _pipe_hop(pipe: DummynetPipe, pkt: Packet, next_cb: Callable[[Packet], None]) -> None:
        if not pipe.transmit(pkt, next_cb) and pkt.on_drop is not None:
            pkt.on_drop(pkt)

    def _to_switch(self, pkt: Packet) -> None:
        if self.switch is None:
            if pkt.on_drop is not None:
                pkt.on_drop(pkt)
            return
        if not self.switch.forward(pkt, self) and pkt.on_drop is not None:
            pkt.on_drop(pkt)

    # -- ingress -------------------------------------------------------------
    def receive_from_wire(self, pkt: Packet) -> None:
        """Called by the switch when a packet arrives at this node."""
        sim = self.sim
        flight = self.flight
        if self._ingress_taps:
            # Before the inbound verdict: the packet did cross the wire.
            for tap in self._ingress_taps:
                tap(pkt)
        verdict = self.fw.evaluate(pkt, DIR_IN)
        extra = verdict.scanned * self.rule_eval_cost
        if not verdict.allowed:
            self.packets_denied += 1
            if flight.enabled:
                flight.ipfw(
                    pkt, self.name, DIR_IN, sim.now, sim.now,
                    verdict.scanned, verdict.matched, self.fw.indexed,
                )
                flight.deny(pkt, self.name, sim.now, DIR_IN)
            if pkt.on_drop is not None:
                pkt.on_drop(pkt)
            return
        if flight.enabled:
            flight.ipfw(
                pkt, self.name, DIR_IN, sim.now, sim.now + extra,
                verdict.scanned, verdict.matched, self.fw.indexed,
            )
        self._run_chain(pkt, verdict.pipes, 0, self._deliver_local, extra)

    def _deliver_local(self, pkt: Packet) -> None:
        # Hoisted attribute lookups: this is the per-packet sink for
        # every delivery on the node.
        iface = self.iface
        iface.rx_packets += 1
        iface.rx_bytes += pkt.size
        self.packets_received += 1
        if self.flight.enabled:
            self.flight.deliver(pkt, self.name, self.sim.now)
        proto = pkt.proto
        if proto == PROTO_TCP:
            self.tcp.handle_packet(pkt)
        elif proto == PROTO_UDP:
            self.udp.handle_packet(pkt)
        elif proto == PROTO_ICMP:
            self._handle_icmp(pkt)
        # The transports above never retain the packet object (they keep
        # payloads/segments). Recycle it if we can *prove* nothing else
        # does: exactly 3 refs = the kernel event's args tuple + our
        # parameter + getrefcount's argument. Any tap, flight hook or
        # experiment that kept a reference pushes the count higher and
        # the packet is simply left to the GC — always safe.
        if (
            pkt.pooled
            and getattr(self.sim, "allow_packet_reuse", False)
            and getrefcount(pkt) == 3
        ):
            release(pkt)

    # -- ICMP echo (ping) -------------------------------------------------------
    def _handle_icmp(self, pkt: Packet) -> None:
        if pkt.kind == "echo":
            if pkt.pooled and getattr(self.sim, "allow_packet_reuse", False):
                # Turnaround reuse: the request dies in this callback,
                # so flip it in place into the reply (fresh id — same
                # one the constructed reply would have drawn).
                reply = retag(pkt, pkt.dst, pkt.src, "echoreply")
            else:
                reply = Packet(
                    src=pkt.dst,
                    dst=pkt.src,
                    proto=PROTO_ICMP,
                    size=pkt.size,
                    payload=pkt.payload,
                    kind="echoreply",
                )
            self.send_packet(reply)
        elif pkt.kind == "echoreply":
            pending = self._icmp_pending.pop(pkt.payload, None)
            if pending is not None:
                sent_at, sig = pending
                sig.trigger(self.sim.now - sent_at)

    def send_echo(
        self,
        src: Union[IPv4Address, str],
        dst: Union[IPv4Address, str],
        size: int = 64,
    ) -> Signal:
        """Send one ICMP echo; the signal fires with the RTT in seconds,
        or never if the echo or its reply is lost (wait with a timeout).
        """
        src, dst = ip(src), ip(dst)
        self._icmp_ident += 1
        ident = self._icmp_ident
        sig = Signal(self.sim, name=f"ping/{dst}#{ident}")
        self._icmp_pending[ident] = (self.sim.now, sig)
        pkt = acquire(
            src,
            dst,
            PROTO_ICMP,
            size + ICMP_HEADER,
            payload=ident,
            kind="echo",
        )
        self.send_packet(pkt)
        return sig

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkStack({self.name!r}, addrs={len(self.iface)}, rules={len(self.fw)})"
