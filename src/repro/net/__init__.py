"""Network emulation substrate.

Models the parts of the network P2PLab controls:

* :mod:`repro.net.addr` — IPv4 addresses and prefixes;
* :mod:`repro.net.packet` — packets/messages flowing through the emulation;
* :mod:`repro.net.nic` — interfaces with alias addresses (paper Fig. 4);
* :mod:`repro.net.pipe` — Dummynet pipes: bandwidth, delay, loss, queue;
* :mod:`repro.net.ipfw` — IPFW-style firewall with linear rule scan
  (paper Fig. 6);
* :mod:`repro.net.switch` — the physical LAN connecting physical nodes;
* :mod:`repro.net.stack` — per-physical-node network stack;
* :mod:`repro.net.tcp` / :mod:`repro.net.udp` — transports;
* :mod:`repro.net.socket_api` — the emulated POSIX-ish socket API that
  applications (and the intercepting libc) use;
* :mod:`repro.net.ping` — ICMP-echo RTT probes.
"""

from repro.net.addr import IPv4Address, IPv4Network, ip, network
from repro.net.ipfw import Firewall, Ipfw, Rule
from repro.net.nic import Interface
from repro.net.packet import Packet
from repro.net.pipe import DummynetPipe
from repro.net.sniffer import Sniffer
from repro.net.stack import NetworkStack
from repro.net.switch import Switch

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "ip",
    "network",
    "Interface",
    "Packet",
    "DummynetPipe",
    "Firewall",
    "Ipfw",
    "Rule",
    "Sniffer",
    "Switch",
    "NetworkStack",
]
