"""UDP datagram transport: unreliable, unordered-if-the-network-reorders,
connectionless. Used by the ICMP-less measurement utilities and available
to applications (e.g. a UDP tracker variant)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import AddressInUse
from repro.net.addr import IPv4Address
from repro.net.packet import Packet, PROTO_UDP, UDP_HEADER, acquire
from repro.sim.process import Signal
from repro.sim.resources import Channel

Endpoint = Tuple[IPv4Address, int]


class UdpEndpoint:
    """A bound UDP port with a receive queue."""

    def __init__(self, udp: "UdpLayer", local: Endpoint) -> None:
        self.udp = udp
        self.local = local
        self.recv_channel = Channel(udp.stack.sim, name=f"udp.recv/{local}")
        self.closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def sendto(self, payload, size: int, remote: Endpoint) -> None:
        """Fire-and-forget one datagram."""
        pkt = acquire(
            self.local[0],
            remote[0],
            PROTO_UDP,
            size + UDP_HEADER,
            sport=self.local[1],
            dport=remote[1],
            payload=payload,
        )
        self.datagrams_sent += 1
        self.udp.stack.send_packet(pkt)

    def recvfrom(self) -> Signal:
        """Signal firing with ``(payload, size, (src_ip, src_port))``."""
        return self.recv_channel.get()

    def deliver(self, pkt: Packet) -> None:
        if self.closed:
            return
        self.datagrams_received += 1
        self.recv_channel.put((pkt.payload, pkt.size - UDP_HEADER, (pkt.src, pkt.sport)))

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.udp.remove(self)
        self.recv_channel.close()


class UdpLayer:
    """Per-stack UDP demux table."""

    EPHEMERAL_BASE = 49152

    def __init__(self, stack) -> None:
        self.stack = stack
        self._endpoints: Dict[Tuple[int, int], UdpEndpoint] = {}
        self._next_ephemeral: Dict[int, int] = {}

    def bind(self, local: Endpoint) -> UdpEndpoint:
        key = (local[0].value, local[1])
        if key in self._endpoints:
            raise AddressInUse(f"udp {local[0]}:{local[1]}")
        ep = UdpEndpoint(self, local)
        self._endpoints[key] = ep
        return ep

    def alloc_ephemeral_port(self, local_ip: IPv4Address) -> int:
        key = local_ip.value
        port = self._next_ephemeral.get(key, self.EPHEMERAL_BASE)
        start = port
        while (key, port) in self._endpoints:
            port = port + 1 if port < 65535 else self.EPHEMERAL_BASE
            if port == start:
                raise AddressInUse(f"no free UDP ports on {local_ip}")
        self._next_ephemeral[key] = port + 1 if port < 65535 else self.EPHEMERAL_BASE
        return port

    def remove(self, ep: UdpEndpoint) -> None:
        self._endpoints.pop((ep.local[0].value, ep.local[1]), None)

    def find(self, dst: IPv4Address, dport: int) -> Optional[UdpEndpoint]:
        ep = self._endpoints.get((dst.value, dport))
        if ep is None:
            ep = self._endpoints.get((0, dport))  # INADDR_ANY
        return ep

    def handle_packet(self, pkt: Packet) -> None:
        ep = self.find(pkt.dst, pkt.dport)
        if ep is not None:
            ep.deliver(pkt)
        # No listener: a real stack would emit ICMP port-unreachable;
        # UDP senders here simply observe silence.
