"""Minimal IPv4 address / network types.

Purpose-built instead of :mod:`ipaddress`: the emulation compares and
hashes addresses on every packet hop, so addresses are interned plain
ints with a thin wrapper, and networks precompute their mask once.

The paper's namespace scheme (Fig. 4) uses an administration subnet
(192.168.38.0/24) and a virtual-node subnet (10.0.0.0/8); group
topologies carve /16 and /24 child networks out of the latter.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

from repro.errors import AddressError


class IPv4Address:
    """An IPv4 address backed by its 32-bit integer value."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self.value = value.value
            return
        if isinstance(value, str):
            value = _parse_dotted(value)
        if not isinstance(value, int):
            raise AddressError(f"cannot build address from {value!r}")
        if not 0 <= value <= 0xFFFFFFFF:
            raise AddressError(f"address out of range: {value:#x}")
        self.value = value

    @classmethod
    def from_value(cls, value: int) -> "IPv4Address":
        """Wrap an already-validated 32-bit value without the
        constructor's type dispatch — the streaming address generator's
        fast path (millions of calls per topology build)."""
        addr = cls.__new__(cls)
        addr.value = value
        return addr

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24 & 0xFF}.{v >> 16 & 0xFF}.{v >> 8 & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        if isinstance(other, str):
            return self.value == _parse_dotted(other)
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


def _parse_dotted(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class IPv4Network:
    """An IPv4 prefix (``10.1.3.0/24``) with O(1) membership tests."""

    __slots__ = ("address", "prefixlen", "mask", "_net")

    def __init__(self, spec: Union[str, Tuple[Union[str, int, IPv4Address], int]]) -> None:
        if isinstance(spec, str):
            if "/" not in spec:
                raise AddressError(f"network needs a /prefix: {spec!r}")
            addr_text, _, plen_text = spec.partition("/")
            addr = IPv4Address(addr_text)
            try:
                prefixlen = int(plen_text)
            except ValueError:
                raise AddressError(f"bad prefix length in {spec!r}") from None
        else:
            addr = IPv4Address(spec[0])
            prefixlen = int(spec[1])
        if not 0 <= prefixlen <= 32:
            raise AddressError(f"prefix length out of range: {prefixlen}")
        self.prefixlen = prefixlen
        self.mask = (0xFFFFFFFF << (32 - prefixlen)) & 0xFFFFFFFF if prefixlen else 0
        self._net = addr.value & self.mask
        if addr.value != self._net:
            raise AddressError(
                f"{addr}/{prefixlen} has host bits set (network is "
                f"{IPv4Address(self._net)}/{prefixlen})"
            )
        self.address = IPv4Address(self._net)

    def __contains__(self, addr: Union[IPv4Address, str, int]) -> bool:
        if not isinstance(addr, IPv4Address):
            addr = IPv4Address(addr)
        return (addr.value & self.mask) == self._net

    def contains_value(self, value: int) -> bool:
        """Membership test on a raw 32-bit value (hot path)."""
        return (value & self.mask) == self._net

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefixlen)

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th host address (1-based; 0 is the network address)."""
        if not 0 <= index < self.num_addresses:
            raise AddressError(f"host index {index} out of range for /{self.prefixlen}")
        return IPv4Address(self._net + index)

    def hosts(self, start: int = 1) -> Iterator[IPv4Address]:
        """Iterate host addresses starting at offset ``start``."""
        for i in range(start, self.num_addresses):
            yield IPv4Address(self._net + i)

    def subnets(self, new_prefixlen: int) -> Iterator["IPv4Network"]:
        """Iterate the child networks of the given longer prefix."""
        if new_prefixlen < self.prefixlen or new_prefixlen > 32:
            raise AddressError(
                f"cannot split /{self.prefixlen} into /{new_prefixlen}"
            )
        step = 1 << (32 - new_prefixlen)
        for base in range(self._net, self._net + self.num_addresses, step):
            yield IPv4Network((base, new_prefixlen))

    def overlaps(self, other: "IPv4Network") -> bool:
        shorter, longer = (self, other) if self.prefixlen <= other.prefixlen else (other, self)
        return (longer._net & shorter.mask) == shorter._net

    def contains_network(self, other: "IPv4Network") -> bool:
        """Is ``other`` fully inside this prefix? CIDR prefixes are
        power-of-two aligned, so two prefixes either nest or are
        disjoint — ``overlaps`` is containment one way or the other."""
        return self.prefixlen <= other.prefixlen and (other._net & self.mask) == self._net

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Network):
            return self._net == other._net and self.prefixlen == other.prefixlen
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._net, self.prefixlen))

    def __str__(self) -> str:
        return f"{self.address}/{self.prefixlen}"

    def __repr__(self) -> str:
        return f"IPv4Network('{self}')"


def ip(value: Union[int, str, IPv4Address]) -> IPv4Address:
    """Shorthand constructor: ``ip("10.0.0.1")``."""
    return value if isinstance(value, IPv4Address) else IPv4Address(value)


def network(spec: Union[str, IPv4Network]) -> IPv4Network:
    """Shorthand constructor: ``network("10.0.0.0/8")``."""
    return spec if isinstance(spec, IPv4Network) else IPv4Network(spec)
