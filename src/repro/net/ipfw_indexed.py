"""Backwards-compat shim: the hash-indexed rule table.

The indexed cost model now lives directly in
:class:`repro.net.ipfw.Firewall` behind the standard constructor —
``Ipfw(name, indexed=True)`` — so the ablation no longer needs a
parallel class. The paper context: "With IPFW, it is not possible to
evaluate the rules in a hierarchical way, or with a hash table",
making the linear scan (Figure 6) the scalability limit; ``indexed``
implements the counterfactual *accounting* (two hash probes plus the
candidate rules actually examined) while producing identical verdicts.

:class:`IndexedFirewall` remains for existing callers
(``bench_abl_rule_lookup`` etc.) as a trivial subclass.
"""

from __future__ import annotations

from repro.net.ipfw import Firewall


class IndexedFirewall(Firewall):
    """``Firewall(indexed=True)`` under its historical name."""

    def __init__(self, name: str = "ipfw-indexed", metrics=None) -> None:
        super().__init__(name=name, metrics=metrics, indexed=True)
