"""A hash-indexed rule table — the ablation IPFW cannot do.

The paper notes: "With IPFW, it is not possible to evaluate the rules
in a hierarchical way, or with a hash table", making the linear scan
(Figure 6) the scalability limit. This class implements the
counterfactual *cost model*: evaluation charges two hash probes plus
the candidate rules actually examined, instead of the full linear walk
IPFW pays. (Since :class:`~repro.net.ipfw.Firewall` already uses hash
indexes internally as a wall-clock shortcut while *charging* linear
cost, the only difference here is the accounting — which is exactly
the point of the ablation: same verdicts, different emulated latency.)

The ``bench_abl_rule_lookup`` benchmark quantifies what such a firewall
would have bought P2PLab.
"""

from __future__ import annotations

from typing import List

from repro.net.ipfw import (
    ACTION_ALLOW,
    ACTION_DENY,
    ACTION_PIPE,
    Firewall,
    Rule,
    Verdict,
)
from repro.net.packet import Packet
from repro.net.pipe import DummynetPipe


class IndexedFirewall(Firewall):
    """Firewall whose *emulated* lookup cost is O(1) per exact rule."""

    def __init__(self, name: str = "ipfw-indexed", metrics=None) -> None:
        super().__init__(name=name, metrics=metrics)

    def evaluate(self, packet: Packet, direction: str) -> Verdict:
        if self._dirty:
            self._refresh_positions()
        candidates: List[Rule] = []
        bucket = self._by_src.get(packet.src.value)
        if bucket is not None:
            candidates.extend(bucket)
        bucket = self._by_dst.get(packet.dst.value)
        if bucket is not None:
            candidates.extend(bucket)
        if self._generic:
            candidates.extend(self._generic)
        if len(candidates) > 1:
            positions = self._positions
            candidates.sort(key=lambda r: positions[id(r)])

        pipes: List[DummynetPipe] = []
        allowed = True
        # Two hash probes, then only the candidate rules are charged —
        # the cost a hash-indexed IPFW would pay.
        scanned = 2
        for rule in candidates:
            scanned += 1
            if not rule.matches(packet, direction):
                continue
            rule.hits += 1
            action = rule.action
            if action == ACTION_PIPE:
                pipes.append(rule.pipe)  # type: ignore[arg-type]
            elif action == ACTION_ALLOW:
                break
            elif action == ACTION_DENY:
                allowed = False
                break
        self.packets_evaluated += 1
        self.rules_scanned_total += scanned
        self._m_pkts.inc()
        self._m_scanned.inc(scanned)
        if not allowed:
            self._m_denied.inc()
        return Verdict(allowed, tuple(pipes), scanned)
