"""IPFW-style firewall with linear rule evaluation.

P2PLab configures Dummynet through FreeBSD's firewall: two ``pipe``
rules per hosted virtual node plus one delay rule per inter-group pair
(paper, "Network Emulation"). The paper stresses that IPFW evaluates
rules *linearly* — "it is not possible to evaluate the rules in a
hierarchical way, or with a hash table" — which makes the rule count
the main scalability limit (Figure 6). This module therefore keeps the
linear scan observable: every evaluation reports how many rules were
scanned, and the owning stack converts that into processing latency.

Pipe-rule semantics follow ``net.inet.ip.fw.one_pass=0``: after a
packet traverses a matching pipe it re-enters the firewall at the next
rule, so one packet can be shaped by several pipes (per-node access
link, then inter-group delay). With a single linear scan that collects
every matching pipe, the number of rules scanned equals the index where
evaluation terminates — identical to the re-injection accounting.

Hot path: a **verdict flow cache** memoises
``(src, dst, proto, direction) -> Verdict`` — the discrete-event
analogue of ipfw's dynamic/``check-state`` rules. Rules match on
exactly those four fields, so the key fully determines the verdict for
a given rule list; steady BitTorrent flows pay the linear scan once
and O(1) afterwards. A cache *hit replays* the original verdict's full
accounting (``scanned`` charge, per-rule ``hits``, registry counters),
so emulated latency, metrics snapshots and fig6's linear-vs-indexed
comparison are byte-identical with the cache on or off — only wall
clock changes. The cache is invalidated by every mutating operation
(``add``/``delete``/``flush``/``add_pipe``) and by flipping
``indexed``. ``REPRO_SLOW_PATH=1`` (see :mod:`repro.hotpath`) disables
it by default.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import FirewallError
from repro.hotpath import SLOW_PATH
from repro.net.addr import IPv4Address, IPv4Network
from repro.net.packet import Packet
from repro.net.pipe import DummynetPipe
from repro.obs.metrics import NULL_REGISTRY

#: Rule actions.
ACTION_PIPE = "pipe"
ACTION_ALLOW = "allow"
ACTION_DENY = "deny"
ACTION_COUNT = "count"

DIR_IN = "in"
DIR_OUT = "out"

AddrMatch = Union[IPv4Address, IPv4Network, None]


def _match_addr(matcher: AddrMatch, value: int) -> bool:
    if matcher is None:
        return True
    if type(matcher) is IPv4Network:
        return (value & matcher.mask) == matcher.address.value
    return matcher.value == value


def _compile_match(
    direction: Optional[str],
    proto: Optional[str],
    src: AddrMatch,
    dst: AddrMatch,
) -> Callable[[Packet, str], bool]:
    """Build a per-rule match closure specialised to the fields set.

    The generic :meth:`Rule.matches` walk re-tests every field (and its
    ``None``-ness) per packet; the closure captures the constants once
    and skips absent fields entirely — the precomputed match predicate
    of the hot-path overhaul.
    """
    src_exact = src.value if type(src) is IPv4Address else None
    dst_exact = dst.value if type(dst) is IPv4Address else None
    src_net = (src.mask, src.address.value) if type(src) is IPv4Network else None
    dst_net = (dst.mask, dst.address.value) if type(dst) is IPv4Network else None

    def match(packet: Packet, pdir: str) -> bool:
        if direction is not None and direction != pdir:
            return False
        if proto is not None and proto != packet.proto:
            return False
        if src_exact is not None:
            if packet.src.value != src_exact:
                return False
        elif src_net is not None:
            if (packet.src.value & src_net[0]) != src_net[1]:
                return False
        if dst_exact is not None:
            if packet.dst.value != dst_exact:
                return False
        elif dst_net is not None:
            if (packet.dst.value & dst_net[0]) != dst_net[1]:
                return False
        return True

    return match


class Rule:
    """One firewall rule, ordered by its rule number."""

    __slots__ = (
        "number", "action", "pipe", "proto", "src", "dst", "direction", "hits",
        "match",
    )

    def __init__(
        self,
        number: int,
        action: str,
        pipe: Optional[DummynetPipe] = None,
        proto: Optional[str] = None,
        src: AddrMatch = None,
        dst: AddrMatch = None,
        direction: Optional[str] = None,
    ) -> None:
        if action not in (ACTION_PIPE, ACTION_ALLOW, ACTION_DENY, ACTION_COUNT):
            raise FirewallError(f"unknown action {action!r}")
        if action == ACTION_PIPE and pipe is None:
            raise FirewallError("pipe action needs a pipe")
        if action != ACTION_PIPE and pipe is not None:
            raise FirewallError(f"{action!r} action cannot carry a pipe")
        if direction not in (None, DIR_IN, DIR_OUT):
            raise FirewallError(f"bad direction {direction!r}")
        self.number = number
        self.action = action
        self.pipe = pipe
        self.proto = proto
        self.src = src
        self.dst = dst
        self.direction = direction
        self.hits = 0
        #: Precompiled match predicate (same truth table as
        #: :meth:`matches`, with the per-field dispatch hoisted out of
        #: the per-packet path).
        self.match = _compile_match(direction, proto, src, dst)

    def matches(self, packet: Packet, direction: str) -> bool:
        """Does this rule match ``packet`` travelling ``direction``?"""
        if self.direction is not None and self.direction != direction:
            return False
        if self.proto is not None and self.proto != packet.proto:
            return False
        if not _match_addr(self.src, packet.src.value):
            return False
        if not _match_addr(self.dst, packet.dst.value):
            return False
        return True

    def __lt__(self, other: "Rule") -> bool:
        return self.number < other.number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.number:05d}", self.action]
        if self.pipe is not None:
            parts.append(self.pipe.name)
        if self.proto:
            parts.append(self.proto)
        parts.append(f"from {self.src if self.src is not None else 'any'}")
        parts.append(f"to {self.dst if self.dst is not None else 'any'}")
        if self.direction:
            parts.append(self.direction)
        return "Rule(" + " ".join(parts) + ")"


class Verdict:
    """Result of evaluating one packet against the rule list.

    ``matched`` carries the numbers of the rules that matched, in
    evaluation order — what ``ipfw show`` hit counters would attribute
    this packet to, and what the flight recorder reports per hop.
    """

    __slots__ = ("allowed", "pipes", "scanned", "matched")

    def __init__(
        self,
        allowed: bool,
        pipes: Tuple[DummynetPipe, ...],
        scanned: int,
        matched: Tuple[int, ...] = (),
    ) -> None:
        self.allowed = allowed
        self.pipes = pipes
        self.scanned = scanned
        self.matched = matched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Verdict(allowed={self.allowed}, pipes={len(self.pipes)}, "
            f"scanned={self.scanned}, matched={self.matched})"
        )


class Firewall:
    """Ordered rule list with linear evaluation plus a pipe table.

    Implementation note: the *emulated* cost model is the linear scan
    (``Verdict.scanned`` reports exactly what IPFW's walk over the full
    list would cost), but the Python implementation shortcuts the walk
    with hash indexes over exact-address rules — the typical P2PLab
    list is thousands of per-vnode rules of which a given packet can
    match at most a handful. The shortcut is observationally
    equivalent: non-matching rules only ever contribute scan count.
    """

    def __init__(
        self,
        name: str = "ipfw",
        metrics=None,
        indexed: bool = False,
        flow_cache: Optional[bool] = None,
    ) -> None:
        # Verdict flow cache: ``(src, dst, proto, direction) ->
        # (Verdict, matched Rule objects)``. Rules match on exactly
        # those four packet fields, so the key fully determines the
        # verdict for a fixed rule list; a hit replays the original
        # accounting bit-for-bit (see module docstring). Initialised
        # first because the ``indexed`` property setter flushes it.
        self._flow_cache: Dict[Tuple[int, int, str, str], Tuple[Verdict, Tuple[Rule, ...]]] = {}
        self.flow_cache_enabled = (not SLOW_PATH) if flow_cache is None else flow_cache
        #: Monotone counter bumped whenever a cached verdict could go
        #: stale (rule add/delete/flush, pipe table change, cost-model
        #: flip). The fluid flow engine (net/fluid.py) snapshots it per
        #: resolved path and re-probes when it moves.
        self.generation = 0
        #: Wall-clock performance counters for the cache itself (plain
        #: attributes; the registry twins are ``wall=True`` so they are
        #: excluded from deterministic snapshots — the cache is a
        #: wall-time optimisation, not an emulation observable).
        self.flow_cache_hits = 0
        self.flow_cache_misses = 0
        #: Cost model selector. ``indexed=False`` (IPFW reality) charges
        #: the full linear walk; ``indexed=True`` charges two hash
        #: probes plus the candidate rules examined — the counterfactual
        #: firewall the paper says IPFW cannot be ("it is not possible
        #: to evaluate the rules ... with a hash table"). Verdicts are
        #: identical either way; only the emulated latency differs. The
        #: flag may be flipped at runtime (e.g. fig6's two-path report);
        #: flipping it flushes the flow cache (``scanned`` differs).
        self._indexed = indexed
        self.name = name
        self._rules: List[Rule] = []
        self._pipes: dict[int, DummynetPipe] = {}
        self._next_number = 100
        self.packets_evaluated = 0
        self.rules_scanned_total = 0
        # Shared observability instruments (aggregated across every
        # firewall of the testbed; see repro.obs).
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_pkts = registry.counter("net.ipfw.packets_evaluated")
        self._m_scanned = registry.counter("net.ipfw.rules_scanned_total")
        self._m_denied = registry.counter("net.ipfw.packets_denied")
        self._m_rules = registry.gauge("net.ipfw.rules")
        self._m_cache_hits = registry.counter("net.ipfw.flow_cache_hits", wall=True)
        self._m_cache_misses = registry.counter("net.ipfw.flow_cache_misses", wall=True)
        # Evaluation shortcut indexes (see class docstring).
        self._by_src: dict[int, List[Rule]] = {}
        self._by_dst: dict[int, List[Rule]] = {}
        self._generic: List[Rule] = []
        self._positions: dict[int, int] = {}  # id(rule) -> linear index
        self._dirty = False

    # -- cost model ----------------------------------------------------
    @property
    def indexed(self) -> bool:
        return self._indexed

    @indexed.setter
    def indexed(self, value: bool) -> None:
        if value != self._indexed:
            self._indexed = value
            self._flow_cache.clear()
            self.generation += 1

    # -- pipe table ----------------------------------------------------
    def add_pipe(self, pipe_id: int, pipe: DummynetPipe) -> DummynetPipe:
        """Register a pipe under an id (``ipfw pipe N config``)."""
        if pipe_id in self._pipes:
            raise FirewallError(f"pipe {pipe_id} already configured")
        self._pipes[pipe_id] = pipe
        self._flow_cache.clear()
        self.generation += 1
        return pipe

    def pipe(self, pipe_id: int) -> DummynetPipe:
        try:
            return self._pipes[pipe_id]
        except KeyError:
            raise FirewallError(f"no pipe {pipe_id}") from None

    @property
    def pipes(self) -> dict[int, DummynetPipe]:
        return dict(self._pipes)

    # -- rule list -----------------------------------------------------
    def add(
        self,
        action: str,
        number: Optional[int] = None,
        pipe: Union[DummynetPipe, int, None] = None,
        proto: Optional[str] = None,
        src: AddrMatch = None,
        dst: AddrMatch = None,
        direction: Optional[str] = None,
    ) -> Rule:
        """Append a rule (auto-numbered in steps of 100 if ``number`` is None)."""
        if number is None:
            number = self._next_number
        if isinstance(pipe, int):
            pipe = self.pipe(pipe)
        rule = Rule(number, action, pipe=pipe, proto=proto, src=src, dst=dst, direction=direction)
        insort(self._rules, rule)
        if type(rule.src) is IPv4Address:
            self._by_src.setdefault(rule.src.value, []).append(rule)
        elif type(rule.dst) is IPv4Address:
            self._by_dst.setdefault(rule.dst.value, []).append(rule)
        else:
            self._generic.append(rule)
        self._dirty = True
        self._flow_cache.clear()
        self.generation += 1
        self._m_rules.inc()
        if number >= self._next_number:
            self._next_number = number + 100
        return rule

    def delete(self, number: int) -> None:
        """Delete all rules with the given number.

        Deleted rules have their ``hits`` counters reset: a removed
        rule that is later re-referenced (callers sometimes keep the
        :class:`Rule` handle) must not carry stale accounting, matching
        ``ipfw delete`` which discards the kernel counter with the rule.
        """
        removed = [r for r in self._rules if r.number == number]
        if not removed:
            raise FirewallError(f"no rule numbered {number}")
        self._rules = [r for r in self._rules if r.number != number]
        self._m_rules.dec(len(removed))
        for rule in removed:
            rule.hits = 0
        for table in (self._by_src, self._by_dst):
            for key in list(table):
                table[key] = [r for r in table[key] if r.number != number]
                if not table[key]:
                    del table[key]
        self._generic = [r for r in self._generic if r.number != number]
        self._dirty = True
        self._flow_cache.clear()
        self.generation += 1

    def flush(self) -> None:
        self._m_rules.dec(len(self._rules))
        for rule in self._rules:
            rule.hits = 0
        self._rules.clear()
        self._by_src.clear()
        self._by_dst.clear()
        self._generic.clear()
        self._positions.clear()
        self._next_number = 100
        self._dirty = False
        self._flow_cache.clear()
        self.generation += 1

    @property
    def rules(self) -> List[Rule]:
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    # -- evaluation ----------------------------------------------------
    def _refresh_positions(self) -> None:
        self._positions = {id(rule): i for i, rule in enumerate(self._rules)}
        self._dirty = False

    def evaluate(self, packet: Packet, direction: str) -> Verdict:
        """Evaluate ``packet`` with linear-scan semantics.

        ``count`` rules increment their counter and fall through;
        ``pipe`` rules enqueue the packet and fall through (one_pass=0);
        ``allow``/``deny`` terminate. Default policy is allow.
        ``Verdict.scanned`` is the number of rules a linear walk would
        have traversed (full list unless a terminal rule matched) —
        or, with ``indexed=True``, two hash probes plus the candidate
        rules actually examined.
        """
        key = (packet.src.value, packet.dst.value, packet.proto, direction)
        cached = self._flow_cache.get(key) if self.flow_cache_enabled else None
        if cached is not None:
            # Replay the original verdict's accounting bit-for-bit:
            # same ``scanned`` charge (hence same emulated latency),
            # same per-rule ``hits``, same registry counters. Only the
            # wall-clock linear walk is skipped.
            verdict, matched_rules = cached
            for rule in matched_rules:
                rule.hits += 1
            scanned = verdict.scanned
            self.packets_evaluated += 1
            self.rules_scanned_total += scanned
            self._m_pkts.inc()
            self._m_scanned.inc(scanned)
            if not verdict.allowed:
                self._m_denied.inc()
            self.flow_cache_hits += 1
            self._m_cache_hits.inc()
            return verdict
        if self._dirty:
            self._refresh_positions()
        candidates: List[Rule] = []
        bucket = self._by_src.get(packet.src.value)
        if bucket is not None:
            candidates.extend(bucket)
        bucket = self._by_dst.get(packet.dst.value)
        if bucket is not None:
            candidates.extend(bucket)
        if self._generic:
            candidates.extend(self._generic)
        if len(candidates) > 1:
            positions = self._positions
            candidates.sort(key=lambda r: positions[id(r)])

        indexed = self.indexed
        pipes: List[DummynetPipe] = []
        matched: List[int] = []
        matched_rules: List[Rule] = []
        allowed = True
        examined = 0
        scanned = 0 if indexed else len(self._rules)
        for rule in candidates:
            examined += 1
            if not rule.match(packet, direction):
                continue
            rule.hits += 1
            matched.append(rule.number)
            matched_rules.append(rule)
            action = rule.action
            if action == ACTION_PIPE:
                pipes.append(rule.pipe)  # type: ignore[arg-type]
            elif action == ACTION_ALLOW:
                if not indexed:
                    scanned = self._positions[id(rule)] + 1
                break
            elif action == ACTION_DENY:
                allowed = False
                if not indexed:
                    scanned = self._positions[id(rule)] + 1
                break
            # ACTION_COUNT falls through.
        if indexed:
            # Two hash probes, then only the candidates examined — the
            # cost a hash-indexed IPFW would pay.
            scanned = 2 + examined
        self.packets_evaluated += 1
        self.rules_scanned_total += scanned
        self._m_pkts.inc()
        self._m_scanned.inc(scanned)
        if not allowed:
            self._m_denied.inc()
        verdict = Verdict(allowed, tuple(pipes), scanned, tuple(matched))
        if self.flow_cache_enabled:
            self._flow_cache[key] = (verdict, tuple(matched_rules))
            self.flow_cache_misses += 1
            self._m_cache_misses.inc()
        return verdict

    def stats(self) -> dict:
        return {
            "rules": len(self._rules),
            "pipes": len(self._pipes),
            "packets_evaluated": self.packets_evaluated,
            "rules_scanned_total": self.rules_scanned_total,
            "flow_cache_entries": len(self._flow_cache),
            "flow_cache_hits": self.flow_cache_hits,
            "flow_cache_misses": self.flow_cache_misses,
        }

    def __iter__(self) -> Iterable[Rule]:
        return iter(self._rules)


#: Canonical alias: the firewall *is* the emulated IPFW, and
#: ``Ipfw(name, indexed=True)`` selects the hash-indexed cost model
#: without reaching for a parallel class.
Ipfw = Firewall
