"""IPFW-style firewall with linear rule evaluation.

P2PLab configures Dummynet through FreeBSD's firewall: two ``pipe``
rules per hosted virtual node plus one delay rule per inter-group pair
(paper, "Network Emulation"). The paper stresses that IPFW evaluates
rules *linearly* — "it is not possible to evaluate the rules in a
hierarchical way, or with a hash table" — which makes the rule count
the main scalability limit (Figure 6). This module therefore keeps the
linear scan observable: every evaluation reports how many rules were
scanned, and the owning stack converts that into processing latency.

Pipe-rule semantics follow ``net.inet.ip.fw.one_pass=0``: after a
packet traverses a matching pipe it re-enters the firewall at the next
rule, so one packet can be shaped by several pipes (per-node access
link, then inter-group delay). With a single linear scan that collects
every matching pipe, the number of rules scanned equals the index where
evaluation terminates — identical to the re-injection accounting.

Hot path: a **verdict flow cache** memoises
``(src, dst, proto, direction) -> Verdict`` — the discrete-event
analogue of ipfw's dynamic/``check-state`` rules. Rules match on
exactly those four fields, so the key fully determines the verdict for
a given rule list; steady BitTorrent flows pay the linear scan once
and O(1) afterwards. A cache *hit replays* the original verdict's full
accounting (``scanned`` charge, per-rule ``hits``, registry counters),
so emulated latency, metrics snapshots and fig6's linear-vs-indexed
comparison are byte-identical with the cache on or off — only wall
clock changes. The cache is invalidated by every mutating operation
(``add``/``delete``/``flush``/``add_pipe``) and by flipping
``indexed``. ``REPRO_SLOW_PATH=1`` (see :mod:`repro.hotpath`) disables
it by default.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import FirewallError
from repro.hotpath import SLOW_PATH
from repro.net.addr import IPv4Address, IPv4Network
from repro.net.packet import Packet
from repro.net.pipe import DummynetPipe
from repro.obs.metrics import NULL_REGISTRY

#: Rule actions.
ACTION_PIPE = "pipe"
ACTION_ALLOW = "allow"
ACTION_DENY = "deny"
ACTION_COUNT = "count"

DIR_IN = "in"
DIR_OUT = "out"

AddrMatch = Union[IPv4Address, IPv4Network, None]


def _match_addr(matcher: AddrMatch, value: int) -> bool:
    if matcher is None:
        return True
    if type(matcher) is IPv4Network:
        return (value & matcher.mask) == matcher.address.value
    return matcher.value == value


def _compile_match(
    direction: Optional[str],
    proto: Optional[str],
    src: AddrMatch,
    dst: AddrMatch,
) -> Callable[[Packet, str], bool]:
    """Build a per-rule match closure specialised to the fields set.

    The generic :meth:`Rule.matches` walk re-tests every field (and its
    ``None``-ness) per packet; the closure captures the constants once
    and skips absent fields entirely — the precomputed match predicate
    of the hot-path overhaul.
    """
    src_exact = src.value if type(src) is IPv4Address else None
    dst_exact = dst.value if type(dst) is IPv4Address else None
    src_net = (src.mask, src.address.value) if type(src) is IPv4Network else None
    dst_net = (dst.mask, dst.address.value) if type(dst) is IPv4Network else None

    def match(packet: Packet, pdir: str) -> bool:
        if direction is not None and direction != pdir:
            return False
        if proto is not None and proto != packet.proto:
            return False
        if src_exact is not None:
            if packet.src.value != src_exact:
                return False
        elif src_net is not None:
            if (packet.src.value & src_net[0]) != src_net[1]:
                return False
        if dst_exact is not None:
            if packet.dst.value != dst_exact:
                return False
        elif dst_net is not None:
            if (packet.dst.value & dst_net[0]) != dst_net[1]:
                return False
        return True

    return match


class Rule:
    """One firewall rule, ordered by its rule number."""

    __slots__ = (
        "number", "action", "pipe", "proto", "src", "dst", "direction", "hits",
        "match", "pipe_factory",
    )

    def __init__(
        self,
        number: int,
        action: str,
        pipe: Optional[DummynetPipe] = None,
        proto: Optional[str] = None,
        src: AddrMatch = None,
        dst: AddrMatch = None,
        direction: Optional[str] = None,
        pipe_factory: Optional[Callable[["Rule"], DummynetPipe]] = None,
    ) -> None:
        if action not in (ACTION_PIPE, ACTION_ALLOW, ACTION_DENY, ACTION_COUNT):
            raise FirewallError(f"unknown action {action!r}")
        if action == ACTION_PIPE and pipe is None and pipe_factory is None:
            raise FirewallError("pipe action needs a pipe (or a pipe_factory)")
        if action != ACTION_PIPE and (pipe is not None or pipe_factory is not None):
            raise FirewallError(f"{action!r} action cannot carry a pipe")
        if direction not in (None, DIR_IN, DIR_OUT):
            raise FirewallError(f"bad direction {direction!r}")
        self.number = number
        self.action = action
        self.pipe = pipe
        #: Lazy-pipe seam: when ``pipe`` is None, called (once) with the
        #: rule at the first matching packet; the returned pipe is
        #: stored back into ``pipe``. Idle vnodes never pay for their
        #: Dummynet state (see topology/compiler.py).
        self.pipe_factory = pipe_factory
        self.proto = proto
        self.src = src
        self.dst = dst
        self.direction = direction
        self.hits = 0
        #: Precompiled match predicate (same truth table as
        #: :meth:`matches`, with the per-field dispatch hoisted out of
        #: the per-packet path). Compiled on first evaluation — a
        #: million-vnode rule list mostly never evaluates most rules,
        #: and a closure per rule is real memory. Purely wall-side:
        #: compilation has no observable effect.
        self.match = None

    def matches(self, packet: Packet, direction: str) -> bool:
        """Does this rule match ``packet`` travelling ``direction``?"""
        if self.direction is not None and self.direction != direction:
            return False
        if self.proto is not None and self.proto != packet.proto:
            return False
        if not _match_addr(self.src, packet.src.value):
            return False
        if not _match_addr(self.dst, packet.dst.value):
            return False
        return True

    def __lt__(self, other: "Rule") -> bool:
        return self.number < other.number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.number:05d}", self.action]
        if self.pipe is not None:
            parts.append(self.pipe.name)
        if self.proto:
            parts.append(self.proto)
        parts.append(f"from {self.src if self.src is not None else 'any'}")
        parts.append(f"to {self.dst if self.dst is not None else 'any'}")
        if self.direction:
            parts.append(self.direction)
        return "Rule(" + " ".join(parts) + ")"


class Verdict:
    """Result of evaluating one packet against the rule list.

    ``matched`` carries the numbers of the rules that matched, in
    evaluation order — what ``ipfw show`` hit counters would attribute
    this packet to, and what the flight recorder reports per hop.
    """

    __slots__ = ("allowed", "pipes", "scanned", "matched")

    def __init__(
        self,
        allowed: bool,
        pipes: Tuple[DummynetPipe, ...],
        scanned: int,
        matched: Tuple[int, ...] = (),
    ) -> None:
        self.allowed = allowed
        self.pipes = pipes
        self.scanned = scanned
        self.matched = matched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Verdict(allowed={self.allowed}, pipes={len(self.pipes)}, "
            f"scanned={self.scanned}, matched={self.matched})"
        )


class Firewall:
    """Ordered rule list with linear evaluation plus a pipe table.

    Implementation note: the *emulated* cost model is the linear scan
    (``Verdict.scanned`` reports exactly what IPFW's walk over the full
    list would cost), but the Python implementation shortcuts the walk
    with hash indexes over exact-address rules — the typical P2PLab
    list is thousands of per-vnode rules of which a given packet can
    match at most a handful. The shortcut is observationally
    equivalent: non-matching rules only ever contribute scan count.
    """

    def __init__(
        self,
        name: str = "ipfw",
        metrics=None,
        indexed: bool = False,
        flow_cache: Optional[bool] = None,
    ) -> None:
        # Verdict flow cache: ``(src, dst, proto, direction) ->
        # (Verdict, matched Rule objects)``. Rules match on exactly
        # those four packet fields, so the key fully determines the
        # verdict for a fixed rule list; a hit replays the original
        # accounting bit-for-bit (see module docstring). Initialised
        # first because the ``indexed`` property setter flushes it.
        self._flow_cache: Dict[Tuple[int, int, str, str], Tuple[Verdict, Tuple[Rule, ...]]] = {}
        self.flow_cache_enabled = (not SLOW_PATH) if flow_cache is None else flow_cache
        #: Monotone counter bumped whenever a cached verdict could go
        #: stale (rule add/delete/flush, pipe table change, cost-model
        #: flip). The fluid flow engine (net/fluid.py) snapshots it per
        #: resolved path and re-probes when it moves.
        self.generation = 0
        #: Wall-clock performance counters for the cache itself (plain
        #: attributes; the registry twins are ``wall=True`` so they are
        #: excluded from deterministic snapshots — the cache is a
        #: wall-time optimisation, not an emulation observable).
        self.flow_cache_hits = 0
        self.flow_cache_misses = 0
        #: Cost model selector. ``indexed=False`` (IPFW reality) charges
        #: the full linear walk; ``indexed=True`` charges two hash
        #: probes plus the candidate rules examined — the counterfactual
        #: firewall the paper says IPFW cannot be ("it is not possible
        #: to evaluate the rules ... with a hash table"). Verdicts are
        #: identical either way; only the emulated latency differs. The
        #: flag may be flipped at runtime (e.g. fig6's two-path report);
        #: flipping it flushes the flow cache (``scanned`` differs).
        self._indexed = indexed
        self.name = name
        self._rules: List[Rule] = []
        self._pipes: dict[int, DummynetPipe] = {}
        self._next_number = 100
        self.packets_evaluated = 0
        self.rules_scanned_total = 0
        # Shared observability instruments (aggregated across every
        # firewall of the testbed; see repro.obs).
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_pkts = registry.counter("net.ipfw.packets_evaluated")
        self._m_scanned = registry.counter("net.ipfw.rules_scanned_total")
        self._m_denied = registry.counter("net.ipfw.packets_denied")
        self._m_rules = registry.gauge("net.ipfw.rules")
        self._m_cache_hits = registry.counter("net.ipfw.flow_cache_hits", wall=True)
        self._m_cache_misses = registry.counter("net.ipfw.flow_cache_misses", wall=True)
        # Evaluation shortcut indexes (see class docstring).
        # Bucket values are a bare Rule (the overwhelmingly common
        # case: one up rule per source address, one down rule per
        # destination address) or a list once a second rule lands on
        # the same address — a million-vnode table would otherwise
        # spend a 56-byte list per bucket to hold one element.
        self._by_src: dict[int, Union[Rule, List[Rule]]] = {}
        self._by_dst: dict[int, Union[Rule, List[Rule]]] = {}
        self._generic: List[Rule] = []
        self._positions: dict[int, int] = {}  # id(rule) -> linear index
        self._dirty = False
        #: Rules are appended, not insorted: topology compilation emits
        #: them in increasing number order, so the list is almost
        #: always already sorted and a deferred ``list.sort`` (timsort,
        #: O(n) on sorted input) beats n insorts. Set whenever an
        #: out-of-order number arrives; resolved by
        #: :meth:`_ensure_sorted` before any order-sensitive read.
        self._needs_sort = False

    # -- cost model ----------------------------------------------------
    @property
    def indexed(self) -> bool:
        return self._indexed

    @indexed.setter
    def indexed(self, value: bool) -> None:
        if value != self._indexed:
            self._indexed = value
            self._flow_cache.clear()
            self.generation += 1

    # -- pipe table ----------------------------------------------------
    def add_pipe(self, pipe_id: int, pipe: DummynetPipe) -> DummynetPipe:
        """Register a pipe under an id (``ipfw pipe N config``)."""
        if pipe_id in self._pipes:
            raise FirewallError(f"pipe {pipe_id} already configured")
        self._pipes[pipe_id] = pipe
        self._flow_cache.clear()
        self.generation += 1
        return pipe

    def register_lazy_pipe(self, pipe_id: int, pipe: DummynetPipe) -> DummynetPipe:
        """Record a pipe materialised mid-evaluation by a rule's
        ``pipe_factory``.

        Unlike :meth:`add_pipe` this neither flushes the flow cache nor
        bumps ``generation``: no cached verdict (and no fluid-flow
        resolved path) can reference a pipe that did not exist yet —
        materialisation happens *during* the very evaluation that would
        first cache it — so invalidating here would only force spurious
        re-probes that differ from the eager reference path.
        """
        if pipe_id in self._pipes:
            raise FirewallError(f"pipe {pipe_id} already configured")
        self._pipes[pipe_id] = pipe
        return pipe

    def pipe(self, pipe_id: int) -> DummynetPipe:
        try:
            return self._pipes[pipe_id]
        except KeyError:
            raise FirewallError(f"no pipe {pipe_id}") from None

    @property
    def pipes(self) -> dict[int, DummynetPipe]:
        return dict(self._pipes)

    # -- rule list -----------------------------------------------------
    def add(
        self,
        action: str,
        number: Optional[int] = None,
        pipe: Union[DummynetPipe, int, None] = None,
        proto: Optional[str] = None,
        src: AddrMatch = None,
        dst: AddrMatch = None,
        direction: Optional[str] = None,
        pipe_factory: Optional[Callable[[Rule], DummynetPipe]] = None,
    ) -> Rule:
        """Append a rule (auto-numbered in steps of 100 if ``number`` is None)."""
        if number is None:
            number = self._next_number
        if isinstance(pipe, int):
            pipe = self.pipe(pipe)
        rule = Rule(
            number, action, pipe=pipe, proto=proto, src=src, dst=dst,
            direction=direction, pipe_factory=pipe_factory,
        )
        self._append_rule(rule)
        if type(rule.src) is IPv4Address:
            self._bucket_insert(self._by_src, rule.src.value, rule)
        elif type(rule.dst) is IPv4Address:
            self._bucket_insert(self._by_dst, rule.dst.value, rule)
        else:
            self._generic.append(rule)
        self._dirty = True
        self._flow_cache.clear()
        self.generation += 1
        self._m_rules.inc()
        if number >= self._next_number:
            self._next_number = number + 100
        return rule

    def add_access_pair(
        self,
        addr: IPv4Address,
        number: int,
        up_pipe: Optional[DummynetPipe] = None,
        down_pipe: Optional[DummynetPipe] = None,
        up_factory: Optional[Callable[[Rule], DummynetPipe]] = None,
        down_factory: Optional[Callable[[Rule], DummynetPipe]] = None,
    ) -> Tuple[Rule, Rule]:
        """Install the canonical per-vnode access-rule pair in one call.

        Semantically identical to two :meth:`add` calls — ``pipe from
        addr out`` at ``number``, ``pipe to addr in`` at ``number + 1``
        — but with the per-call bookkeeping (validation, cache flush,
        generation bump) paid once. This is the streaming topology
        compiler's hot loop: at a million vnodes the Python-level call
        overhead of rule installation is the build time, so the two
        rules are built with direct slot stores instead of the
        validating constructor (this method's signature constrains the
        shapes :class:`Rule` would validate).
        """
        if (up_pipe is None and up_factory is None) or (
            down_pipe is None and down_factory is None
        ):
            raise FirewallError("access pair needs a pipe or a factory per direction")
        up = Rule.__new__(Rule)
        up.number = number
        up.action = ACTION_PIPE
        up.pipe = up_pipe
        up.pipe_factory = up_factory
        up.proto = None
        up.src = addr
        up.dst = None
        up.direction = DIR_OUT
        up.hits = 0
        up.match = None
        down = Rule.__new__(Rule)
        down.number = number + 1
        down.action = ACTION_PIPE
        down.pipe = down_pipe
        down.pipe_factory = down_factory
        down.proto = None
        down.src = None
        down.dst = addr
        down.direction = DIR_IN
        down.hits = 0
        down.match = None
        rules = self._rules
        if rules and number < rules[-1].number:
            self._needs_sort = True
        rules.append(up)
        rules.append(down)
        self._bucket_insert(self._by_src, addr.value, up)
        self._bucket_insert(self._by_dst, addr.value, down)
        self._dirty = True
        if self._flow_cache:
            self._flow_cache.clear()
        self.generation += 1
        self._m_rules.inc(2)
        if number + 1 >= self._next_number:
            self._next_number = number + 101
        return up, down

    def _append_rule(self, rule: Rule) -> None:
        rules = self._rules
        if rules and rule.number < rules[-1].number:
            self._needs_sort = True
        rules.append(rule)

    @staticmethod
    def _bucket_insert(table: dict, value: int, rule: Rule) -> None:
        existing = table.get(value)
        if existing is None:
            table[value] = rule
        elif type(existing) is list:
            existing.append(rule)
        else:
            table[value] = [existing, rule]

    def _ensure_sorted(self) -> None:
        if self._needs_sort:
            self._rules.sort()
            self._needs_sort = False
            self._dirty = True

    def delete(self, number: int) -> None:
        """Delete all rules with the given number.

        Deleted rules have their ``hits`` counters reset: a removed
        rule that is later re-referenced (callers sometimes keep the
        :class:`Rule` handle) must not carry stale accounting, matching
        ``ipfw delete`` which discards the kernel counter with the rule.
        """
        self._ensure_sorted()
        removed = [r for r in self._rules if r.number == number]
        if not removed:
            raise FirewallError(f"no rule numbered {number}")
        self._rules = [r for r in self._rules if r.number != number]
        self._m_rules.dec(len(removed))
        for rule in removed:
            rule.hits = 0
        for table in (self._by_src, self._by_dst):
            for key in list(table):
                bucket = table[key]
                kept = [
                    r
                    for r in (bucket if type(bucket) is list else (bucket,))
                    if r.number != number
                ]
                if not kept:
                    del table[key]
                elif len(kept) == 1:
                    table[key] = kept[0]
                else:
                    table[key] = kept
        self._generic = [r for r in self._generic if r.number != number]
        self._dirty = True
        self._flow_cache.clear()
        self.generation += 1

    def flush(self) -> None:
        self._m_rules.dec(len(self._rules))
        for rule in self._rules:
            rule.hits = 0
        self._rules.clear()
        self._by_src.clear()
        self._by_dst.clear()
        self._generic.clear()
        self._positions.clear()
        self._next_number = 100
        self._dirty = False
        self._needs_sort = False
        self._flow_cache.clear()
        self.generation += 1

    @property
    def rules(self) -> List[Rule]:
        self._ensure_sorted()
        return list(self._rules)

    def rules_for(
        self, src: Optional[IPv4Address] = None, dst: Optional[IPv4Address] = None
    ) -> List[Rule]:
        """Rules filed under an exact source or destination address
        (the evaluation shortcut buckets) — the control plane's lookup
        for per-vnode rules without a full-list scan."""
        if src is not None:
            bucket = self._by_src.get(src.value)
        elif dst is not None:
            bucket = self._by_dst.get(dst.value)
        else:
            return list(self._generic)
        if bucket is None:
            return []
        return list(bucket) if type(bucket) is list else [bucket]

    def materialize(self, rule: Rule) -> DummynetPipe:
        """Force a lazy rule's pipe into existence.

        Control-plane entry point (runtime reconfiguration of a pipe
        no packet has matched yet); the data path materialises inline
        in :meth:`evaluate`. Idempotent — an existing pipe is returned
        as-is.
        """
        pipe = rule.pipe
        if pipe is None:
            if rule.pipe_factory is None:
                raise FirewallError(f"rule {rule.number} has no pipe")
            pipe = rule.pipe = rule.pipe_factory(rule)
        return pipe

    def __len__(self) -> int:
        return len(self._rules)

    # -- evaluation ----------------------------------------------------
    def _refresh_positions(self) -> None:
        self._ensure_sorted()
        self._positions = {id(rule): i for i, rule in enumerate(self._rules)}
        self._dirty = False

    def evaluate(self, packet: Packet, direction: str) -> Verdict:
        """Evaluate ``packet`` with linear-scan semantics.

        ``count`` rules increment their counter and fall through;
        ``pipe`` rules enqueue the packet and fall through (one_pass=0);
        ``allow``/``deny`` terminate. Default policy is allow.
        ``Verdict.scanned`` is the number of rules a linear walk would
        have traversed (full list unless a terminal rule matched) —
        or, with ``indexed=True``, two hash probes plus the candidate
        rules actually examined.
        """
        key = (packet.src.value, packet.dst.value, packet.proto, direction)
        cached = self._flow_cache.get(key) if self.flow_cache_enabled else None
        if cached is not None:
            # Replay the original verdict's accounting bit-for-bit:
            # same ``scanned`` charge (hence same emulated latency),
            # same per-rule ``hits``, same registry counters. Only the
            # wall-clock linear walk is skipped.
            verdict, matched_rules = cached
            for rule in matched_rules:
                rule.hits += 1
            scanned = verdict.scanned
            self.packets_evaluated += 1
            self.rules_scanned_total += scanned
            self._m_pkts.inc()
            self._m_scanned.inc(scanned)
            if not verdict.allowed:
                self._m_denied.inc()
            self.flow_cache_hits += 1
            self._m_cache_hits.inc()
            return verdict
        if self._dirty:
            self._refresh_positions()
        candidates: List[Rule] = []
        bucket = self._by_src.get(packet.src.value)
        if bucket is not None:
            if type(bucket) is list:
                candidates.extend(bucket)
            else:
                candidates.append(bucket)
        bucket = self._by_dst.get(packet.dst.value)
        if bucket is not None:
            if type(bucket) is list:
                candidates.extend(bucket)
            else:
                candidates.append(bucket)
        if self._generic:
            candidates.extend(self._generic)
        if len(candidates) > 1:
            positions = self._positions
            candidates.sort(key=lambda r: positions[id(r)])

        indexed = self.indexed
        pipes: List[DummynetPipe] = []
        matched: List[int] = []
        matched_rules: List[Rule] = []
        allowed = True
        examined = 0
        scanned = 0 if indexed else len(self._rules)
        for rule in candidates:
            examined += 1
            match = rule.match
            if match is None:
                match = rule.match = _compile_match(
                    rule.direction, rule.proto, rule.src, rule.dst
                )
            if not match(packet, direction):
                continue
            rule.hits += 1
            matched.append(rule.number)
            matched_rules.append(rule)
            action = rule.action
            if action == ACTION_PIPE:
                pipe = rule.pipe
                if pipe is None:
                    pipe = rule.pipe = rule.pipe_factory(rule)  # type: ignore[misc]
                pipes.append(pipe)
            elif action == ACTION_ALLOW:
                if not indexed:
                    scanned = self._positions[id(rule)] + 1
                break
            elif action == ACTION_DENY:
                allowed = False
                if not indexed:
                    scanned = self._positions[id(rule)] + 1
                break
            # ACTION_COUNT falls through.
        if indexed:
            # Two hash probes, then only the candidates examined — the
            # cost a hash-indexed IPFW would pay.
            scanned = 2 + examined
        self.packets_evaluated += 1
        self.rules_scanned_total += scanned
        self._m_pkts.inc()
        self._m_scanned.inc(scanned)
        if not allowed:
            self._m_denied.inc()
        verdict = Verdict(allowed, tuple(pipes), scanned, tuple(matched))
        if self.flow_cache_enabled:
            self._flow_cache[key] = (verdict, tuple(matched_rules))
            self.flow_cache_misses += 1
            self._m_cache_misses.inc()
        return verdict

    def stats(self) -> dict:
        return {
            "rules": len(self._rules),
            "pipes": len(self._pipes),
            "packets_evaluated": self.packets_evaluated,
            "rules_scanned_total": self.rules_scanned_total,
            "flow_cache_entries": len(self._flow_cache),
            "flow_cache_hits": self.flow_cache_hits,
            "flow_cache_misses": self.flow_cache_misses,
        }

    def __iter__(self) -> Iterable[Rule]:
        self._ensure_sorted()
        return iter(self._rules)


#: Canonical alias: the firewall *is* the emulated IPFW, and
#: ``Ipfw(name, indexed=True)`` selects the hash-indexed cost model
#: without reaching for a parallel class.
Ipfw = Firewall
