"""Dummynet pipes.

A pipe is Rizzo's Dummynet abstraction (CCR '97), the device P2PLab
configures through IPFW rules: a FIFO queue drained at a fixed
bandwidth, followed by a fixed propagation delay, with an optional
bounded queue and a random packet-loss rate.

Semantics per packet of size ``S`` arriving at time ``t``:

1. with probability ``plr`` the packet is dropped;
2. if the backlog (bytes queued but not yet serialized) exceeds
   ``queue_limit``, the packet is dropped (tail drop);
3. otherwise it leaves the serializer at
   ``depart = max(t, busy_until) + S / bandwidth`` and is delivered to
   the next hop at ``depart + delay``.

``bandwidth=None`` means an unshaped pipe (pure delay), which is how
the inter-group latency rules of the paper's topology model are
configured.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import FirewallError
from repro.net.packet import Packet
from repro.obs.flight import NULL_FLIGHT
from repro.obs.metrics import BYTES_EDGES, NULL_REGISTRY
from repro.sim.event import PRIORITY_NORMAL

DeliverFn = Callable[[Packet], Any]

#: Packet-train bounds. A train coalesces back-to-back serialization
#: events on one shaped pipe into a single kernel event; its size is
#: bounded by the pipe's bandwidth-delay product (packets within one
#: BDP are in flight together anyway), floored at ``TRAIN_FLOOR_BYTES``
#: so short/zero-delay access pipes still coalesce bursts, and capped
#: at ``TRAIN_MAX_PACKETS`` entries.
TRAIN_FLOOR_BYTES = 64 * 1024
TRAIN_MAX_PACKETS = 256


@dataclass(frozen=True)
class ShapingProfile:
    """Immutable access-link shaping parameters shared by a whole group.

    The flyweight of the million-vnode topology compiler: one profile
    per :class:`~repro.topology.spec.GroupSpec` holds the bandwidth /
    delay / loss constants, and per-vnode :class:`DummynetPipe`
    instances are stamped out of it only when (if ever) a packet first
    matches the vnode's rule. ``bandwidth=None`` keeps the unshaped
    (delay-only) convention of :class:`DummynetPipe`.
    """

    down_bw: Optional[float] = None
    up_bw: Optional[float] = None
    latency: float = 0.0
    plr: float = 0.0

    def up_pipe(self, sim, name: str, owner: Optional[str] = None) -> "DummynetPipe":
        """The vnode's upload pipe (outgoing traffic)."""
        return DummynetPipe(
            sim, bandwidth=self.up_bw, delay=self.latency, plr=self.plr,
            name=name, owner=owner,
        )

    def down_pipe(self, sim, name: str, owner: Optional[str] = None) -> "DummynetPipe":
        """The vnode's download pipe (incoming traffic)."""
        return DummynetPipe(
            sim, bandwidth=self.down_bw, delay=self.latency, plr=self.plr,
            name=name, owner=owner,
        )


class DummynetPipe:
    """One emulated link: bandwidth + delay + loss + bounded queue."""

    __slots__ = (
        "sim",
        "name",
        "owner",
        "_flight",
        "bandwidth",
        "delay",
        "plr",
        "queue_limit",
        "_rng",
        "_busy_until",
        "packets_in",
        "packets_out",
        "packets_dropped_loss",
        "packets_dropped_queue",
        "bytes_in",
        "bytes_out",
        "_m_out",
        "_m_drop_loss",
        "_m_drop_queue",
        "_m_occupancy",
        "_batch",
        "_train",
        "_train_live",
        "_train_bytes",
        "_train_cap",
        "_train_last_t",
        "_m_trains",
        "_m_coalesced",
    )

    def __init__(
        self,
        sim,
        bandwidth: Optional[float] = None,
        delay: float = 0.0,
        plr: float = 0.0,
        queue_limit: Optional[int] = None,
        name: str = "pipe",
        owner: Optional[str] = None,
        batch: Optional[bool] = None,
    ) -> None:
        """
        Parameters
        ----------
        bandwidth:
            Bytes per second, or ``None`` for an unshaped (delay-only) pipe.
        delay:
            Propagation delay in seconds, added after serialization.
        plr:
            Packet loss rate in [0, 1).
        queue_limit:
            Maximum backlog in bytes awaiting serialization; ``None`` =
            unbounded. Ignored for unshaped pipes.
        owner:
            Label of the node whose kernel runs this pipe (pnode name,
            or ``"switch"`` for fabric port pipes). Used by the flight
            recorder / Perfetto export for row attribution; defaults to
            the pipe name.
        batch:
            ``True`` coalesces back-to-back serialization events into
            packet-train events (shaped pipes only); ``False`` keeps
            the per-packet reference path. ``None`` (default) follows
            ``sim.fast``. Batching is observationally invisible: every
            delivery keeps the exact ``(time, priority, seq)`` identity
            the per-packet path would have given it.
        """
        if bandwidth is not None and bandwidth <= 0:
            raise FirewallError(f"pipe bandwidth must be positive, got {bandwidth}")
        if delay < 0:
            raise FirewallError(f"pipe delay must be >= 0, got {delay}")
        if not 0.0 <= plr < 1.0:
            raise FirewallError(f"pipe plr must be in [0,1), got {plr}")
        self.sim = sim
        self.name = name
        self.owner = owner if owner is not None else name
        # Flight recorder, cached at construction (NULL when disabled).
        self._flight = getattr(sim, "flight", NULL_FLIGHT)
        self.bandwidth = bandwidth
        self.delay = delay
        self.plr = plr
        self.queue_limit = queue_limit
        self._rng = sim.rng.stream(f"pipe.loss/{name}") if plr > 0 else None
        self._busy_until = 0.0
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped_loss = 0
        self.packets_dropped_queue = 0
        self.bytes_in = 0
        self.bytes_out = 0
        # Packet-train batching (fast path; see DESIGN.md "Hot-path
        # architecture"). The deque holds coalesced deliveries as
        # ``(arrival_time, seq, deliver, packet)`` — each carrying the
        # burned sequence number the per-packet path would have used.
        self._batch = bool(getattr(sim, "fast", False)) if batch is None else batch
        self._train: deque = deque()
        self._train_live = False  # a head/continuation event will drain the deque
        self._train_bytes = 0
        self._train_last_t = 0.0  # newest arrival handed to the live train
        self._train_cap = (
            max(bandwidth * delay, float(TRAIN_FLOOR_BYTES))
            if bandwidth is not None
            else 0.0
        )
        # Platform-wide pipe instruments (shared registry on the sim).
        registry = getattr(sim, "metrics", None) or NULL_REGISTRY
        self._m_out = registry.counter("net.pipe.packets_out")
        self._m_drop_loss = registry.counter("net.pipe.drops_loss")
        self._m_drop_queue = registry.counter("net.pipe.drops_queue")
        self._m_occupancy = registry.histogram(
            "net.pipe.queue_occupancy_bytes", edges=BYTES_EDGES
        )
        # Train telemetry is wall-only: batching must stay invisible to
        # deterministic snapshots (the reference path records zero).
        self._m_trains = registry.counter("net.pipe.trains", wall=True)
        self._m_coalesced = registry.counter("net.pipe.train_coalesced", wall=True)

    # ------------------------------------------------------------------
    def transmit(self, packet: Packet, deliver: DeliverFn) -> bool:
        """Send ``packet`` through the pipe; calls ``deliver(packet)``
        at the arrival time. Returns ``False`` if the packet was dropped.
        """
        sim = self.sim
        now = sim.now
        flight = self._flight
        size = packet.size
        self.packets_in += 1
        self.bytes_in += size

        if self._rng is not None and self._rng.random() < self.plr:
            self.packets_dropped_loss += 1
            self._m_drop_loss.inc()
            if flight.enabled:
                flight.drop(packet, self.owner, now, f"loss:{self.name}")
            return False

        bandwidth = self.bandwidth
        if bandwidth is None:
            wait = txn = backlog_bytes = 0.0
            arrival_delay = self.delay
        else:
            backlog_start = self._busy_until if self._busy_until > now else now
            backlog_bytes = (backlog_start - now) * bandwidth
            self._m_occupancy.observe(backlog_bytes)
            if self.queue_limit is not None:
                if backlog_bytes + size > self.queue_limit:
                    self.packets_dropped_queue += 1
                    self._m_drop_queue.inc()
                    if flight.enabled:
                        flight.drop(packet, self.owner, now, f"queue:{self.name}")
                    return False
            txn = size / bandwidth
            depart = backlog_start + txn
            self._busy_until = depart
            wait = backlog_start - now
            arrival_delay = depart - now + self.delay

        self.packets_out += 1
        self.bytes_out += size
        self._m_out.inc()
        if flight.enabled:
            # t1 uses the scheduler's own arithmetic (now + delay), so
            # consecutive hop boundaries tile exactly.
            flight.pipe(
                packet,
                self.owner,
                self.name,
                now,
                now + arrival_delay,
                wait,
                txn,
                self.delay,
                backlog_bytes,
            )
        if self._batch and bandwidth is not None:
            t_a = now + arrival_delay
            if not self._train_live:
                # Head of a new train. The kernel event consumes the
                # same sequence number the per-packet path's push would
                # have drawn; the delivery itself rides in the deque so
                # the drain can hand the packet over with exactly the
                # reference path's reference count (``_deliver_local``
                # proves pool reuse by it). ``-1`` marks event-backed
                # entries (never re-materialised, not deferred).
                self._train_live = True
                self._train_last_t = t_a
                self._train.append((t_a, -1, deliver, packet))
                self._train_bytes += size
                self._m_trains.inc()
                sim.schedule(arrival_delay, self._train_fire)
            elif (
                t_a >= self._train_last_t  # reconfigure() can shrink the delay
                and self._train_bytes + size <= self._train_cap
                and len(self._train) < TRAIN_MAX_PACKETS
            ):
                # Coalesce: no kernel event, but burn the sequence
                # number the per-packet path's push would have drawn so
                # the global (time, priority, seq) stream is unchanged.
                seq = sim._queue.burn_seq()
                self._train.append((t_a, seq, deliver, packet))
                self._train_bytes += size
                self._train_last_t = t_a
                sim._deferred_deliveries += 1
                self._m_coalesced.inc()
            else:
                # Train full (or a reconfigure made arrivals
                # non-monotone): fall back to a plain event with exact
                # reference identity. Only one chain per pipe may be
                # live at a time — the drain relies on the deque front
                # being its own event-backed entry.
                sim.schedule(arrival_delay, deliver, packet)
        else:
            sim.schedule(arrival_delay, deliver, packet)
        return True

    def _train_fire(self) -> None:
        """Deliver the train's event-backed front entry, then drain.

        The front of the deque is always the entry this event stands
        for (the train head, or a follower re-materialised by a prior
        drain). A follower is dispatched inline — with the clock
        advanced to its own arrival time — only when its burned
        ``(time, priority, seq)`` key provably precedes everything
        still in the event queue, the kernel allows inline dispatch
        (no ``max_events`` budget, no profiler, inside ``run()``), the
        loop has not been stopped, and the arrival lies within the run
        horizon. In every other case the follower is re-materialised
        as a real queue event with its exact reference-path identity —
        so the served total order is identical either way.

        ``popleft`` + unpack drops the entry tuple before the callback
        runs, so the packet reaches ``deliver`` with exactly the
        reference path's reference count (``_deliver_local`` proves
        pool reuse by it).
        """
        dq = self._train
        _, _, d, p = dq.popleft()
        self._train_bytes -= p.size
        d(p)
        if not dq:
            self._train_live = False
            return
        sim = self.sim
        queue = sim._queue
        while dq:
            head = dq[0]
            t = head[0]
            if sim._train_inline and not sim._stopped:
                horizon = sim._horizon
                if horizon is None or t <= horizon:
                    nxt = queue.next_entry()
                    # The tuple comparison resolves at the unique seq,
                    # never reaching the queue entry's event object.
                    if nxt is None or (t, PRIORITY_NORMAL, head[1]) < nxt:
                        _, _, d, p = dq.popleft()
                        self._train_bytes -= p.size
                        sim._deferred_deliveries -= 1
                        sim.now = t
                        sim._extra_events += 1
                        d(p)
                        continue
            # Re-materialise the front entry as a real queue event with
            # its burned identity; it stays in the deque (marked ``-1``)
            # so the continuation can hand the packet over with the
            # reference reference count.
            self._train[0] = (t, -1, head[2], head[3])
            sim._deferred_deliveries -= 1
            queue.push_with_seq(t, self._train_fire, (), PRIORITY_NORMAL, head[1])
            return  # the continuation keeps the train live
        self._train_live = False

    def _train_flush(self) -> None:
        """Re-materialise every coalesced follower as a real queue event.

        Called by :meth:`reconfigure`: a live train's coalescing
        envelope (``_train_cap``, the monotone-arrival watermark) was
        computed under the *old* bandwidth/delay, so carrying it across
        a parameter change leaves ``_train_bytes`` and the deferred
        accounting inconsistent with the new configuration — and the
        non-monotone-arrival fallback then pins every subsequent packet
        on the unbatched path until the stale train drains. Flushing is
        observationally invisible: each follower becomes a plain
        delivery event with the exact ``(time, priority, seq)`` identity
        the per-packet path would have used (the same mechanism
        ``_train_fire`` uses to re-materialise), and the event-backed
        front entry stays so the already-scheduled head event finds the
        deque it expects. After the flush a fresh train can form under
        the new parameters as soon as the head fires.
        """
        dq = self._train
        if len(dq) <= 1:
            return
        sim = self.sim
        queue = sim._queue
        head = dq.popleft()
        while dq:
            t, seq, d, p = dq.popleft()
            self._train_bytes -= p.size
            sim._deferred_deliveries -= 1
            queue.push_with_seq(t, d, (p,), PRIORITY_NORMAL, seq)
        dq.append(head)
        self._train_last_t = head[0]

    # ------------------------------------------------------------------
    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued serialization work (0 for unshaped pipes)."""
        if self.bandwidth is None:
            return 0.0
        pending = self._busy_until - self.sim.now
        return pending if pending > 0 else 0.0

    @property
    def backlog_bytes(self) -> float:
        if self.bandwidth is None:
            return 0.0
        return self.backlog_seconds * self.bandwidth

    @property
    def utilization_bytes(self) -> int:
        """Total bytes that have fully traversed the pipe."""
        return self.bytes_out

    def reconfigure(
        self,
        bandwidth: Optional[float] = None,
        delay: Optional[float] = None,
        plr: Optional[float] = None,
    ) -> None:
        """Change parameters at runtime (``ipfw pipe N config ...``)."""
        if bandwidth is not None:
            if bandwidth <= 0:
                raise FirewallError(f"pipe bandwidth must be positive, got {bandwidth}")
            self.bandwidth = bandwidth
        if delay is not None:
            if delay < 0:
                raise FirewallError(f"pipe delay must be >= 0, got {delay}")
            self.delay = delay
        if self.bandwidth is not None:
            self._train_cap = max(
                self.bandwidth * self.delay, float(TRAIN_FLOOR_BYTES)
            )
        if plr is not None:
            if not 0.0 <= plr < 1.0:
                raise FirewallError(f"pipe plr must be in [0,1), got {plr}")
            self.plr = plr
            if self._rng is None and plr > 0:
                self._rng = self.sim.rng.stream(f"pipe.loss/{self.name}")
        # A live train was coalesced under the old parameters: flush its
        # followers back to real events (observationally invisible) so
        # train state and batching restart cleanly under the new ones.
        self._train_flush()
        # Fluid flows traversing this pipe need a rate epoch (or, if the
        # pipe just became lossy, the packet path).
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            fluid.on_pipe_reconfigured(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bw = "unshaped" if self.bandwidth is None else f"{self.bandwidth:.0f}B/s"
        return f"DummynetPipe({self.name!r}, {bw}, delay={self.delay * 1e3:.1f}ms, plr={self.plr})"
