"""Dummynet pipes.

A pipe is Rizzo's Dummynet abstraction (CCR '97), the device P2PLab
configures through IPFW rules: a FIFO queue drained at a fixed
bandwidth, followed by a fixed propagation delay, with an optional
bounded queue and a random packet-loss rate.

Semantics per packet of size ``S`` arriving at time ``t``:

1. with probability ``plr`` the packet is dropped;
2. if the backlog (bytes queued but not yet serialized) exceeds
   ``queue_limit``, the packet is dropped (tail drop);
3. otherwise it leaves the serializer at
   ``depart = max(t, busy_until) + S / bandwidth`` and is delivered to
   the next hop at ``depart + delay``.

``bandwidth=None`` means an unshaped pipe (pure delay), which is how
the inter-group latency rules of the paper's topology model are
configured.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import FirewallError
from repro.net.packet import Packet
from repro.obs.flight import NULL_FLIGHT
from repro.obs.metrics import BYTES_EDGES, NULL_REGISTRY

DeliverFn = Callable[[Packet], Any]


class DummynetPipe:
    """One emulated link: bandwidth + delay + loss + bounded queue."""

    __slots__ = (
        "sim",
        "name",
        "owner",
        "_flight",
        "bandwidth",
        "delay",
        "plr",
        "queue_limit",
        "_rng",
        "_busy_until",
        "packets_in",
        "packets_out",
        "packets_dropped_loss",
        "packets_dropped_queue",
        "bytes_in",
        "bytes_out",
        "_m_out",
        "_m_drop_loss",
        "_m_drop_queue",
        "_m_occupancy",
    )

    def __init__(
        self,
        sim,
        bandwidth: Optional[float] = None,
        delay: float = 0.0,
        plr: float = 0.0,
        queue_limit: Optional[int] = None,
        name: str = "pipe",
        owner: Optional[str] = None,
    ) -> None:
        """
        Parameters
        ----------
        bandwidth:
            Bytes per second, or ``None`` for an unshaped (delay-only) pipe.
        delay:
            Propagation delay in seconds, added after serialization.
        plr:
            Packet loss rate in [0, 1).
        queue_limit:
            Maximum backlog in bytes awaiting serialization; ``None`` =
            unbounded. Ignored for unshaped pipes.
        owner:
            Label of the node whose kernel runs this pipe (pnode name,
            or ``"switch"`` for fabric port pipes). Used by the flight
            recorder / Perfetto export for row attribution; defaults to
            the pipe name.
        """
        if bandwidth is not None and bandwidth <= 0:
            raise FirewallError(f"pipe bandwidth must be positive, got {bandwidth}")
        if delay < 0:
            raise FirewallError(f"pipe delay must be >= 0, got {delay}")
        if not 0.0 <= plr < 1.0:
            raise FirewallError(f"pipe plr must be in [0,1), got {plr}")
        self.sim = sim
        self.name = name
        self.owner = owner if owner is not None else name
        # Flight recorder, cached at construction (NULL when disabled).
        self._flight = getattr(sim, "flight", NULL_FLIGHT)
        self.bandwidth = bandwidth
        self.delay = delay
        self.plr = plr
        self.queue_limit = queue_limit
        self._rng = sim.rng.stream(f"pipe.loss/{name}") if plr > 0 else None
        self._busy_until = 0.0
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped_loss = 0
        self.packets_dropped_queue = 0
        self.bytes_in = 0
        self.bytes_out = 0
        # Platform-wide pipe instruments (shared registry on the sim).
        registry = getattr(sim, "metrics", None) or NULL_REGISTRY
        self._m_out = registry.counter("net.pipe.packets_out")
        self._m_drop_loss = registry.counter("net.pipe.drops_loss")
        self._m_drop_queue = registry.counter("net.pipe.drops_queue")
        self._m_occupancy = registry.histogram(
            "net.pipe.queue_occupancy_bytes", edges=BYTES_EDGES
        )

    # ------------------------------------------------------------------
    def transmit(self, packet: Packet, deliver: DeliverFn) -> bool:
        """Send ``packet`` through the pipe; calls ``deliver(packet)``
        at the arrival time. Returns ``False`` if the packet was dropped.
        """
        sim = self.sim
        now = sim.now
        flight = self._flight
        size = packet.size
        self.packets_in += 1
        self.bytes_in += size

        if self._rng is not None and self._rng.random() < self.plr:
            self.packets_dropped_loss += 1
            self._m_drop_loss.inc()
            if flight.enabled:
                flight.drop(packet, self.owner, now, f"loss:{self.name}")
            return False

        bandwidth = self.bandwidth
        if bandwidth is None:
            wait = txn = backlog_bytes = 0.0
            arrival_delay = self.delay
        else:
            backlog_start = self._busy_until if self._busy_until > now else now
            backlog_bytes = (backlog_start - now) * bandwidth
            self._m_occupancy.observe(backlog_bytes)
            if self.queue_limit is not None:
                if backlog_bytes + size > self.queue_limit:
                    self.packets_dropped_queue += 1
                    self._m_drop_queue.inc()
                    if flight.enabled:
                        flight.drop(packet, self.owner, now, f"queue:{self.name}")
                    return False
            txn = size / bandwidth
            depart = backlog_start + txn
            self._busy_until = depart
            wait = backlog_start - now
            arrival_delay = depart - now + self.delay

        self.packets_out += 1
        self.bytes_out += size
        self._m_out.inc()
        if flight.enabled:
            # t1 uses the scheduler's own arithmetic (now + delay), so
            # consecutive hop boundaries tile exactly.
            flight.pipe(
                packet,
                self.owner,
                self.name,
                now,
                now + arrival_delay,
                wait,
                txn,
                self.delay,
                backlog_bytes,
            )
        sim.schedule(arrival_delay, deliver, packet)
        return True

    # ------------------------------------------------------------------
    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued serialization work (0 for unshaped pipes)."""
        if self.bandwidth is None:
            return 0.0
        pending = self._busy_until - self.sim.now
        return pending if pending > 0 else 0.0

    @property
    def backlog_bytes(self) -> float:
        if self.bandwidth is None:
            return 0.0
        return self.backlog_seconds * self.bandwidth

    @property
    def utilization_bytes(self) -> int:
        """Total bytes that have fully traversed the pipe."""
        return self.bytes_out

    def reconfigure(
        self,
        bandwidth: Optional[float] = None,
        delay: Optional[float] = None,
        plr: Optional[float] = None,
    ) -> None:
        """Change parameters at runtime (``ipfw pipe N config ...``)."""
        if bandwidth is not None:
            if bandwidth <= 0:
                raise FirewallError(f"pipe bandwidth must be positive, got {bandwidth}")
            self.bandwidth = bandwidth
        if delay is not None:
            if delay < 0:
                raise FirewallError(f"pipe delay must be >= 0, got {delay}")
            self.delay = delay
        if plr is not None:
            if not 0.0 <= plr < 1.0:
                raise FirewallError(f"pipe plr must be in [0,1), got {plr}")
            self.plr = plr
            if self._rng is None and plr > 0:
                self._rng = self.sim.rng.stream(f"pipe.loss/{self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bw = "unshaped" if self.bandwidth is None else f"{self.bandwidth:.0f}B/s"
        return f"DummynetPipe({self.name!r}, {bw}, delay={self.delay * 1e3:.1f}ms, plr={self.plr})"
