"""The physical LAN interconnecting physical nodes.

GridExplorer nodes are connected by Gigabit Ethernet through a switch.
Each attached stack gets a full-duplex port modeled as two Dummynet
pipes (transmit and receive); the switch forwards by destination
address, which stacks register for all their interface addresses
(including virtual-node aliases).

This is the component whose saturation the paper identified as "the
first limiting factor" for the folding ratio experiment (Figure 9):
folding more virtual nodes onto fewer physical nodes concentrates their
aggregate traffic on fewer 1 Gbps ports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import RoutingError
from repro.net.addr import IPv4Address
from repro.net.packet import Packet
from repro.net.pipe import DummynetPipe
from repro.units import gbps, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack


class Port:
    """One full-duplex switch port."""

    __slots__ = ("stack", "tx", "rx")

    def __init__(self, stack: "NetworkStack", tx: DummynetPipe, rx: DummynetPipe) -> None:
        self.stack = stack
        self.tx = tx  # node -> switch
        self.rx = rx  # switch -> node


class Switch:
    """Address-learning L2 switch with per-port capacity."""

    def __init__(
        self,
        sim,
        port_bandwidth: float = gbps(1),
        port_delay: float = us(60),
        name: str = "switch",
    ) -> None:
        """
        Parameters
        ----------
        port_bandwidth:
            Capacity of each port direction in bytes/second (default 1 Gbps).
        port_delay:
            One-way wire+switch latency per port traversal (default 60 µs,
            calibrated so a 0-rule LAN RTT lands near Figure 6's intercept).
        """
        self.sim = sim
        self.name = name
        self.port_bandwidth = port_bandwidth
        self.port_delay = port_delay
        self._ports: Dict[str, Port] = {}
        self._addr_map: Dict[int, Port] = {}
        #: Sorted, disjoint ``(start, end, Port)`` half-open address
        #: runs — block registration from streaming deployment. A
        #: forwarding miss on ``_addr_map`` falls back to these and
        #: promotes the hit, so only a destination's first packet pays
        #: the scan (and idle destinations cost no map entry at all).
        self._addr_blocks: list = []
        self._block_holes: set = set()
        self.packets_forwarded = 0
        self.packets_unroutable = 0

    # ------------------------------------------------------------------
    def attach(self, stack: "NetworkStack") -> Port:
        """Create a port for ``stack`` and remember it by name."""
        if stack.name in self._ports:
            raise RoutingError(f"stack {stack.name!r} already attached to {self.name}")
        tx = DummynetPipe(
            self.sim,
            bandwidth=self.port_bandwidth,
            delay=self.port_delay / 2,
            name=f"{self.name}.{stack.name}.tx",
            owner=self.name,
        )
        rx = DummynetPipe(
            self.sim,
            bandwidth=self.port_bandwidth,
            delay=self.port_delay / 2,
            name=f"{self.name}.{stack.name}.rx",
            owner=self.name,
        )
        port = Port(stack, tx, rx)
        self._ports[stack.name] = port
        return port

    def register_address(self, addr: IPv4Address, stack: "NetworkStack") -> None:
        """Learn that ``addr`` lives behind ``stack``'s port."""
        port = self._ports.get(stack.name)
        if port is None:
            raise RoutingError(f"stack {stack.name!r} not attached to {self.name}")
        existing = self._addr_map.get(addr.value)
        if existing is None and self._addr_blocks:
            existing = self._block_port(addr.value)
        if existing is not None and existing is not port:
            raise RoutingError(
                f"{addr} already registered to {existing.stack.name!r}"
            )
        self._block_holes.discard(addr.value)
        self._addr_map[addr.value] = port

    def register_address_block(
        self, start: int, end: int, stack: "NetworkStack"
    ) -> None:
        """Learn that the contiguous run ``[start, end)`` lives behind
        ``stack``'s port, in O(1) — block placement registers each
        physical node's slice this way."""
        port = self._ports.get(stack.name)
        if port is None:
            raise RoutingError(f"stack {stack.name!r} not attached to {self.name}")
        if end <= start:
            raise RoutingError(f"empty address block [{start}, {end})")
        for lo, hi, other in self._addr_blocks:
            if start < hi and lo < end and other is not port:
                raise RoutingError(
                    f"address block [{start}, {end}) overlaps one "
                    f"registered to {other.stack.name!r}"
                )
        self._addr_blocks.append((start, end, port))
        self._addr_blocks.sort(key=lambda b: (b[0], b[1]))

    def _block_port(self, value: int) -> Optional[Port]:
        """Block fallback for a ``_addr_map`` miss; a hit is promoted
        into the map so only the first packet per destination scans."""
        for lo, hi, port in self._addr_blocks:
            if lo <= value < hi:
                if value in self._block_holes:
                    return None
                self._addr_map[value] = port
                return port
        return None

    def unregister_address(self, addr: IPv4Address) -> None:
        self._addr_map.pop(addr.value, None)
        if self._addr_blocks:
            value = addr.value
            for lo, hi, _port in self._addr_blocks:
                if lo <= value < hi:
                    self._block_holes.add(value)
                    return

    def lookup(self, addr: IPv4Address) -> Optional["NetworkStack"]:
        port = self._addr_map.get(addr.value)
        if port is None and self._addr_blocks:
            port = self._block_port(addr.value)
        return port.stack if port is not None else None

    # ------------------------------------------------------------------
    def forward(self, packet: Packet, from_stack: "NetworkStack") -> bool:
        """Carry ``packet`` from ``from_stack`` to the owner of its dst.

        The packet traverses the sender's tx pipe, then the receiver's
        rx pipe, then is handed to the receiving stack. Returns False if
        the destination is unknown (packet silently dropped, as a real
        switch would flood-and-fail).
        """
        src_port = self._ports.get(from_stack.name)
        if src_port is None:
            raise RoutingError(f"stack {from_stack.name!r} not attached to {self.name}")
        dst_port = self._addr_map.get(packet.dst.value)
        if dst_port is None:
            if self._addr_blocks:
                dst_port = self._block_port(packet.dst.value)
            if dst_port is None:
                self.packets_unroutable += 1
                return False
        self.packets_forwarded += 1

        deliver: Callable[[Packet], None] = dst_port.stack.receive_from_wire
        if dst_port is src_port:
            # Same physical node: hairpin through the tx pipe only, so
            # co-hosted virtual nodes still contend for the port once.
            return src_port.tx.transmit(packet, deliver)

        def into_rx(pkt: Packet) -> None:
            dst_port.rx.transmit(pkt, deliver)

        return src_port.tx.transmit(packet, into_rx)

    # ------------------------------------------------------------------
    def port_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-port byte counters (for saturation analysis)."""
        return {
            name: {
                "tx_bytes": port.tx.bytes_out,
                "rx_bytes": port.rx.bytes_out,
                "tx_dropped": port.tx.packets_dropped_queue + port.tx.packets_dropped_loss,
                "rx_dropped": port.rx.packets_dropped_queue + port.rx.packets_dropped_loss,
            }
            for name, port in self._ports.items()
        }

    def __len__(self) -> int:
        return len(self._ports)
