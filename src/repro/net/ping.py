"""``ping`` utility over the emulated ICMP path.

Used by the Figure 6 experiment (RTT versus firewall rule count) and by
the Figure 7 topology validation (latency decomposition between virtual
nodes in different groups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.net.addr import IPv4Address
from repro.net.stack import NetworkStack
from repro.sim.process import Process, TIMEOUT


@dataclass(frozen=True)
class PingResult:
    """Summary of one ping run (times in seconds)."""

    rtts: tuple
    sent: int
    received: int

    @property
    def lost(self) -> int:
        return self.sent - self.received

    @property
    def min(self) -> float:
        return min(self.rtts)

    @property
    def avg(self) -> float:
        return sum(self.rtts) / len(self.rtts)

    @property
    def max(self) -> float:
        return max(self.rtts)

    def __str__(self) -> str:
        if not self.rtts:
            return f"{self.sent} sent, all lost"
        return (
            f"{self.sent} sent, {self.received} received, "
            f"rtt min/avg/max = {self.min * 1e3:.3f}/{self.avg * 1e3:.3f}/{self.max * 1e3:.3f} ms"
        )


def ping_process(
    stack: NetworkStack,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    count: int = 4,
    interval: float = 1.0,
    size: int = 64,
    timeout: float = 5.0,
):
    """Generator for a :class:`~repro.sim.process.Process` sending
    ``count`` echoes and returning a :class:`PingResult`."""
    rtts: List[float] = []
    sent = 0
    for i in range(count):
        sig = stack.send_echo(src, dst, size=size)
        sent += 1
        rtt = yield (sig, timeout)
        if rtt is not TIMEOUT:
            rtts.append(rtt)
        if i != count - 1:
            yield interval
    return PingResult(rtts=tuple(rtts), sent=sent, received=len(rtts))


def ping(
    sim,
    stack: NetworkStack,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    count: int = 4,
    interval: float = 1.0,
    size: int = 64,
    timeout: float = 5.0,
) -> Process:
    """Spawn a ping process; read ``.result`` after ``sim.run()``."""
    return Process(
        sim,
        ping_process(stack, src, dst, count=count, interval=interval, size=size, timeout=timeout),
        name=f"ping {src}->{dst}",
    )
