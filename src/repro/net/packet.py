"""Packet objects flowing through the emulated network.

The emulation is message-level rather than MTU-level: one
:class:`Packet` carries one transport message (a TCP segment holding a
whole protocol message, a UDP datagram, or an ICMP echo). Its ``size``
includes header overhead, and Dummynet pipes serialize it at
``size / bandwidth`` — the same first-order behaviour as a burst of
MTU-sized frames, at a fraction of the event count. This is the key
trade-off that lets the Figure 10/11 scalability runs (5754 clients)
fit in a Python event loop.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.net.addr import IPv4Address

#: Bytes of L3+L4 header overhead applied to each message.
TCP_HEADER = 40
UDP_HEADER = 28
ICMP_HEADER = 28

PROTO_TCP = "tcp"
PROTO_UDP = "udp"
PROTO_ICMP = "icmp"

_packet_ids = itertools.count(1)


class Packet:
    """One unit of traffic.

    Attributes
    ----------
    src, dst:
        Source / destination IPv4 addresses.
    proto:
        One of ``"tcp"``, ``"udp"``, ``"icmp"``.
    size:
        Total on-wire size in bytes (payload + headers); what pipes
        charge against bandwidth.
    sport, dport:
        Transport ports (0 for ICMP).
    payload:
        Arbitrary transport/application payload object.
    kind:
        Transport-level kind tag (e.g. ``"syn"``, ``"data"``, ``"fin"``,
        ``"echo"``); interpreted by the receiving stack.
    on_drop:
        Optional callable invoked (with the packet) if any pipe on the
        path drops the packet; transports hook retransmission here.
    flow:
        Optional flow label for the flight recorder (stamped by the
        transport or, lazily, by :class:`~repro.obs.flight.FlightRecorder`).
        ``None`` when flight recording is off — zero per-packet cost.
    """

    __slots__ = (
        "id", "src", "dst", "proto", "size", "sport", "dport", "payload", "kind", "on_drop",
        "flow",
    )

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        proto: str,
        size: int,
        sport: int = 0,
        dport: int = 0,
        payload: Any = None,
        kind: str = "data",
    ) -> None:
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.proto = proto
        self.size = size
        self.sport = sport
        self.dport = dport
        self.payload = payload
        self.kind = kind
        self.on_drop = None
        self.flow = None

    def reply_template(self, proto: Optional[str] = None) -> "Packet":
        """A packet headed back to this packet's source (ports swapped)."""
        return Packet(
            src=self.dst,
            dst=self.src,
            proto=proto or self.proto,
            size=self.size,
            sport=self.dport,
            dport=self.sport,
            kind=self.kind,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.id} {self.proto}/{self.kind} "
            f"{self.src}:{self.sport} -> {self.dst}:{self.dport}, {self.size}B)"
        )
