"""Packet objects flowing through the emulated network.

The emulation is message-level rather than MTU-level: one
:class:`Packet` carries one transport message (a TCP segment holding a
whole protocol message, a UDP datagram, or an ICMP echo). Its ``size``
includes header overhead, and Dummynet pipes serialize it at
``size / bandwidth`` — the same first-order behaviour as a burst of
MTU-sized frames, at a fraction of the event count. This is the key
trade-off that lets the Figure 10/11 scalability runs (5754 clients)
fit in a Python event loop.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.net.addr import IPv4Address

#: Bytes of L3+L4 header overhead applied to each message.
TCP_HEADER = 40
UDP_HEADER = 28
ICMP_HEADER = 28

PROTO_TCP = "tcp"
PROTO_UDP = "udp"
PROTO_ICMP = "icmp"

_packet_ids = itertools.count(1)


def swap_id_stream(stream: "itertools.count") -> "itertools.count":
    """Install ``stream`` as the packet-id source; return the old one.

    The packet-id counter is the one piece of process-global state the
    network layer owns. The partition driver
    (:mod:`repro.sim.partition`) gives every cell its *own* id stream —
    swapped in around each build/window/finish slice — so a cell's
    flight and trace output is a function of the cell alone, not of
    which other cells happen to share the worker process. Single-cell
    code never needs this.
    """
    global _packet_ids
    prev = _packet_ids
    _packet_ids = stream
    return prev

#: Free list for :func:`acquire`/:func:`release` (bounded).
_pool: list = []
POOL_CAP = 2048

#: Wall-clock observability: how many acquires were served from the
#: pool instead of allocating. Never part of deterministic output.
packets_reused = 0


class Packet:
    """One unit of traffic.

    Attributes
    ----------
    src, dst:
        Source / destination IPv4 addresses.
    proto:
        One of ``"tcp"``, ``"udp"``, ``"icmp"``.
    size:
        Total on-wire size in bytes (payload + headers); what pipes
        charge against bandwidth.
    sport, dport:
        Transport ports (0 for ICMP).
    payload:
        Arbitrary transport/application payload object.
    kind:
        Transport-level kind tag (e.g. ``"syn"``, ``"data"``, ``"fin"``,
        ``"echo"``); interpreted by the receiving stack.
    on_drop:
        Optional callable invoked (with the packet) if any pipe on the
        path drops the packet; transports hook retransmission here.
    flow:
        Optional flow label for the flight recorder (stamped by the
        transport or, lazily, by :class:`~repro.obs.flight.FlightRecorder`).
        ``None`` when flight recording is off — zero per-packet cost.
    pooled:
        True when the packet was allocated through :func:`acquire` and
        its lifecycle is owned by the stack/transport layers, making it
        eligible for :func:`release` back to the free list. Packets
        built directly (tests, user code) are never recycled.
    """

    __slots__ = (
        "id", "src", "dst", "proto", "size", "sport", "dport", "payload", "kind", "on_drop",
        "flow", "pooled",
    )

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        proto: str,
        size: int,
        sport: int = 0,
        dport: int = 0,
        payload: Any = None,
        kind: str = "data",
    ) -> None:
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.proto = proto
        self.size = size
        self.sport = sport
        self.dport = dport
        self.payload = payload
        self.kind = kind
        self.on_drop = None
        self.flow = None
        self.pooled = False

    def reply_template(self, proto: Optional[str] = None) -> "Packet":
        """A packet headed back to this packet's source (ports swapped)."""
        return Packet(
            src=self.dst,
            dst=self.src,
            proto=proto or self.proto,
            size=self.size,
            sport=self.dport,
            dport=self.sport,
            kind=self.kind,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.id} {self.proto}/{self.kind} "
            f"{self.src}:{self.sport} -> {self.dst}:{self.dport}, {self.size}B)"
        )


# ----------------------------------------------------------------------
# Packet pool (hot-path allocation cut; see repro.hotpath / DESIGN.md)
# ----------------------------------------------------------------------
def acquire(
    src: IPv4Address,
    dst: IPv4Address,
    proto: str,
    size: int,
    sport: int = 0,
    dport: int = 0,
    payload: Any = None,
    kind: str = "data",
) -> Packet:
    """Allocate a packet, reusing a released one when available.

    Observationally identical to constructing :class:`Packet` directly:
    a reused packet draws a **fresh id** from the same global counter
    (one id per logical packet either way, so the id stream — and hence
    flight/trace output — is byte-identical with pooling on or off) and
    every field is reset. The only difference is wall-clock allocation
    cost. The pool is only ever *fed* when the owning simulator's
    ``allow_packet_reuse`` flag is set (see :class:`NetworkStack`), so
    the ``REPRO_SLOW_PATH=1`` reference run never recycles.
    """
    if _pool:
        global packets_reused
        pkt = _pool.pop()
        pkt.id = next(_packet_ids)
        pkt.src = src
        pkt.dst = dst
        pkt.proto = proto
        pkt.size = size
        pkt.sport = sport
        pkt.dport = dport
        pkt.payload = payload
        pkt.kind = kind
        pkt.on_drop = None
        pkt.flow = None
        packets_reused += 1
        return pkt
    pkt = Packet(src, dst, proto, size, sport, dport, payload, kind)
    pkt.pooled = True
    return pkt


def release(pkt: Packet) -> None:
    """Return a dead pooled packet to the free list.

    Callers must prove the packet is unreferenced (the stack's delivery
    tail uses a refcount gate). Payload/callback references are cleared
    so the pool never pins transport state.
    """
    if len(_pool) < POOL_CAP:
        pkt.payload = None
        pkt.on_drop = None
        pkt.flow = None
        _pool.append(pkt)


def retag(pkt: Packet, src: IPv4Address, dst: IPv4Address, kind: str) -> Packet:
    """Reuse ``pkt`` in place as a logically new packet (fresh id).

    Used for turnaround replies (ICMP echo) where the request dies in
    the same callback that builds the response: same ``proto``/``size``/
    ``payload``, new endpoints and kind. Draws one id, exactly like the
    reply construction it replaces.
    """
    pkt.id = next(_packet_ids)
    pkt.src = src
    pkt.dst = dst
    pkt.kind = kind
    pkt.on_drop = None
    pkt.flow = None
    return pkt
