"""Flow-level (fluid) transfer engine.

The packet path charges one kernel event per hop per segment even when
a swarm is in steady state and every pipe is simply draining at its
configured rate — the regime fig8/fig10/fig11 spend most of their
simulated time in. This module models a long-lived bulk TCP transfer
as a *flow* advanced by piecewise-constant rate updates: a
:class:`FlowScheduler` attached to the simulator performs max-min
fair-share allocation (progressive filling) over the
:class:`~repro.net.pipe.DummynetPipe` capacities a flow traverses and
schedules one event per *rate-change epoch* (flow start/finish,
competing-flow arrival/departure, pipe reconfigure) instead of one per
packet. Deliveries call the receiver connection's ``handle_data``
directly, so the same :mod:`repro.net.tcp` / BitTorrent observers fire
as on the packet path.

Hybridization seam
------------------
``Connection._transmit`` asks the scheduler to :meth:`~FlowScheduler.
admit` every DATA segment. A segment fluidizes only when *all* of the
following hold; anything else takes the exact packet path:

* the segment's wire size is at least ``SimConfig.fluid_threshold``;
* explicit ACKs are off (the fluid model uses the delivery-time window
  credit) and the flight recorder is disabled;
* neither endpoint stack has a packet tap (Sniffer) attached;
* both firewall verdicts allow the flow and every pipe on the resolved
  path is lossless (``plr == 0``) and unbounded (no ``queue_limit``);
* source and destination are distinct addresses reachable either
  co-hosted (lo0 fold) or through the switch.

A mid-transfer tap attach (or a firewall rule change) *de-fluidizes*:
pending deliveries are cancelled, their serializer claims are rolled
back, and the undelivered segments are re-sent through
``Connection._transmit`` in order — they materialize back onto the
packet path at the flow's current offset (receiver-side sequence
reordering dedups any overlap).

Exactness vs bounded error
--------------------------
A flow whose pipes carry no other traffic runs in **exact** mode: each
segment walks the hop list with the very float expressions
``DummynetPipe.transmit`` uses, *writing the real* ``_busy_until`` of
every shaped pipe, so completion times are bit-identical to the packet
path — and cross traffic (control packets on the same pipes) still
queues behind the flow's bytes exactly as it would behind real
packets. The first time cross traffic is observed on any of the flow's
pipes (or a second fluid flow registers on one), the flow *demotes* to
**fair** mode: bytes drain from a per-flow pool at the max-min rate,
delivery projections are recomputed only at epochs, and the error is
bounded and quantified by the twin A/B harness (fig8 gate: completion
times within 2%).

Kernel contract
---------------
The scheduler keeps exactly one materialized kernel event — at the
earliest pending delivery — whenever it holds any pending segment, so
``Simulator.next_event_time()`` stays a safe lower bound (the
partition driver's lookahead argument is untouched: all fluid activity
is cell-local and never posts cross-cell messages). Between queue
events, consecutive deliveries dispatch inline (advancing the clock)
only when they provably precede everything in the event queue — the
same rule packet trains use. ``REPRO_SLOW_PATH=1`` or
``SimConfig(fluid=False)`` disables the engine entirely; the tree then
behaves byte-identically to the packet-only build.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.net.ipfw import DIR_IN, DIR_OUT
from repro.net.packet import Packet, PROTO_TCP, TCP_HEADER
from repro.sim.event import PRIORITY_NORMAL

#: Hop tags in a resolved path: a fixed delay or a Dummynet pipe.
_HOP_DELAY = 0
_HOP_PIPE = 1

#: Flow modes (see module docstring).
MODE_EXACT = "exact"
MODE_FAIR = "fair"

#: Progressive-filling share floor: guards the pathological float
#: corner where accumulated subtraction drives a pipe's residual
#: capacity epsilon-negative (rates must stay positive and finite).
_MIN_RATE = 1e-9

#: Queue depth (segments) at which a flow sharing a pipe with another
#: active flow leaves the per-segment chain-walk discipline for the
#: max-min rate model. At the default of 1 the rule reads "exact while
#: alone, rate-modelled while contended": the first admission that
#: overlaps a neighbour's backlog hands the neighbourhood to the pool.
#: Chain-walk claims under contention systematically mis-order against
#: the packet path (they book downstream serializers at admission
#: time, before the segment would physically arrive), so deeper
#: settings trade accuracy for slightly fewer epochs.
FAIR_DEPTH = 1

#: Serialization time (seconds) below which an exact-mode hop is booked
#: immediately instead of at the segment's physical arrival. Early
#: booking can delay competing traffic on that pipe by at most the
#: claimed serialization itself, so for fast pipes (switch ports, LAN
#: links) the distortion is microseconds while the saved deferral is a
#: whole scheduler step per segment per hop. Access-link bottlenecks
#: (txn well above this) always defer.
DEFER_TXN = 1e-3

#: Action-heap entry kinds (see ``FlowScheduler._heap``).
_ENTRY_HOP = 0
_ENTRY_DELIVER = 1


class _FluidSegment:
    """One admitted DATA segment riding the fluid path."""

    __slots__ = (
        "seg",
        "kind",
        "size",
        "cum_target",
        "deliver_at",
        "claims",
        "hop_i",
        "cursor",
        "dead",
        "seq",
    )

    def __init__(self, seg: Any, kind: str, size: int) -> None:
        self.seg = seg
        self.kind = kind
        #: Wire size (payload + TCP header) — what pipes charge for.
        self.size = size
        #: Cumulative admitted-byte mark this segment completes at
        #: (fair mode; 0.0 for exact/demoted segments = already final).
        self.cum_target = 0.0
        #: Final arrival time; ``-1.0`` while an exact-mode segment is
        #: still walking its hop chain (unknown until the last shaped
        #: hop is booked).
        self.deliver_at = -1.0
        #: ``(pipe, txn_seconds, interval_end)`` serializer claims
        #: written into the real ``_busy_until`` of each shaped pipe —
        #: undone (floored at ``now``) if the flow de-fluidizes before
        #: delivery. ``interval_end`` is the absolute time the claimed
        #: interval ``[end - txn, end]`` drains, letting the fair pool
        #: compute how much of a gating window is genuinely committed.
        self.claims: List[Tuple[Any, float, float]] = []
        #: Exact-mode hop cursor: index of the next hop to book and the
        #: segment's arrival sim-time there.
        self.hop_i = 0
        self.cursor = 0.0
        #: Set when the flow de-fluidizes: pending hop events become
        #: no-ops.
        self.dead = False
        #: Kernel sequence number burned for this segment's delivery
        #: (see ``FlowScheduler._heap``); ``-1`` until assigned.
        self.seq = -1


class FluidFlow:
    """One fluidized transfer direction of a TCP connection."""

    __slots__ = (
        "idx",
        "conn",
        "src_stack",
        "dst_stack",
        "remote_key",
        "hops",
        "pipes",
        "fixed_base",
        "mode",
        "queue",
        "token",
        "rate",
        "cum_admitted",
        "cum_drained",
        "last_update",
        "fw_gens",
        "delivering",
    )

    def __init__(
        self,
        idx: int,
        conn: Any,
        src_stack: Any,
        dst_stack: Any,
        remote_key: Tuple[int, int, int, int],
        hops: Tuple[Tuple[int, Any], ...],
        fixed_base: float,
        fw_gens: Tuple[int, int],
    ) -> None:
        self.idx = idx
        self.conn = conn
        self.src_stack = src_stack
        self.dst_stack = dst_stack
        self.remote_key = remote_key
        self.hops = hops
        #: The shaped pipes of the path, in hop order.
        self.pipes = tuple(
            h[1] for h in hops if h[0] == _HOP_PIPE and h[1].bandwidth is not None
        )
        self.fixed_base = fixed_base
        self.mode = MODE_EXACT
        self.queue: Deque[_FluidSegment] = deque()
        #: Heap-entry validity token (bumped whenever the head changes).
        self.token = 0
        self.rate: Optional[float] = None
        self.cum_admitted = 0.0
        self.cum_drained = 0.0
        self.last_update = 0.0
        self.fw_gens = fw_gens
        #: True while this flow's head delivery callback runs (window
        #: re-admissions during it must not trigger a spurious epoch).
        self.delivering = False

    # -- fair-mode byte pool -------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate the drain under the current (old) rate up to ``now``."""
        rate = self.rate
        if rate is not None and rate > 0.0:
            drained = self.cum_drained + rate * (now - self.last_update)
            self.cum_drained = (
                drained if drained < self.cum_admitted else self.cum_admitted
            )
        self.last_update = now

    def latency(self, size: int) -> float:
        """Fixed path latency plus store-and-forward extras for ``size``.

        The drain term (``remaining / rate``) already covers one
        serialization at the bottleneck (``rate`` never exceeds any
        pipe's capacity), so every *other* shaped pipe contributes one
        ``size / bandwidth`` store-and-forward hop; propagation delays
        are read live so ``reconfigure(delay=...)`` takes effect at the
        next projection.
        """
        lat = self.fixed_base
        ser = 0.0
        largest = 0.0
        for tag, val in self.hops:
            if tag == _HOP_PIPE:
                lat += val.delay
                bw = val.bandwidth
                if bw is not None:
                    txn = size / bw
                    ser += txn
                    if txn > largest:
                        largest = txn
        return lat + ser - largest

    def reproject(self, now: float) -> None:
        """Recompute queued delivery times under the current rate.

        Segments already fully drained into the wire keep their frozen
        times; projections are clamped monotone non-decreasing (FIFO).
        """
        rate = self.rate
        drained = self.cum_drained
        prev = 0.0
        for fseg in self.queue:
            if fseg.cum_target > drained:
                if rate is None or rate <= 0.0:
                    d = now + (fseg.cum_target - drained) / _MIN_RATE
                elif rate == float("inf"):
                    d = now + self.latency(fseg.size)
                else:
                    d = (
                        now
                        + (fseg.cum_target - drained) / rate
                        + self.latency(fseg.size)
                    )
            else:
                d = fseg.deliver_at
                if d < 0.0:
                    # Exact-era segment still walking its hop chain:
                    # its time is unknown until the last hop is booked.
                    # Queue FIFO (only the head is ever delivered)
                    # keeps ordering sound regardless.
                    continue
            if d < prev:
                d = prev
            fseg.deliver_at = d
            prev = d


class FlowScheduler:
    """Max-min fair fluid-flow engine attached to one simulator."""

    def __init__(self, sim: Any, threshold: int = 8192) -> None:
        self.sim = sim
        self.threshold = threshold
        self.fair_depth = FAIR_DEPTH
        self.defer_txn = DEFER_TXN
        self._flows: Dict[int, FluidFlow] = {}
        self._by_conn: Dict[Any, FluidFlow] = {}
        #: conn -> src firewall generation at the ineligibility verdict
        #: (re-probed when the rule set changes).
        self._ineligible: Dict[Any, int] = {}
        #: pipe id() -> {flow_idx: flow} — registration in deterministic
        #: creation order (dicts double as ordered sets here).
        self._by_pipe: Dict[int, Dict[int, FluidFlow]] = {}
        #: pipe id() -> deterministic small integer (epoch iteration and
        #: tie-breaking must never order by raw ``id()`` values).
        self._pipe_ids: Dict[int, int] = {}
        self._pipe_objs: Dict[int, Any] = {}
        self._next_flow = 0
        self._next_pipe = 0
        #: Global action heap of ``(time, seq, kind, aux)`` entries —
        #: kind ``_ENTRY_HOP`` books a deferred hop step
        #: (``aux=(flow, fseg)``, invalidated by ``fseg.dead``), kind
        #: ``_ENTRY_DELIVER`` delivers a flow head
        #: (``aux=(flow_idx, token)``, lazily invalidated via the
        #: per-flow token). ``seq`` is a *kernel* sequence number burned
        #: (``EventQueue.burn_seq``) at the moment the packet path
        #: would have pushed the corresponding event, and every
        #: materialization/inline dispatch honours full
        #: ``(time, priority, seq)`` order against the kernel queue —
        #: so equal-time ties against ordinary packet events (a FIN
        #: chasing the last DATA segment, say) resolve exactly as on
        #: the reference path.
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._event: Optional[Any] = None
        self._event_time = 0.0
        self._event_seq = -1
        self._in_fire = False
        #: pipe id -> absolute time until which the pipe's capacity is
        #: committed to exact-mode claims written *before* the pipe
        #: became contended. The fair pool must not double-book that
        #: capacity: such pipes contribute zero bandwidth to progressive
        #: filling until the release time passes (an epoch timer
        #: recomputes shares then).
        self._pipe_release: Dict[int, float] = {}
        self._epoch_timer: Optional[Any] = None
        self._epoch_timer_at = 0.0
        #: Admitted-but-undelivered segments (the kernel folds these
        #: into ``Simulator.pending``).
        self.pending_segments = 0
        registry = getattr(sim, "metrics", None)
        from repro.obs.metrics import NULL_REGISTRY

        registry = registry or NULL_REGISTRY
        self._m_flows = registry.counter("net.fluid.flows")
        self._m_segments = registry.counter("net.fluid.segments")
        self._m_bytes = registry.counter("net.fluid.bytes")
        self._m_epochs = registry.counter("net.fluid.epochs")
        self._m_demotions = registry.counter("net.fluid.demotions")
        self._m_defluidized = registry.counter("net.fluid.defluidized")
        # Wall-only: how deliveries were dispatched is a scheduling
        # detail (profiler on/off changes it), not an emulation
        # observable.
        self._m_inline = registry.counter("net.fluid.inline_deliveries", wall=True)
        self._m_dead = registry.counter("net.fluid.dead_deliveries", wall=True)

    # ------------------------------------------------------------------
    # Admission (the Connection._transmit seam)
    # ------------------------------------------------------------------
    def admit(self, conn: Any, seg: Any, kind: str) -> bool:
        """Take over delivery of ``seg`` if the transfer is eligible.

        Returns ``True`` when the segment now rides the fluid path (the
        caller must not build a packet); ``False`` selects the packet
        path.
        """
        size = seg.size + TCP_HEADER
        if size < self.threshold:
            return False
        flow = self._by_conn.get(conn)
        if flow is not None and flow.fw_gens != (
            flow.src_stack.fw.generation,
            flow.dst_stack.fw.generation,
        ):
            # The rule set changed under the flow: its resolved path
            # (and claims) may be stale. De-fluidize; the resends below
            # re-probe and may immediately re-fluidize on a fresh path.
            self._kill_flow(flow, resend=True)
            flow = self._by_conn.get(conn)
        if flow is None:
            cached = self._ineligible.get(conn)
            if cached is not None and cached == conn.tcp.stack.fw.generation:
                return False
            flow = self._create_flow(conn)
            if flow is None:
                self._ineligible[conn] = conn.tcp.stack.fw.generation
                return False
        sim = self.sim
        now = sim.now
        fseg = _FluidSegment(seg, kind, size)
        self._m_segments.inc()
        self._m_bytes.inc(size)
        if flow.mode == MODE_FAIR:
            if (
                not flow.queue
                and not flow.delivering
                and not self._active_fair_neighbor(flow)
            ):
                # Idle, and the pool regime has drained around it:
                # back to the chain-walk discipline.
                flow.mode = MODE_EXACT
                flow.cum_admitted = 0.0
                flow.cum_drained = 0.0
        elif self._active_fair_neighbor(flow):
            # A pipe it shares is pool-modelled: chain claims would
            # race the pool's capacity accounting, so join the pool.
            self._demote(flow, now)
            self._epoch(now)
        if flow.mode == MODE_EXACT:
            fseg.cursor = now
            flow.queue.append(fseg)
            self.pending_segments += 1
            self._hop_step(flow, fseg)
            if len(flow.queue) >= self.fair_depth and self._active_neighbor(flow):
                # Deep backlog on a shared path: the steady-state
                # "packet storm" regime. Hand the whole neighbourhood
                # to the rate model — one epoch instead of per-segment
                # bookkeeping from here on.
                self._demote(flow, now)
                for f2 in self._neighbors(flow):
                    if f2.queue:
                        self._demote(f2, now)
                self._epoch(now)
            self._sync_event()
        else:
            flow.advance(now)
            flow.cum_admitted += size
            fseg.cum_target = flow.cum_admitted
            fseg.seq = sim._queue.burn_seq()
            was_empty = not flow.queue
            flow.queue.append(fseg)
            self.pending_segments += 1
            if was_empty and not flow.delivering:
                # Idle -> active transition: the flow re-enters the
                # fair-share competition; everyone's rate may change.
                self._epoch(now)
            else:
                rate = flow.rate
                if rate == float("inf"):
                    d = now + flow.latency(size)
                elif rate is None or rate <= 0.0:
                    d = now + (fseg.cum_target - flow.cum_drained) / _MIN_RATE
                else:
                    d = (
                        now
                        + (fseg.cum_target - flow.cum_drained) / rate
                        + flow.latency(size)
                    )
                if len(flow.queue) > 1:
                    prev = flow.queue[-2].deliver_at
                    if d < prev:
                        d = prev
                fseg.deliver_at = d
                if len(flow.queue) == 1:
                    flow.token += 1
                    self._push_head(flow)
            self._sync_event()
        return True

    # ------------------------------------------------------------------
    # Path resolution / eligibility
    # ------------------------------------------------------------------
    def _create_flow(self, conn: Any) -> Optional[FluidFlow]:
        sim = self.sim
        if getattr(sim, "flight", None) is not None and sim.flight.enabled:
            return None
        src_stack = conn.tcp.stack
        if conn.tcp.explicit_acks:
            return None
        if src_stack._egress_taps or src_stack._ingress_taps:
            return None
        src, sport = conn.local
        dst, dport = conn.remote
        if src.value == dst.value:
            return None  # true loopback is already a single event
        co_hosted = src_stack.is_local_value(dst.value)
        if co_hosted:
            dst_stack = src_stack
        else:
            switch = src_stack.switch
            if switch is None:
                return None
            dst_stack = switch.lookup(dst)
            if dst_stack is None:
                return None
            if dst_stack._ingress_taps or dst_stack._egress_taps:
                return None
        if dst_stack.tcp.explicit_acks:
            return None
        probe = Packet(src, dst, PROTO_TCP, TCP_HEADER, sport=sport, dport=dport)
        v_out = src_stack.fw.evaluate(probe, DIR_OUT)
        if not v_out.allowed:
            return None
        v_in = dst_stack.fw.evaluate(probe, DIR_IN)
        if not v_in.allowed:
            return None
        hops: List[Tuple[int, Any]] = []
        extra_out = v_out.scanned * src_stack.rule_eval_cost
        if co_hosted:
            hops.append((_HOP_DELAY, extra_out + src_stack.loopback_delay))
            hops.extend((_HOP_PIPE, p) for p in v_out.pipes)
        else:
            hops.append((_HOP_DELAY, extra_out))
            hops.extend((_HOP_PIPE, p) for p in v_out.pipes)
            switch = src_stack.switch
            src_port = switch._ports.get(src_stack.name)
            dst_port = switch._ports.get(dst_stack.name)
            if src_port is None or dst_port is None:
                return None
            if dst_port is src_port:
                hops.append((_HOP_PIPE, src_port.tx))
            else:
                hops.append((_HOP_PIPE, src_port.tx))
                hops.append((_HOP_PIPE, dst_port.rx))
        extra_in = v_in.scanned * dst_stack.rule_eval_cost
        hops.append((_HOP_DELAY, extra_in))
        hops.extend((_HOP_PIPE, p) for p in v_in.pipes)
        fixed_base = 0.0
        for tag, val in hops:
            if tag == _HOP_DELAY:
                fixed_base += val
            else:
                if val.plr > 0.0 or val.queue_limit is not None:
                    return None  # lossy/bounded pipes stay on the packet path
        flow = FluidFlow(
            idx=self._next_flow,
            conn=conn,
            src_stack=src_stack,
            dst_stack=dst_stack,
            remote_key=(dst.value, dport, src.value, sport),
            hops=tuple(hops),
            fixed_base=fixed_base,
            fw_gens=(src_stack.fw.generation, dst_stack.fw.generation),
        )
        self._next_flow += 1
        self._flows[flow.idx] = flow
        self._by_conn[conn] = flow
        self._m_flows.inc()
        for tag, val in flow.hops:
            if tag != _HOP_PIPE:
                continue
            pid = self._pipe_ids.get(id(val))
            if pid is None:
                pid = self._pipe_ids[id(val)] = self._next_pipe
                self._pipe_objs[pid] = val
                self._next_pipe += 1
            self._by_pipe.setdefault(id(val), {})[flow.idx] = flow
        # New flows always start on the chain-walk discipline: with a
        # sole occupant it is bit-identical to the packet path, and
        # under contention it reproduces the pipes' FIFO service order.
        # The rate model takes over via the fair-depth trigger in
        # :meth:`admit` once a genuinely deep shared backlog builds.
        return flow

    # ------------------------------------------------------------------
    # Exact mode
    # ------------------------------------------------------------------
    def _hop_step(self, flow: FluidFlow, fseg: _FluidSegment) -> None:
        """Advance the segment along its hop list with
        ``DummynetPipe.transmit``'s arithmetic, writing the real
        serializer state.

        Each shaped pipe is booked at the sim time the segment
        *arrives* there — exactly when the packet path's per-hop event
        would call ``transmit`` — via one deferred kernel event per
        downstream shaped hop. Booking every hop up front at admission
        (the obvious shortcut) reserves downstream serializers before
        the segment could physically reach them, which inverts the
        pipes' FIFO order against competing traffic and measurably
        distorts contended runs. Float-operation order matches the
        packet path expression for expression, so a sole occupant's
        delivery times are bit-identical.
        """
        sim = self.sim
        hops = flow.hops
        n = len(hops)
        t = fseg.cursor
        i = fseg.hop_i
        size = fseg.size
        release = self._pipe_release
        while i < n:
            tag, val = hops[i]
            if tag == _HOP_DELAY:
                if val > 0.0:
                    t = t + val
            else:
                bandwidth = val.bandwidth
                if bandwidth is None:
                    t = t + val.delay
                else:
                    if t > sim.now and size / bandwidth >= self.defer_txn:
                        # The segment reaches this serializer later:
                        # book it then, so traffic arriving in between
                        # keeps the pipe's true FIFO order. (Fast pipes
                        # are booked immediately — see DEFER_TXN.) The
                        # burned seq pins the booking's tie order among
                        # equal-time kernel events to the packet path's.
                        fseg.cursor = t
                        fseg.hop_i = i
                        heappush(
                            self._heap,
                            (t, sim._queue.burn_seq(), _ENTRY_HOP, (flow, fseg)),
                        )
                        self._sync_event()
                        return
                    busy = val._busy_until
                    backlog_start = busy if busy > t else t
                    txn = size / bandwidth
                    depart = backlog_start + txn
                    val._busy_until = depart
                    arrival_delay = depart - t + val.delay
                    t = t + arrival_delay
                    fseg.claims.append((val, txn, depart))
                    if release:
                        # The pool is rate-gating this pipe: keep the
                        # release horizon honest about the new claim.
                        pid = self._pipe_ids[id(val)]
                        if pid in release and depart > release[pid]:
                            release[pid] = depart
            i += 1
        fseg.cursor = t
        fseg.hop_i = i
        fseg.deliver_at = t
        # Burned now — the moment the packet path's final transmit
        # would have scheduled the delivery event.
        fseg.seq = sim._queue.burn_seq()
        if flow.queue and flow.queue[0] is fseg:
            flow.token += 1
            self._push_head(flow)
            self._sync_event()

    def _claimed_remaining(self, pipe: Any, now: float) -> float:
        """Transmission-seconds of chain-walk claim intervals still
        ahead of ``now`` on ``pipe``: every undelivered segment of every
        resident flow contributes ``min(txn, end - now)`` for its claim
        here. Intervals already drained contribute nothing even when
        the segment itself is still in flight further down its path."""
        total = 0.0
        for f in self._by_pipe[id(pipe)].values():
            for fseg in f.queue:
                for p, txn, end in fseg.claims:
                    if p is pipe and end > now:
                        ahead = end - now
                        total += txn if txn < ahead else ahead
        return total

    # ------------------------------------------------------------------
    # Fair mode
    # ------------------------------------------------------------------
    def _demote(self, flow: FluidFlow, now: float) -> None:
        """Chain-walk -> rate-model transition (deep shared backlog,
        or the flow joined a pipe already run by the pool).

        Already-queued chain-walk segments keep their (committed,
        claimed) delivery times; the byte pool starts empty so only
        segments admitted from now on are rate-modelled. The committed
        serializer backlog (``_busy_until``) on each of the flow's
        pipes is snapshotted as a *release time*: until it passes, the
        fair pool sees zero capacity there — the pipe is genuinely busy
        draining claimed bytes, and handing out its bandwidth again
        would double-book it (flows would finish faster than the pipe
        allows). Callers fire the :meth:`_epoch` themselves (so a
        cascade of demotions costs one epoch).
        """
        if flow.mode != MODE_EXACT:
            return
        flow.mode = MODE_FAIR
        flow.cum_admitted = 0.0
        flow.cum_drained = 0.0
        flow.last_update = now
        for p in flow.pipes:
            pid = self._pipe_ids[id(p)]
            busy = p._busy_until
            if busy > now and busy > self._pipe_release.get(pid, 0.0):
                self._pipe_release[pid] = busy
        self._m_demotions.inc()

    def _neighbors(self, flow: FluidFlow) -> List[FluidFlow]:
        """Other flows registered on any of ``flow``'s shaped pipes,
        in deterministic registration order."""
        out: List[FluidFlow] = []
        seen = {flow.idx}
        for p in flow.pipes:
            for f2 in self._by_pipe[id(p)].values():
                if f2.idx not in seen:
                    seen.add(f2.idx)
                    out.append(f2)
        return out

    def _active_neighbor(self, flow: FluidFlow) -> bool:
        for p in flow.pipes:
            for f2 in self._by_pipe[id(p)].values():
                if f2 is not flow and f2.queue:
                    return True
        return False

    def _active_fair_neighbor(self, flow: FluidFlow) -> bool:
        for p in flow.pipes:
            for f2 in self._by_pipe[id(p)].values():
                if f2 is not flow and f2.queue and f2.mode == MODE_FAIR:
                    return True
        return False

    def _epoch(self, now: float) -> None:
        """One rate-change epoch: progressive-filling max-min shares
        over every contended pipe, then reprojection of all active
        fair flows. Deterministic: iteration follows flow/pipe
        registration order, never hash or ``id()`` order."""
        active = [
            f
            for f in self._flows.values()
            if f.mode == MODE_FAIR and f.queue
        ]
        if not active:
            self._sync_event()
            return
        self._m_epochs.inc()
        for f in active:
            f.advance(now)
        # Pipe membership (insertion-ordered by flow idx, hop order).
        cap_left: Dict[int, float] = {}
        members: Dict[int, List[FluidFlow]] = {}
        unfrozen: Dict[int, FluidFlow] = {}
        flow_pids: Dict[int, List[int]] = {}
        next_release = float("inf")
        for f in active:
            pids = []
            for p in f.pipes:
                pid = self._pipe_ids[id(p)]
                if pid not in members:
                    members[pid] = []
                    rel = self._pipe_release.get(pid, 0.0)
                    if rel > now:
                        # Part of the window up to ``rel`` is committed
                        # to exact-era claims — but only the claimed
                        # intervals themselves; the gaps between them
                        # (a downstream claim starts when its segment
                        # would *arrive*) are genuinely idle, and the
                        # packet path would serve competing traffic in
                        # them. Hand the pool the average leftover rate.
                        window = rel - now
                        free = window - self._claimed_remaining(p, now)
                        if free > 0.0:
                            cap_left[pid] = p.bandwidth * (free / window)
                        else:
                            cap_left[pid] = 0.0
                        if rel < next_release:
                            next_release = rel
                    else:
                        if rel:
                            del self._pipe_release[pid]
                        cap_left[pid] = p.bandwidth
                members[pid].append(f)
                pids.append(pid)
            flow_pids[f.idx] = pids
            if pids:
                unfrozen[f.idx] = f
            else:
                f.rate = float("inf")  # pure-delay path: drains instantly
        unfrozen_count = {pid: len(flows) for pid, flows in members.items()}
        while unfrozen:
            best_pid = -1
            best_share = 0.0
            for pid, n in unfrozen_count.items():
                if n <= 0:
                    continue
                share = cap_left[pid] / n
                if best_pid < 0 or share < best_share:
                    best_pid = pid
                    best_share = share
            if best_pid < 0:
                break  # defensive: every pipe lost its unfrozen members
            if best_share < _MIN_RATE:
                best_share = _MIN_RATE
            for f in members[best_pid]:
                if f.idx not in unfrozen:
                    continue
                f.rate = best_share
                del unfrozen[f.idx]
                for pid in flow_pids[f.idx]:
                    left = cap_left[pid] - best_share
                    cap_left[pid] = left if left > 0.0 else 0.0
                    unfrozen_count[pid] -= 1
        for f in active:
            f.reproject(now)
            f.token += 1
            self._push_head(f)
        if next_release < float("inf"):
            self._schedule_epoch_timer(next_release)
        self._sync_event()

    def _schedule_epoch_timer(self, t: float) -> None:
        """Arrange a recompute of fair shares at ``t`` (a committed
        serializer backlog drains then, freeing capacity)."""
        if self._epoch_timer is not None:
            if self._epoch_timer_at <= t:
                return
            self.sim.cancel(self._epoch_timer)
        self._epoch_timer = self.sim._queue.push(
            t, self._epoch_timer_fire, (), PRIORITY_NORMAL
        )
        self._epoch_timer_at = t

    def _epoch_timer_fire(self) -> None:
        self._epoch_timer = None
        self._epoch(self.sim.now)

    # ------------------------------------------------------------------
    # Delivery machinery
    # ------------------------------------------------------------------
    def _push_head(self, flow: FluidFlow) -> None:
        if flow.queue:
            head = flow.queue[0]
            d = head.deliver_at
            if d >= 0.0:
                heappush(
                    self._heap,
                    (d, head.seq, _ENTRY_DELIVER, (flow.idx, flow.token)),
                )
            # A head still walking its hop chain (d < 0) is pushed by
            # _hop_step when its final hop is booked.

    def _peek(self) -> Optional[Tuple[float, int, int, Any]]:
        heap = self._heap
        flows = self._flows
        while heap:
            top = heap[0]
            if top[2] == _ENTRY_HOP:
                if not top[3][1].dead:
                    return top
            else:
                idx, token = top[3]
                f = flows.get(idx)
                if f is not None and f.queue and f.token == token:
                    return top
            heappop(heap)
        return None

    @property
    def deferred(self) -> int:
        """Pending fluid deliveries not represented by a queue event."""
        n = self.pending_segments
        if self._event is not None and n > 0:
            n -= 1
        return n

    def _sync_event(self) -> None:
        """Re-establish the invariant: one materialized kernel event at
        (or before) the earliest pending delivery, or none when idle."""
        if self._in_fire:
            return  # the _fire loop re-materializes on exit
        sim = self.sim
        top = self._peek()
        if top is None:
            if self._event is not None:
                sim.cancel(self._event)
                self._event = None
            return
        t = top[0]
        seq = top[1]
        if self._event is not None:
            if self._event_time < t or (
                self._event_time == t and self._event_seq <= seq
            ):
                return  # existing event already fires in order (early is safe)
            sim.cancel(self._event)
        if t < sim.now:
            t = sim.now
        self._event = sim._queue.push_with_seq(
            t, self._fire, (), PRIORITY_NORMAL, seq
        )
        self._event_time = t
        self._event_seq = seq

    def _fire(self) -> None:
        """Run every due heap action (hop bookings and deliveries),
        then either dispatch the next one inline (same rule as packet
        trains: provably precedes the whole event queue, inside a
        permissive ``run()``, within the horizon) or re-materialize one
        kernel event for it."""
        self._event = None
        self._in_fire = True
        sim = self.sim
        heap = self._heap
        try:
            while True:
                top = self._peek()
                if top is None:
                    break
                t = top[0]
                seq = top[1]
                if t < sim.now:
                    heappop(heap)  # defensive: already late, run it
                    self._run_entry(top)
                    continue
                nxt = sim._queue.next_entry()
                precedes = nxt is None or t < nxt[0] or (
                    t == nxt[0]
                    and (
                        PRIORITY_NORMAL < nxt[1]
                        or (PRIORITY_NORMAL == nxt[1] and seq < nxt[2])
                    )
                )
                if t == sim.now and precedes:
                    heappop(heap)
                    self._run_entry(top)
                    continue
                if (
                    t > sim.now
                    and precedes
                    and sim._train_inline
                    and not sim._stopped
                ):
                    horizon = sim._horizon
                    if horizon is None or t <= horizon:
                        heappop(heap)
                        sim.now = t
                        if top[2] == _ENTRY_DELIVER:
                            self._m_inline.inc()
                        self._run_entry(top)
                        continue
                # A queue event fires first (or inline dispatch is off):
                # re-materialize with the burned seq, so even an exact
                # (time, priority) tie resolves in packet-path order.
                self._event = sim._queue.push_with_seq(
                    t, self._fire, (), PRIORITY_NORMAL, seq
                )
                self._event_time = t
                self._event_seq = seq
                break
        finally:
            self._in_fire = False

    def _run_entry(self, entry: Tuple[float, int, int, Any]) -> None:
        if entry[2] == _ENTRY_HOP:
            flow, fseg = entry[3]
            self._hop_step(flow, fseg)
        else:
            self._deliver_head(self._flows[entry[3][0]])

    def _deliver_head(self, flow: FluidFlow) -> None:
        fseg = flow.queue.popleft()
        flow.token += 1
        self.pending_segments -= 1
        if flow.mode == MODE_FAIR:
            flow.advance(self.sim.now)
        self._push_head(flow)
        remote = flow.dst_stack.tcp._conns.get(flow.remote_key)
        flow.delivering = True
        try:
            if remote is not None:
                remote.handle_data(fseg.kind, fseg.seg)
            else:
                # Receiver is gone (teardown race): the bytes are lost,
                # but the sender's window must not wedge shut.
                self._m_dead.inc()
                fseg.seg.ack_hook(fseg.seg)
        finally:
            flow.delivering = False
        if not flow.queue:
            from repro.net.tcp import Connection

            if flow.conn.state is Connection.CLOSED:
                self._remove_flow(flow)
            if flow.mode == MODE_FAIR:
                if not self._active_fair_neighbor(flow):
                    # Pool regime drained around this flow too: it can
                    # return to the chain-walk discipline.
                    flow.mode = MODE_EXACT
                    flow.cum_admitted = 0.0
                    flow.cum_drained = 0.0
                # Flow leaves the fair-share competition: departure epoch.
                self._epoch(self.sim.now)

    # ------------------------------------------------------------------
    # De-fluidization / teardown
    # ------------------------------------------------------------------
    def _remove_flow(self, flow: FluidFlow) -> None:
        self._flows.pop(flow.idx, None)
        if self._by_conn.get(flow.conn) is flow:
            del self._by_conn[flow.conn]
        for tag, val in flow.hops:
            if tag == _HOP_PIPE:
                residents = self._by_pipe.get(id(val))
                if residents is not None:
                    residents.pop(flow.idx, None)

    def _kill_flow(self, flow: FluidFlow, resend: bool) -> None:
        """Cancel the flow, roll back undelivered serializer claims and
        (optionally) re-send the undelivered segments through the
        packet path, in order, at the flow's current offset."""
        now = self.sim.now
        undo: Dict[int, List[Any]] = {}
        pending = list(flow.queue)
        for fseg in pending:
            fseg.dead = True  # pending hop events become no-ops
            for p, txn, _end in fseg.claims:
                ent = undo.get(id(p))
                if ent is None:
                    undo[id(p)] = [p, txn]
                else:
                    ent[1] += txn
        for p, total in undo.values():
            rolled = p._busy_until - total
            p._busy_until = rolled if rolled > now else now
        flow.queue.clear()
        flow.token += 1
        self.pending_segments -= len(pending)
        self._remove_flow(flow)
        if pending:
            self._m_defluidized.inc()
        if flow.mode == MODE_FAIR:
            self._epoch(now)
        else:
            self._sync_event()
        if resend:
            from repro.net.tcp import Connection

            conn = flow.conn
            for fseg in pending:
                if conn.state is Connection.CLOSED:
                    break
                conn._transmit(fseg.seg, fseg.kind)

    # ------------------------------------------------------------------
    # Hooks from the rest of the tree
    # ------------------------------------------------------------------
    def on_tap_attached(self, stack: Any) -> None:
        """A Sniffer/tap landed on ``stack``: every flow touching it
        de-fluidizes (remaining bytes materialize onto the packet path,
        where the tap can observe them)."""
        for flow in list(self._flows.values()):
            if flow.src_stack is stack or flow.dst_stack is stack:
                self._kill_flow(flow, resend=True)

    def on_pipe_reconfigured(self, pipe: Any) -> None:
        """``ipfw pipe N config ...`` mid-run. Lossy pipes force their
        flows off the fluid path; capacity changes are a rate epoch."""
        residents = self._by_pipe.get(id(pipe))
        if not residents:
            return
        if pipe.plr > 0.0:
            for flow in list(residents.values()):
                self._kill_flow(flow, resend=True)
            return
        # Chain-walk flows read the live bandwidth on every admission
        # and their committed claims are absolute times — exactly the
        # packet path's carry-over of ``_busy_until`` across a
        # reconfigure — so they need no transition. Pool-modelled flows
        # get their shares refilled from the new capacity.
        self._epoch(self.sim.now)

    def on_conn_closed(self, conn: Any) -> None:
        """Connection teardown: idle flows are reaped immediately;
        draining flows are reaped once their last delivery lands."""
        self._ineligible.pop(conn, None)
        flow = self._by_conn.get(conn)
        if flow is not None and not flow.queue:
            self._remove_flow(flow)
