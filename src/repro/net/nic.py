"""Network interfaces with alias addresses.

P2PLab keeps each physical node's main IP for administration and
configures one interface alias per hosted virtual node (paper Fig. 4:
``eth0`` with 192.168.38.x primary and 10.x.y.z aliases). The paper
measured that aliases add no overhead versus a normal address
assignment, so lookups here are O(1) set membership with no cost model.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Union

from repro.errors import AddressError, VirtualizationError
from repro.net.addr import IPv4Address, ip


class Interface:
    """One NIC: a primary address plus an ordered list of aliases."""

    __slots__ = (
        "name", "primary", "_aliases", "_addr_values",
        "tx_packets", "tx_bytes", "rx_packets", "rx_bytes",
    )

    def __init__(self, name: str = "eth0", primary: Union[IPv4Address, str, None] = None) -> None:
        self.name = name
        self.primary: Optional[IPv4Address] = ip(primary) if primary is not None else None
        self._aliases: List[IPv4Address] = []
        self._addr_values: Set[int] = set()
        if self.primary is not None:
            self._addr_values.add(self.primary.value)
        # ``netstat -i``-style counters, fed by the owning stack.
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0

    def count_tx(self, size: int) -> None:
        """Account one transmitted packet of ``size`` bytes."""
        self.tx_packets += 1
        self.tx_bytes += size

    def count_rx(self, size: int) -> None:
        """Account one received packet of ``size`` bytes."""
        self.rx_packets += 1
        self.rx_bytes += size

    def stats(self) -> dict:
        return {
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
        }

    def set_primary(self, addr: Union[IPv4Address, str]) -> None:
        addr = ip(addr)
        if self.primary is not None:
            self._addr_values.discard(self.primary.value)
        self.primary = addr
        self._addr_values.add(addr.value)

    def add_alias(self, addr: Union[IPv4Address, str]) -> IPv4Address:
        """Configure an alias (``ifconfig eth0 alias A``)."""
        addr = ip(addr)
        if addr.value in self._addr_values:
            raise VirtualizationError(f"{addr} already configured on {self.name}")
        self._aliases.append(addr)
        self._addr_values.add(addr.value)
        return addr

    def remove_alias(self, addr: Union[IPv4Address, str]) -> None:
        addr = ip(addr)
        if self.primary is not None and addr.value == self.primary.value:
            raise VirtualizationError(f"{addr} is the primary address of {self.name}")
        try:
            self._aliases.remove(addr)
        except ValueError:
            raise AddressError(f"{addr} not configured on {self.name}") from None
        self._addr_values.discard(addr.value)

    def has_address(self, addr: Union[IPv4Address, str, int]) -> bool:
        if type(addr) is int:  # hot path: stacks pass raw values
            return addr in self._addr_values
        return ip(addr).value in self._addr_values

    @property
    def local_values(self) -> Set[int]:
        """Live (mutated in place, never rebound) set of configured
        address values. The owning stack caches this at construction so
        its per-packet local-destination check is a raw set membership
        with no method call; treat it as read-only."""
        return self._addr_values

    @property
    def aliases(self) -> List[IPv4Address]:
        return list(self._aliases)

    def addresses(self) -> Iterator[IPv4Address]:
        """Primary address first, then aliases in configuration order."""
        if self.primary is not None:
            yield self.primary
        yield from self._aliases

    def __len__(self) -> int:
        return len(self._addr_values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interface({self.name!r}, primary={self.primary}, aliases={len(self._aliases)})"
