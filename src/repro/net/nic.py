"""Network interfaces with alias addresses.

P2PLab keeps each physical node's main IP for administration and
configures one interface alias per hosted virtual node (paper Fig. 4:
``eth0`` with 192.168.38.x primary and 10.x.y.z aliases). The paper
measured that aliases add no overhead versus a normal address
assignment, so lookups here are O(1) set membership with no cost model.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Union

from repro.errors import AddressError, VirtualizationError
from repro.net.addr import IPv4Address, ip


class Interface:
    """One NIC: a primary address plus an ordered list of aliases.

    Aliases come in two representations: individually configured
    addresses (the ``_aliases`` list + ``_addr_values`` set) and
    *blocks* — contiguous ``[start, end)`` value runs registered in one
    call by streaming topology deployment, costing O(1) memory per run
    instead of one set entry per address. Membership checks consult the
    set first and fall back to the (few) blocks; a block hit promotes
    the value into the set so steady-state traffic never re-scans.
    """

    __slots__ = (
        "name", "primary", "_aliases", "_addr_values",
        "_alias_blocks", "_block_holes", "_configured",
        "tx_packets", "tx_bytes", "rx_packets", "rx_bytes",
    )

    def __init__(self, name: str = "eth0", primary: Union[IPv4Address, str, None] = None) -> None:
        self.name = name
        self.primary: Optional[IPv4Address] = ip(primary) if primary is not None else None
        self._aliases: List[IPv4Address] = []
        self._addr_values: Set[int] = set()
        #: Sorted, disjoint ``(start, end)`` half-open alias runs.
        self._alias_blocks: List[tuple] = []
        #: Values removed from inside a block (rare: vnode removal).
        self._block_holes: Set[int] = set()
        #: Configured address count (blocks are not expanded to count
        #: them, and set promotion must not double-count).
        self._configured = 0
        if self.primary is not None:
            self._addr_values.add(self.primary.value)
            self._configured = 1
        # ``netstat -i``-style counters, fed by the owning stack.
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0

    def count_tx(self, size: int) -> None:
        """Account one transmitted packet of ``size`` bytes."""
        self.tx_packets += 1
        self.tx_bytes += size

    def count_rx(self, size: int) -> None:
        """Account one received packet of ``size`` bytes."""
        self.rx_packets += 1
        self.rx_bytes += size

    def stats(self) -> dict:
        return {
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
        }

    def set_primary(self, addr: Union[IPv4Address, str]) -> None:
        addr = ip(addr)
        if self.primary is not None:
            self._addr_values.discard(self.primary.value)
        else:
            self._configured += 1
        self.primary = addr
        self._addr_values.add(addr.value)

    def add_alias(self, addr: Union[IPv4Address, str]) -> IPv4Address:
        """Configure an alias (``ifconfig eth0 alias A``)."""
        addr = ip(addr)
        if addr.value in self._addr_values or self._in_blocks(addr.value):
            raise VirtualizationError(f"{addr} already configured on {self.name}")
        self._aliases.append(addr)
        self._addr_values.add(addr.value)
        self._configured += 1
        return addr

    def add_alias_block(self, start: int, end: int) -> None:
        """Configure the contiguous alias run ``[start, end)`` in O(1).

        The streaming deployment path registers each physical node's
        block-placement slice this way — a million-vnode testbed keeps
        a handful of runs per interface instead of a million set
        entries.
        """
        if end <= start:
            raise VirtualizationError(f"empty alias block [{start}, {end})")
        for lo, hi in self._alias_blocks:
            if start < hi and lo < end:
                raise VirtualizationError(
                    f"alias block [{start}, {end}) overlaps [{lo}, {hi}) on {self.name}"
                )
        for value in self._addr_values:
            if start <= value < end:
                raise VirtualizationError(
                    f"alias block [{start}, {end}) overlaps configured "
                    f"address {IPv4Address(value)} on {self.name}"
                )
        self._alias_blocks.append((start, end))
        self._alias_blocks.sort()
        self._configured += end - start

    def _in_blocks(self, value: int) -> bool:
        for lo, hi in self._alias_blocks:
            if lo <= value < hi:
                return value not in self._block_holes
        return False

    def check_block(self, value: int) -> bool:
        """Block-membership fallback for the owning stack's per-packet
        local check; a hit promotes the value into the live set so the
        next packet is a plain set hit."""
        for lo, hi in self._alias_blocks:
            if lo <= value < hi:
                if value in self._block_holes:
                    return False
                self._addr_values.add(value)
                return True
        return False

    def remove_alias(self, addr: Union[IPv4Address, str]) -> None:
        addr = ip(addr)
        if self.primary is not None and addr.value == self.primary.value:
            raise VirtualizationError(f"{addr} is the primary address of {self.name}")
        try:
            self._aliases.remove(addr)
        except ValueError:
            if not self._in_blocks(addr.value):
                raise AddressError(f"{addr} not configured on {self.name}") from None
            self._block_holes.add(addr.value)
        self._addr_values.discard(addr.value)
        self._configured -= 1

    def has_address(self, addr: Union[IPv4Address, str, int]) -> bool:
        if type(addr) is int:  # hot path: stacks pass raw values
            return addr in self._addr_values or self._in_blocks(addr)
        value = ip(addr).value
        return value in self._addr_values or self._in_blocks(value)

    @property
    def local_values(self) -> Set[int]:
        """Live (mutated in place, never rebound) set of configured
        address values. The owning stack caches this at construction so
        its per-packet local-destination check is a raw set membership
        with no method call; treat it as read-only."""
        return self._addr_values

    @property
    def alias_blocks(self) -> List[tuple]:
        """Sorted ``(start, end)`` half-open block runs (live list —
        mutated in place, never rebound; treat as read-only)."""
        return self._alias_blocks

    @property
    def aliases(self) -> List[IPv4Address]:
        out = list(self._aliases)
        holes = self._block_holes
        for lo, hi in self._alias_blocks:
            out.extend(IPv4Address(v) for v in range(lo, hi) if v not in holes)
        return out

    def addresses(self) -> Iterator[IPv4Address]:
        """Primary address first, then aliases in configuration order,
        then block runs in value order."""
        if self.primary is not None:
            yield self.primary
        yield from self._aliases
        holes = self._block_holes
        for lo, hi in self._alias_blocks:
            for v in range(lo, hi):
                if v not in holes:
                    yield IPv4Address(v)

    def __len__(self) -> int:
        return self._configured

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interface({self.name!r}, primary={self.primary}, aliases={len(self._aliases)})"
