"""UDP tracker protocol (BEP 15 style).

The HTTP/TCP tracker costs three round trips per announce (SYN
handshake, request, response+FIN); the UDP protocol does it in two
datagrams after a one-time connection-id handshake, at a fraction of
the tracker's connection-handling load. Implemented here both as a
substrate exercise for the emulated UDP layer and because large
swarms moved to UDP trackers for exactly this reason.

Protocol (faithful to BEP 15's message sizes):

1. client -> tracker: ``ConnectRequest`` (16 bytes)
2. tracker -> client: ``ConnectResponse`` with a connection id (16 B)
3. client -> tracker: ``UdpAnnounceRequest`` (98 B), carrying the id
4. tracker -> client: ``UdpAnnounceResponse`` (20 + 6n B)

Datagrams are unreliable: the client retransmits with exponential
backoff (BEP 15's ``15 * 2^n`` seconds, truncated here for emulation
time scales) and gives up after :data:`UDP_RETRIES` attempts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bittorrent.tracker import AnnounceRequest, AnnounceResponse, TrackerServer
from repro.net.addr import IPv4Address
from repro.net.socket_api import ANY, Socket
from repro.sim.process import TIMEOUT
from repro.virt.vnode import VirtualNode

CONNECT_REQUEST_SIZE = 16
CONNECT_RESPONSE_SIZE = 16
ANNOUNCE_REQUEST_SIZE = 98
ANNOUNCE_RESPONSE_BASE = 20
PEER_ENTRY_SIZE = 6

#: Client retry schedule (base timeout, doubling).
UDP_TIMEOUT = 15.0
UDP_RETRIES = 3


@dataclass(frozen=True)
class ConnectRequest:
    transaction_id: int

    wire_size = CONNECT_REQUEST_SIZE


@dataclass(frozen=True)
class ConnectResponse:
    transaction_id: int
    connection_id: int

    wire_size = CONNECT_RESPONSE_SIZE


@dataclass(frozen=True)
class UdpAnnounceRequest:
    connection_id: int
    transaction_id: int
    announce: AnnounceRequest

    wire_size = ANNOUNCE_REQUEST_SIZE


@dataclass(frozen=True)
class UdpAnnounceResponse:
    transaction_id: int
    response: AnnounceResponse

    @property
    def wire_size(self) -> int:
        return ANNOUNCE_RESPONSE_BASE + PEER_ENTRY_SIZE * len(self.response.peers)


class UdpTrackerServer(TrackerServer):
    """Tracker speaking the UDP protocol; swarm logic is inherited."""

    def __init__(self, vnode: VirtualNode, port: int = 6969, interval: float = 300.0) -> None:
        super().__init__(vnode, port=port, interval=interval)
        self._next_connection_id = 0x41727101980  # BEP 15 magic base
        self._valid_ids: set[int] = set()

    def _app(self, vnode: VirtualNode):
        libc = vnode.libc
        sock = yield from libc.socket(type=Socket.UDP)
        yield from libc.bind(sock, (ANY, self.port))
        while not self.stopped:
            item = yield from libc.recvfrom(sock)
            if item is None:
                break
            payload, _size, src = item
            if isinstance(payload, ConnectRequest):
                self._next_connection_id += 1
                cid = self._next_connection_id
                self._valid_ids.add(cid)
                reply = ConnectResponse(payload.transaction_id, cid)
                sock.sendto(reply, reply.wire_size, src)
            elif isinstance(payload, UdpAnnounceRequest):
                if payload.connection_id not in self._valid_ids:
                    continue  # stale/forged id: BEP 15 drops silently
                response = self.handle_announce(payload.announce)
                reply = UdpAnnounceResponse(payload.transaction_id, response)
                sock.sendto(reply, reply.wire_size, src)


def udp_announce_once(
    vnode: VirtualNode,
    tracker_addr: Tuple[IPv4Address, int],
    request: AnnounceRequest,
    timeout: float = UDP_TIMEOUT,
):
    """Generator helper: one UDP announce (connect + announce exchange).

    Returns the peer list, or ``None`` after the retries are exhausted.
    """
    libc = vnode.libc
    sock = yield from libc.socket(type=Socket.UDP)
    yield from libc.bind(sock, (vnode.address, 0))
    rng = vnode.sim.rng.stream(f"bt.udptracker/{vnode.name}")
    try:
        # Phase 1: obtain a connection id.
        connection_id: Optional[int] = None
        for attempt in range(UDP_RETRIES):
            tid = rng.randrange(1 << 31)
            req = ConnectRequest(tid)
            yield from libc.sendto(sock, req, req.wire_size, tracker_addr)
            item = yield (sock.recvfrom(), timeout * (2**attempt))
            if item is TIMEOUT or item is None:
                continue
            payload, _size, _src = item
            if isinstance(payload, ConnectResponse) and payload.transaction_id == tid:
                connection_id = payload.connection_id
                break
        if connection_id is None:
            return None

        # Phase 2: announce.
        for attempt in range(UDP_RETRIES):
            tid = rng.randrange(1 << 31)
            req = UdpAnnounceRequest(connection_id, tid, request)
            yield from libc.sendto(sock, req, req.wire_size, tracker_addr)
            item = yield (sock.recvfrom(), timeout * (2**attempt))
            if item is TIMEOUT or item is None:
                continue
            payload, _size, _src = item
            if isinstance(payload, UdpAnnounceResponse) and payload.transaction_id == tid:
                return list(payload.response.peers)
        return None
    finally:
        sock.close()
