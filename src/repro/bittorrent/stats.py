"""Swarm-level statistics.

The measurement studies the paper cites (Izal et al.'s "Dissecting
BitTorrent", Pouwelse et al.) characterize swarms through share
ratios, seeder/leecher evolution and piece availability; this module
computes the same metrics from a finished (or running) emulated swarm,
so P2PLab users can compare their emulated swarms against those
published measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bittorrent.client import BitTorrentClient


@dataclass(frozen=True)
class ShareStats:
    """Upload/download accounting across the swarm's leechers."""

    ratios: Tuple[float, ...]  # per-leecher uploaded/downloaded
    mean_ratio: float
    min_ratio: float
    max_ratio: float
    gini: float  # inequality of upload contribution (0 = perfectly even)


def share_ratios(clients: List[BitTorrentClient]) -> ShareStats:
    """Share-ratio distribution over clients that downloaded anything."""
    ratios = [
        c.bytes_uploaded / c.bytes_downloaded
        for c in clients
        if c.bytes_downloaded > 0
    ]
    if not ratios:
        raise ValueError("no client downloaded anything")
    uploads = sorted(c.bytes_uploaded for c in clients)
    return ShareStats(
        ratios=tuple(ratios),
        mean_ratio=sum(ratios) / len(ratios),
        min_ratio=min(ratios),
        max_ratio=max(ratios),
        gini=_gini(uploads),
    )


def _gini(sorted_values: List[int]) -> float:
    """Gini coefficient of a sorted non-negative sample."""
    n = len(sorted_values)
    total = sum(sorted_values)
    if n == 0 or total == 0:
        return 0.0
    weighted = sum((i + 1) * v for i, v in enumerate(sorted_values))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


@dataclass(frozen=True)
class AvailabilityStats:
    """Piece availability across the swarm at one instant."""

    min_copies: int
    mean_copies: float
    max_copies: int
    rarest_pieces: Tuple[int, ...]


def piece_availability(clients: List[BitTorrentClient]) -> AvailabilityStats:
    """Count full-piece copies across all clients' bitfields."""
    if not clients:
        raise ValueError("no clients")
    num_pieces = clients[0].torrent.num_pieces
    copies = [0] * num_pieces
    for client in clients:
        for index in client.have.present():
            copies[index] += 1
    lowest = min(copies)
    return AvailabilityStats(
        min_copies=lowest,
        mean_copies=sum(copies) / num_pieces,
        max_copies=max(copies),
        rarest_pieces=tuple(i for i, c in enumerate(copies) if c == lowest),
    )


@dataclass(frozen=True)
class ConnectivityStats:
    """Peer-graph degree statistics."""

    mean_degree: float
    min_degree: int
    max_degree: int
    isolated: int


def connectivity(clients: List[BitTorrentClient]) -> ConnectivityStats:
    degrees = [c.peer_count for c in clients]
    return ConnectivityStats(
        mean_degree=sum(degrees) / len(degrees),
        min_degree=min(degrees),
        max_degree=max(degrees),
        isolated=sum(1 for d in degrees if d == 0),
    )


def seeder_leecher_evolution(
    trace, total_clients: int, bucket: float = 30.0
) -> List[Tuple[float, int, int]]:
    """(time, seeders, leechers) series from completion events — the
    swarm-population plot of the measurement studies. ``total_clients``
    counts downloading clients; initial seeders are excluded."""
    completions = sorted(rec.time for rec in trace.select("bt.complete"))
    if not completions:
        return []
    out: List[Tuple[float, int, int]] = []
    horizon = completions[-1]
    t = 0.0
    done = 0
    while t <= horizon + bucket:
        while done < len(completions) and completions[done] <= t:
            done += 1
        out.append((t, done, total_clients - done))
        t += bucket
    return out
