"""Choking: tit-for-tat reciprocation with optimistic unchoke.

The mainline policy the paper's client (BitTorrent 4.0.4) implements:

* every ``interval`` (10 s) re-evaluate which peers to unchoke;
* a leecher reciprocates: the interested peers that upload to us
  fastest get the regular unchoke slots;
* a seeder rotates capacity to the peers downloading fastest;
* one slot is the *optimistic unchoke*, re-drawn every third rechoke
  round (30 s), giving unknown peers a chance to prove themselves —
  "ensuring that downloaders cooperate by sharing parts they have
  already downloaded through a complex reciprocation system".
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.bittorrent.peer import PeerConnection


class RateMeter:
    """Sliding-window byte-rate estimator (four 5-second buckets)."""

    __slots__ = ("bucket_width", "nbuckets", "_buckets", "_epoch", "total")

    def __init__(self, bucket_width: float = 5.0, nbuckets: int = 4) -> None:
        self.bucket_width = bucket_width
        self.nbuckets = nbuckets
        self._buckets = [0.0] * nbuckets
        self._epoch = 0
        self.total = 0

    def record(self, now: float, nbytes: int) -> None:
        epoch = int(now / self.bucket_width)
        self._advance(epoch)
        self._buckets[epoch % self.nbuckets] += nbytes
        self.total += nbytes

    def _advance(self, epoch: int) -> None:
        if epoch == self._epoch:
            return
        step = epoch - self._epoch
        if step >= self.nbuckets:
            self._buckets = [0.0] * self.nbuckets
        else:
            for e in range(self._epoch + 1, epoch + 1):
                self._buckets[e % self.nbuckets] = 0.0
        self._epoch = epoch

    def rate(self, now: float) -> float:
        """Bytes per second over the window."""
        self._advance(int(now / self.bucket_width))
        return sum(self._buckets) / (self.bucket_width * self.nbuckets)


class Choker:
    """Drives the rechoke rounds for one client."""

    def __init__(
        self,
        client,
        interval: float = 10.0,
        upload_slots: int = 4,
        optimistic_rounds: int = 3,
    ) -> None:
        self.client = client
        self.interval = interval
        self.upload_slots = upload_slots
        self.optimistic_rounds = optimistic_rounds
        self.round = 0
        self.optimistic: Optional["PeerConnection"] = None
        self.rechokes = 0
        self._rng = client.vnode.sim.rng.stream(f"bt.choker/{client.vnode.name}")
        self._stopped = False
        self._m_rounds = client.vnode.sim.metrics.counter("bt.client.choke_rounds")

    def start(self) -> None:
        self.client.vnode.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped or self.client.stopped:
            return
        self.rechoke()
        self.client.vnode.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def rechoke(self) -> None:
        """One choking round."""
        self.rechokes += 1
        self._m_rounds.inc()
        now = self.client.vnode.sim.now
        peers: List["PeerConnection"] = [
            p for p in self.client.peers() if p.handshaked and not p.closed
        ]
        if not peers:
            return
        interested = [p for p in peers if p.peer_interested]

        # Pick/rotate the optimistic unchoke among interested peers.
        if self.round % self.optimistic_rounds == 0 or not self._valid_optimistic(interested):
            choked_interested = [p for p in interested if p.am_choking]
            self.optimistic = (
                self._rng.choice(choked_interested) if choked_interested else None
            )
        self.round += 1

        interested.sort(key=lambda p: self._rate_key(p, now), reverse=True)

        # Anti-snubbing: peers that owe us data get no regular slot.
        snub_timeout = getattr(self.client.config, "snub_timeout", 0.0)
        if snub_timeout > 0 and not self.client.complete:
            eligible = [p for p in interested if not p.snubbed(now, snub_timeout)]
        else:
            eligible = interested

        regular_slots = self.upload_slots - (1 if self.optimistic is not None else 0)
        unchoke = set(eligible[:regular_slots])
        if self.optimistic is not None:
            unchoke.add(self.optimistic)

        for peer in peers:
            if peer in unchoke:
                peer.local_unchoke()
            else:
                peer.local_choke()

    def _rate_key(self, peer: "PeerConnection", now: float) -> float:
        """Sort key for unchoke slots: as a seeder, favour the peers we
        push to fastest; as a leecher, reciprocate the best uploaders.
        Subclasses override this to study alternative policies."""
        if self.client.complete:
            return peer.upload_meter.rate(now)
        return peer.download_meter.rate(now)

    def _valid_optimistic(self, interested: List["PeerConnection"]) -> bool:
        return (
            self.optimistic is not None
            and not self.optimistic.closed
            and self.optimistic in interested
        )
