"""Piece selection: random-first, strict-priority partials, rarest-first,
endgame — the mainline BitTorrent 4.x policy set.

* until :attr:`random_first` pieces are complete, pick a random piece
  the peer has (get *something* to trade quickly);
* always prefer finishing an already-started piece (strict priority);
* otherwise pick among the rarest pieces the peer has (availability
  counted from bitfields and HAVEs), breaking ties randomly;
* when every missing block is already requested, enter endgame mode:
  re-request outstanding blocks from additional peers (bounded
  duplication) and cancel on arrival.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.metainfo import Torrent
from repro.errors import ProtocolError

#: Maximum concurrent requests for the same block in endgame mode.
ENDGAME_DUPLICATION = 2


class _PartialPiece:
    """Download state of one in-progress piece."""

    __slots__ = ("index", "nblocks", "received", "requested")

    def __init__(self, index: int, nblocks: int) -> None:
        self.index = index
        self.nblocks = nblocks
        self.received: Set[int] = set()
        self.requested: Dict[int, int] = {}  # block -> outstanding request count

    def next_fresh_block(self) -> Optional[int]:
        for b in range(self.nblocks):
            if b not in self.received and b not in self.requested:
                return b
        return None

    @property
    def complete(self) -> bool:
        return len(self.received) == self.nblocks


class PiecePicker:
    """Chooses the next (piece, block) to request from a given peer."""

    def __init__(
        self,
        torrent: Torrent,
        have: Bitfield,
        rng,
        random_first: int = 4,
        endgame_enabled: bool = True,
    ) -> None:
        self.torrent = torrent
        self.have = have
        self.rng = rng
        self.random_first = random_first
        self.endgame_enabled = endgame_enabled
        self.availability: List[int] = [0] * torrent.num_pieces
        self._partials: Dict[int, _PartialPiece] = {}
        self.blocks_received = 0
        self.duplicate_blocks = 0

    # -- availability accounting ------------------------------------------
    def peer_has(self, index: int) -> None:
        self.availability[index] += 1

    def peer_bitfield_added(self, bf: Bitfield) -> None:
        for i in bf.present():
            self.availability[i] += 1

    def peer_bitfield_removed(self, bf: Bitfield) -> None:
        for i in bf.present():
            self.availability[i] -= 1

    # -- interest -----------------------------------------------------------
    def interesting(self, peer_bf: Bitfield) -> bool:
        """Does the peer have any piece I still need?"""
        return peer_bf.any_and_not(self.have)

    # -- request selection -----------------------------------------------------
    @property
    def endgame(self) -> bool:
        """All missing blocks have outstanding requests."""
        if not self.endgame_enabled or self.have.complete:
            return False
        for index in self.have.missing():
            partial = self._partials.get(index)
            if partial is None:
                return False
            if partial.next_fresh_block() is not None:
                return False
        return True

    def next_request(
        self,
        peer_bf: Bitfield,
        exclude: Optional[Set[Tuple[int, int]]] = None,
    ) -> Optional[Tuple[int, int]]:
        """The next (piece, block) to request from this peer, or None.

        ``exclude`` holds blocks already in flight *to this peer*, so
        endgame duplication never re-requests a block from the same
        peer twice.
        """
        # 1. Continue a started piece the peer has (strict priority).
        for index, partial in self._partials.items():
            if index in peer_bf:
                block = partial.next_fresh_block()
                if block is not None:
                    partial.requested[block] = partial.requested.get(block, 0) + 1
                    return index, block

        # 2. Start a new piece.
        candidates = [i for i in peer_bf.and_not(self.have) if i not in self._partials]
        if candidates:
            if self.have.count() < self.random_first:
                index = self.rng.choice(candidates)
            else:
                lowest = min(self.availability[i] for i in candidates)
                rarest = [i for i in candidates if self.availability[i] == lowest]
                index = self.rng.choice(rarest)
            partial = _PartialPiece(index, self.torrent.blocks_in_piece(index))
            self._partials[index] = partial
            block = partial.next_fresh_block()
            assert block is not None
            partial.requested[block] = 1
            return index, block

        # 3. Endgame: duplicate an outstanding request (bounded).
        if self.endgame:
            best: Optional[Tuple[int, int, int]] = None  # (count, piece, block)
            for index, partial in self._partials.items():
                if index not in peer_bf:
                    continue
                for block, count in partial.requested.items():
                    if block in partial.received or count >= ENDGAME_DUPLICATION:
                        continue
                    if exclude is not None and (index, block) in exclude:
                        continue
                    if best is None or count < best[0]:
                        best = (count, index, block)
            if best is not None:
                _, index, block = best
                self._partials[index].requested[block] += 1
                return index, block
        return None

    # -- results --------------------------------------------------------------
    def on_block(self, index: int, block: int) -> str:
        """Record a received block; returns ``"piece"`` when the piece
        completed, ``"block"`` for a normal block, ``"dup"`` for a
        duplicate (endgame/cross-request)."""
        if index in self.have:
            self.duplicate_blocks += 1
            return "dup"
        partial = self._partials.get(index)
        if partial is None:
            # Unsolicited block (peer pushed without request); accept it.
            partial = _PartialPiece(index, self.torrent.blocks_in_piece(index))
            self._partials[index] = partial
        if block in partial.received:
            self.duplicate_blocks += 1
            return "dup"
        partial.received.add(block)
        partial.requested.pop(block, None)
        self.blocks_received += 1
        if partial.complete:
            del self._partials[index]
            self.have.set(index)
            return "piece"
        return "block"

    def on_request_failed(self, index: int, block: int) -> None:
        """A request will not be answered (choke/disconnect): allow
        the block to be requested again."""
        partial = self._partials.get(index)
        if partial is None:
            return
        count = partial.requested.get(block)
        if count is None:
            return
        if count <= 1:
            del partial.requested[block]
        else:
            partial.requested[block] = count - 1

    def discard_piece(self, index: int) -> None:
        """Drop a fully-received piece (failed hash check): its blocks
        become requestable again from scratch."""
        self.have.clear(index)
        self._partials.pop(index, None)

    def outstanding_for(self, index: int, block: int) -> int:
        partial = self._partials.get(index)
        if partial is None:
            return 0
        return partial.requested.get(block, 0)

    @property
    def partial_count(self) -> int:
        return len(self._partials)

    def remaining_blocks(self) -> int:
        """Blocks still needed (not yet received)."""
        total = 0
        for index in self.have.missing():
            partial = self._partials.get(index)
            nblocks = self.torrent.blocks_in_piece(index)
            total += nblocks - (len(partial.received) if partial else 0)
        return total
