"""Bencoding (BEP 3): the serialization BitTorrent actually uses.

Metainfo files and HTTP tracker responses are bencoded dictionaries.
The emulation carries Python objects on the wire for speed, but their
``wire_size`` accounting is validated against real encodings produced
here (see tests/test_wire_format.py) — so the bandwidth the emulated
swarm pays for protocol chatter is the bandwidth the real protocol
would pay.

Grammar::

    integer:  i<digits>e               i42e, i-7e
    bytes:    <len>:<raw>              4:spam
    list:     l<items>e                l4:spami42ee
    dict:     d<pairs>e                d3:bar4:spam3:fooi42ee
              (keys are byte strings, sorted)
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

from repro.errors import ProtocolError

Bencodable = Union[int, bytes, str, list, dict]


def bencode(value: Bencodable) -> bytes:
    """Encode a value; str is encoded as UTF-8 bytes."""
    out: List[bytes] = []
    _encode(value, out)
    return b"".join(out)


def _encode(value: Bencodable, out: List[bytes]) -> None:
    if isinstance(value, bool):
        # bools are ints in Python; encode faithfully as 0/1.
        out.append(b"i1e" if value else b"i0e")
    elif isinstance(value, int):
        out.append(b"i%de" % value)
    elif isinstance(value, bytes):
        out.append(b"%d:" % len(value))
        out.append(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"%d:" % len(raw))
        out.append(raw)
    elif isinstance(value, list):
        out.append(b"l")
        for item in value:
            _encode(item, out)
        out.append(b"e")
    elif isinstance(value, dict):
        out.append(b"d")
        items: List[Tuple[bytes, Any]] = []
        for key, item in value.items():
            if isinstance(key, str):
                key = key.encode("utf-8")
            if not isinstance(key, bytes):
                raise ProtocolError(f"bencode dict keys must be strings, got {key!r}")
            items.append((key, item))
        items.sort(key=lambda kv: kv[0])
        for key, item in items:
            _encode(key, out)
            _encode(item, out)
        out.append(b"e")
    else:
        raise ProtocolError(f"cannot bencode {type(value).__name__}")


def bdecode(data: bytes) -> Bencodable:
    """Decode one bencoded value; rejects trailing garbage."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise ProtocolError(f"trailing bytes after bencoded value at {offset}")
    return value


def _decode(data: bytes, i: int) -> Tuple[Bencodable, int]:
    if i >= len(data):
        raise ProtocolError("truncated bencoded data")
    lead = data[i : i + 1]
    if lead == b"i":
        end = data.find(b"e", i)
        if end < 0:
            raise ProtocolError("unterminated integer")
        body = data[i + 1 : end]
        if body in (b"", b"-") or (body.startswith(b"-0")) or (
            body.startswith(b"0") and len(body) > 1
        ):
            raise ProtocolError(f"malformed integer {body!r}")
        return int(body), end + 1
    if lead == b"l":
        items: List[Bencodable] = []
        i += 1
        while i < len(data) and data[i : i + 1] != b"e":
            item, i = _decode(data, i)
            items.append(item)
        if i >= len(data):
            raise ProtocolError("unterminated list")
        return items, i + 1
    if lead == b"d":
        out: Dict[bytes, Bencodable] = {}
        i += 1
        last_key = None
        while i < len(data) and data[i : i + 1] != b"e":
            key, i = _decode(data, i)
            if not isinstance(key, bytes):
                raise ProtocolError("dict key is not a byte string")
            if last_key is not None and key <= last_key:
                raise ProtocolError("dict keys out of order")
            last_key = key
            value, i = _decode(data, i)
            out[key] = value
        if i >= len(data):
            raise ProtocolError("unterminated dict")
        return out, i + 1
    if lead.isdigit():
        colon = data.find(b":", i)
        if colon < 0:
            raise ProtocolError("unterminated string length")
        length_text = data[i:colon]
        if length_text.startswith(b"0") and len(length_text) > 1:
            raise ProtocolError("string length has leading zero")
        length = int(length_text)
        end = colon + 1 + length
        if end > len(data):
            raise ProtocolError("truncated string")
        return data[colon + 1 : end], end
    raise ProtocolError(f"unexpected byte {lead!r} at offset {i}")
