"""A complete BitTorrent implementation — the paper's studied application.

The paper runs the real BitTorrent 4.0.4 client (Bram Cohen's Python
mainline) on P2PLab. This subpackage reimplements that client's data
plane and algorithms on the emulated socket API:

* :mod:`repro.bittorrent.metainfo` — torrent metadata (16 MB file in
  256 KB pieces for the paper's experiments);
* :mod:`repro.bittorrent.bitfield` — piece bitfields;
* :mod:`repro.bittorrent.messages` — the peer wire protocol;
* :mod:`repro.bittorrent.tracker` — tracker server and announce client;
* :mod:`repro.bittorrent.piece_picker` — random-first / rarest-first /
  endgame piece selection;
* :mod:`repro.bittorrent.choker` — tit-for-tat choking with optimistic
  unchoke;
* :mod:`repro.bittorrent.peer` — per-connection protocol state machine;
* :mod:`repro.bittorrent.client` — the full client (leecher -> seeder);
* :mod:`repro.bittorrent.swarm` — swarm construction helpers used by
  the experiments.
"""

from repro.bittorrent.bencode import bdecode, bencode
from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.client import BitTorrentClient, ClientConfig
from repro.bittorrent.metainfo import Torrent
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.bittorrent.tracker import TrackerServer
from repro.bittorrent.udp_tracker import UdpTrackerServer

__all__ = [
    "Bitfield",
    "BitTorrentClient",
    "ClientConfig",
    "Torrent",
    "TrackerServer",
    "UdpTrackerServer",
    "Swarm",
    "SwarmConfig",
    "bencode",
    "bdecode",
]
