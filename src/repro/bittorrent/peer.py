"""Per-connection peer wire protocol state machine.

Each :class:`PeerConnection` mirrors one TCP connection to a remote
peer: the four classic flags (am_choking / am_interested /
peer_choking / peer_interested), the peer's bitfield, the in-flight
request set and two rate meters. Message handling is callback-driven
(the socket's receive channel is subscribed, not polled by a process)
so the 5754-client scalability run does not pay one blocked generator
per connection.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple, TYPE_CHECKING

from repro.bittorrent import messages as msg
from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.choker import RateMeter
from repro.errors import SocketError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bittorrent.client import BitTorrentClient


class PeerConnection:
    """One live connection to a remote peer."""

    __slots__ = (
        "client",
        "sock",
        "initiated",
        "handshaked",
        "peer_id",
        "remote_ip",
        "am_choking",
        "am_interested",
        "peer_choking",
        "peer_interested",
        "peer_bitfield",
        "inflight",
        "download_meter",
        "upload_meter",
        "closed",
        "messages_in",
        "cancels_received",
        "last_piece_at",
        "first_request_at",
    )

    def __init__(self, client: "BitTorrentClient", sock, initiated: bool) -> None:
        self.client = client
        self.sock = sock
        self.initiated = initiated
        self.handshaked = False
        self.peer_id: Optional[str] = None
        self.remote_ip = sock.peer[0] if sock.peer else None
        self.am_choking = True
        self.am_interested = False
        self.peer_choking = True
        self.peer_interested = False
        self.peer_bitfield = Bitfield(client.torrent.num_pieces)
        self.inflight: Set[Tuple[int, int]] = set()
        self.download_meter = RateMeter()
        self.upload_meter = RateMeter()
        self.closed = False
        self.messages_in = 0
        self.cancels_received = 0
        self.last_piece_at: float = -1.0
        self.first_request_at: float = -1.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the protocol: subscribe to incoming messages and, as
        the initiator, send our handshake immediately."""
        conn = self.sock.connection
        if conn is None:
            self.close()
            return
        conn.recv_channel.subscribe(self._on_message)
        if self.initiated:
            self.send(msg.Handshake(self.client.torrent.infohash, self.client.peer_id))

    def send(self, message: msg.Message) -> None:
        if self.closed:
            return
        try:
            self.sock.send(message, message.wire_size)
        except SocketError:
            self.close()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._refund_inflight()
        self.sock.close()
        self.client.on_peer_closed(self)

    # ------------------------------------------------------------------
    def local_choke(self) -> None:
        """Choker decision: stop serving this peer."""
        if self.am_choking or self.closed:
            return
        self.am_choking = True
        self.send(msg.Choke())

    def local_unchoke(self) -> None:
        if not self.am_choking or self.closed:
            return
        self.am_choking = False
        self.send(msg.Unchoke())

    def set_interested(self, interested: bool) -> None:
        if interested == self.am_interested or self.closed:
            return
        self.am_interested = interested
        self.send(msg.Interested() if interested else msg.NotInterested())

    # ------------------------------------------------------------------
    def _on_message(self, item) -> None:
        if item is None:
            self.close()
            return
        message, _size = item
        self.messages_in += 1
        if isinstance(message, msg.Handshake):
            self._on_handshake(message)
            return
        if not self.handshaked:
            # Protocol violation: data before handshake.
            self.close()
            return
        kind = type(message)
        if kind is msg.Piece:
            self.inflight.discard((message.index, message.block))
            now = self.client.vnode.sim.now
            self.last_piece_at = now
            if not self.inflight:
                self.first_request_at = -1.0
            self.download_meter.record(now, message.length)
            self.client.on_piece(self, message)
        elif kind is msg.Request:
            self.client.on_request(self, message)
        elif kind is msg.Have:
            self.peer_bitfield.set(message.index)
            self.client.on_have(self, message.index)
        elif kind is msg.BitfieldMsg:
            self.peer_bitfield = message.bitfield
            self.client.picker.peer_bitfield_added(self.peer_bitfield)
            self.client.update_interest(self)
        elif kind is msg.Unchoke:
            if self.peer_choking:
                self.peer_choking = False
                self.client.fill_requests(self)
        elif kind is msg.Choke:
            if not self.peer_choking:
                self.peer_choking = True
                self._refund_inflight()
        elif kind is msg.Interested:
            self.peer_interested = True
        elif kind is msg.NotInterested:
            self.peer_interested = False
        elif kind is msg.Cancel:
            self.cancels_received += 1
            # Queued uploads are already in the transport; nothing to do.
        # KeepAlive: ignored.

    def _on_handshake(self, hs: msg.Handshake) -> None:
        if hs.infohash != self.client.torrent.infohash:
            self.close()
            return
        self.peer_id = hs.peer_id
        self.handshaked = True
        if not self.initiated:
            # Acceptor replies with its own handshake.
            self.send(msg.Handshake(self.client.torrent.infohash, self.client.peer_id))
        # Both sides follow the handshake with their bitfield (a
        # super-seeder advertises nothing and reveals pieces one HAVE
        # at a time instead).
        advertised = self.client.advertised_bitfield()
        if advertised is not None and not advertised.empty:
            self.send(msg.BitfieldMsg(advertised))
        self.client.on_peer_ready(self)

    def snubbed(self, now: float, timeout: float) -> bool:
        """Mainline anti-snubbing: the peer owes us requested data and
        has not delivered anything for ``timeout`` seconds. Snubbed
        peers lose their regular unchoke slot (optimistic only)."""
        if not self.inflight:
            return False
        reference = self.last_piece_at
        if reference < 0:
            reference = self.first_request_at
        return reference >= 0 and (now - reference) > timeout

    def note_request_sent(self, now: float) -> None:
        if self.first_request_at < 0:
            self.first_request_at = now

    def _refund_inflight(self) -> None:
        for index, block in self.inflight:
            self.client.picker.on_request_failed(index, block)
        self.inflight.clear()
        self.first_request_at = -1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c if f else "-"
            for c, f in [
                ("C", self.am_choking),
                ("I", self.am_interested),
                ("c", self.peer_choking),
                ("i", self.peer_interested),
            ]
        )
        return f"PeerConnection({self.remote_ip}, {flags}, inflight={len(self.inflight)})"
