"""Peer wire protocol messages.

Sizes follow the real protocol (BEP 3): 4-byte length prefix + 1-byte
id + payload; the handshake is 68 bytes. The emulated transport charges
``wire_size`` against the Dummynet pipes, so control-message overhead
(e.g. HAVE floods near completion) costs real emulated bandwidth, as it
did in the paper's experiments.
"""

from __future__ import annotations

from repro.bittorrent.bitfield import Bitfield

HANDSHAKE_SIZE = 68


class Message:
    """Base class; subclasses define ``wire_size``."""

    __slots__ = ()
    wire_size = 4 + 1

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Handshake(Message):
    __slots__ = ("infohash", "peer_id")
    wire_size = HANDSHAKE_SIZE

    def __init__(self, infohash: int, peer_id: str) -> None:
        self.infohash = infohash
        self.peer_id = peer_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"Handshake(peer_id={self.peer_id!r})"


class KeepAlive(Message):
    __slots__ = ()
    wire_size = 4


class Choke(Message):
    __slots__ = ()


class Unchoke(Message):
    __slots__ = ()


class Interested(Message):
    __slots__ = ()


class NotInterested(Message):
    __slots__ = ()


class Have(Message):
    __slots__ = ("index",)
    wire_size = 4 + 1 + 4

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover
        return f"Have({self.index})"


class BitfieldMsg(Message):
    __slots__ = ("bitfield", "wire_size")

    def __init__(self, bitfield: Bitfield) -> None:
        self.bitfield = bitfield.copy()
        self.wire_size = 4 + 1 + bitfield.wire_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"BitfieldMsg({self.bitfield!r})"


class Request(Message):
    __slots__ = ("index", "block")
    wire_size = 4 + 1 + 12

    def __init__(self, index: int, block: int) -> None:
        self.index = index
        self.block = block

    def __repr__(self) -> str:  # pragma: no cover
        return f"Request(piece={self.index}, block={self.block})"


class Cancel(Message):
    __slots__ = ("index", "block")
    wire_size = 4 + 1 + 12

    def __init__(self, index: int, block: int) -> None:
        self.index = index
        self.block = block

    def __repr__(self) -> str:  # pragma: no cover
        return f"Cancel(piece={self.index}, block={self.block})"


class Piece(Message):
    """A data block (the message the experiments' bandwidth goes into)."""

    __slots__ = ("index", "block", "length", "wire_size")

    def __init__(self, index: int, block: int, length: int) -> None:
        self.index = index
        self.block = block
        self.length = length
        self.wire_size = 4 + 1 + 8 + length

    def __repr__(self) -> str:  # pragma: no cover
        return f"Piece(piece={self.index}, block={self.block}, {self.length}B)"
