"""The full BitTorrent client (mainline 4.x behaviour).

Lifecycle, as in the paper's experiments: start → announce to the
tracker → connect to peers → trade pieces under the choker → on
completion "stay online and become seeders, continuing to upload data
to the downloaders".

The client is an application in the P2PLab sense: it runs on a virtual
node and uses only the intercepted libc / emulated socket API for I/O.
Its tunables live in :class:`ClientConfig` — a nod to the paper's
remark that "the large number of constants used as parameters of all
the important algorithms makes it very hard to model accurately"; here
they are all explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bittorrent import messages as msg
from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.choker import Choker
from repro.bittorrent.metainfo import Torrent
from repro.bittorrent.peer import PeerConnection
from repro.bittorrent.piece_picker import PiecePicker
from repro.bittorrent.tracker import AnnounceRequest, announce_once
from repro.errors import SocketError
from repro.net.addr import IPv4Address
from repro.net.socket_api import ANY, Socket
from repro.sim.process import TIMEOUT
from repro.units import MB
from repro.virt.vnode import VirtualNode


@dataclass
class ClientConfig:
    """All the knobs of the client's algorithms."""

    listen_port: int = 6881
    #: Connection management.
    max_peers: int = 55
    min_peers: int = 20
    maintain_interval: float = 15.0
    connect_timeout: float = 30.0
    #: Choker.
    upload_slots: int = 4
    rechoke_interval: float = 10.0
    optimistic_rounds: int = 3
    #: Requests.
    pipeline: int = 5
    #: Piece picking.
    random_first: int = 4
    endgame: bool = True
    #: Anti-snubbing: a peer owing requested data for this long loses
    #: its regular unchoke slot (mainline: 60 s). 0 disables.
    snub_timeout: float = 60.0
    #: Super-seeding (BitTorrent 4.x "-s" mode): an initial seeder
    #: masquerades as having nothing and reveals one piece per peer,
    #: granting the next only once another peer announces that piece —
    #: minimizing the bytes the seeder must upload per distributed copy.
    super_seed: bool = False
    #: Tracker.
    announce_interval: float = 300.0
    numwant: int = 50
    #: "tcp" (HTTP-style, the 2006 default) or "udp" (BEP 15).
    tracker_transport: str = "tcp"
    #: CPU cost of hashing one MB of received data (accounted on the
    #: hosting physical node; see the folding ablation).
    hash_cost_per_mb: float = 0.005
    #: Failure injection: probability that a completed piece fails its
    #: hash check (disk/TCP-checksum-escape corruption) and must be
    #: re-downloaded. 0 disables.
    corruption_rate: float = 0.0
    #: Paper behaviour: "they stay online and become seeders". False
    #: models selfish clients that disconnect upon completing.
    seed_after_complete: bool = True
    #: TCP send window per connection (bytes).
    send_window: int = 256 * 1024


class BitTorrentClient:
    """One peer: leecher or initial seeder."""

    def __init__(
        self,
        vnode: VirtualNode,
        torrent: Torrent,
        seeder: bool = False,
        config: Optional[ClientConfig] = None,
    ) -> None:
        self.vnode = vnode
        self.torrent = torrent
        self.config = config if config is not None else ClientConfig()
        self.peer_id = f"RP-{vnode.name}"
        self.initial_seeder = seeder
        self.have = Bitfield(torrent.num_pieces, full=seeder)
        self.picker = PiecePicker(
            torrent,
            self.have,
            vnode.sim.rng.stream(f"bt.picker/{vnode.name}"),
            random_first=self.config.random_first,
            endgame_enabled=self.config.endgame,
        )
        self.choker = Choker(
            self,
            interval=self.config.rechoke_interval,
            upload_slots=self.config.upload_slots,
            optimistic_rounds=self.config.optimistic_rounds,
        )
        self._peers: Dict[int, PeerConnection] = {}  # remote ip value -> conn
        self._connecting: Set[int] = set()
        self._candidates: List[Tuple[IPv4Address, int]] = []
        self.stopped = False
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None if not seeder else 0.0
        self.bytes_downloaded = 0
        self.bytes_uploaded = 0
        self.payload_received = 0
        self.failed_connects = 0
        self.corrupt_pieces = 0
        self._listen_sock: Optional[Socket] = None
        # Super-seeding state: which piece each peer was granted, and
        # how often each piece has been revealed.
        self._ss_assigned: Dict[int, int] = {}  # peer ip value -> piece
        self._ss_reveal_count: Dict[int, int] = {}  # piece -> grants
        self.ss_pieces_redistributed = 0
        # Shared observability instruments (swarm-wide aggregation).
        registry = vnode.sim.metrics
        self._m_pieces = registry.counter("bt.client.pieces_completed")
        self._m_piece_time = registry.histogram("bt.client.piece_completion_seconds")
        self._m_corrupt = registry.counter("bt.client.corrupt_pieces")
        self._m_completions = registry.counter("bt.swarm.completions")
        self._m_download_time = registry.histogram("bt.swarm.download_seconds")

    # -- lifecycle -------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.have.complete

    @property
    def progress(self) -> float:
        """Fraction of the file downloaded."""
        return self.have.fraction()

    def start(self) -> None:
        """Launch the client's processes on its virtual node."""
        self.started_at = self.vnode.sim.now
        self.vnode.log("bt.start", seeder=self.initial_seeder)
        self.vnode.spawn(_listener_app(self), name=f"{self.vnode.name}/listen")
        self.vnode.spawn(_main_app(self), name=f"{self.vnode.name}/main")
        self.choker.start()

    def stop(self) -> None:
        if self.stopped:
            return
        self.stopped = True
        self.choker.stop()
        if self._listen_sock is not None:
            self._listen_sock.close()
        for peer in list(self._peers.values()):
            peer.close()

    # -- peer management ----------------------------------------------------
    def peers(self) -> List[PeerConnection]:
        return list(self._peers.values())

    @property
    def peer_count(self) -> int:
        return len(self._peers)

    def _register(self, conn: PeerConnection) -> bool:
        """Track a connection by remote identity; reject duplicates/self."""
        ip_value = conn.remote_ip.value if conn.remote_ip is not None else 0
        if ip_value == self.vnode.address.value or ip_value in self._peers:
            return False
        if len(self._peers) >= self.config.max_peers:
            return False
        self._peers[ip_value] = conn
        return True

    def on_incoming(self, sock: Socket) -> None:
        conn = PeerConnection(self, sock, initiated=False)
        ip_value = conn.remote_ip.value if conn.remote_ip is not None else 0
        existing = self._peers.get(ip_value)
        if existing is not None and existing.initiated and not existing.handshaked:
            # Simultaneous open: both sides connected to each other at
            # once. Deterministic tie-break — the connection initiated
            # by the lower-addressed peer survives on both sides.
            if self.vnode.address.value > ip_value:
                existing.close()
            else:
                sock.close()
                return
        if not self._register(conn):
            sock.close()
            return
        conn.start()

    @property
    def super_seeding(self) -> bool:
        return self.config.super_seed and self.initial_seeder

    def advertised_bitfield(self) -> Optional[Bitfield]:
        """What we claim to have at handshake time (None = nothing)."""
        return None if self.super_seeding else self.have

    def on_peer_ready(self, conn: PeerConnection) -> None:
        """Handshake completed in both directions."""
        self.update_interest(conn)
        if self.super_seeding:
            self._ss_grant(conn)

    def on_have(self, conn: PeerConnection, index: int) -> None:
        """A peer announced a piece."""
        self.picker.peer_has(index)
        self.update_interest(conn)
        if self.super_seeding:
            self._ss_on_have(conn, index)

    # -- super-seeding --------------------------------------------------
    def _ss_grant(self, conn: PeerConnection) -> None:
        """Reveal one more piece to this peer (the least-revealed piece
        it does not already hold)."""
        ip_value = conn.remote_ip.value if conn.remote_ip is not None else 0
        candidates = [
            i for i in range(self.torrent.num_pieces)
            if i not in conn.peer_bitfield
        ]
        if not candidates:
            return
        index = min(
            candidates,
            key=lambda i: (self._ss_reveal_count.get(i, 0), self.picker.availability[i], i),
        )
        self._ss_assigned[ip_value] = index
        self._ss_reveal_count[index] = self._ss_reveal_count.get(index, 0) + 1
        conn.send(msg.Have(index))

    def _ss_on_have(self, conn: PeerConnection, index: int) -> None:
        """Mainline rule: when some peer announces a piece we assigned
        to a *different* peer, that peer has redistributed its grant
        and earns the next piece."""
        announcer = conn.remote_ip.value if conn.remote_ip is not None else 0
        for ip_value, assigned in list(self._ss_assigned.items()):
            if assigned != index or ip_value == announcer:
                continue
            peer = self._peers.get(ip_value)
            del self._ss_assigned[ip_value]
            self.ss_pieces_redistributed += 1
            if peer is not None and not peer.closed:
                self._ss_grant(peer)
        # Degenerate case: a lone peer can never be vouched for by
        # another peer; grant it the next piece on its own announce so
        # a 1-leecher swarm does not stall.
        if (
            self._ss_assigned.get(announcer) == index
            and len(self._peers) == 1
        ):
            del self._ss_assigned[announcer]
            self._ss_grant(conn)

    def on_peer_closed(self, conn: PeerConnection) -> None:
        ip_value = conn.remote_ip.value if conn.remote_ip is not None else 0
        if self._peers.get(ip_value) is conn:
            del self._peers[ip_value]
            if conn.handshaked:
                self.picker.peer_bitfield_removed(conn.peer_bitfield)

    # -- interest and requests ---------------------------------------------------
    def update_interest(self, conn: PeerConnection) -> None:
        interesting = self.picker.interesting(conn.peer_bitfield)
        conn.set_interested(interesting)
        if interesting and not conn.peer_choking:
            self.fill_requests(conn)

    def fill_requests(self, conn: PeerConnection) -> None:
        """Keep the request pipeline to this peer full."""
        if self.complete or conn.peer_choking or conn.closed:
            return
        now = self.vnode.sim.now
        while len(conn.inflight) < self.config.pipeline:
            req = self.picker.next_request(conn.peer_bitfield, exclude=conn.inflight)
            if req is None:
                break
            index, block = req
            conn.inflight.add((index, block))
            conn.note_request_sent(now)
            conn.send(msg.Request(index, block))

    # -- uploads ------------------------------------------------------------------
    def on_request(self, conn: PeerConnection, request: msg.Request) -> None:
        if conn.am_choking:
            return  # stale request racing our CHOKE; mainline ignores it
        if request.index not in self.have:
            return
        length = self.torrent.block_size_of(request.index, request.block)
        now = self.vnode.sim.now
        conn.upload_meter.record(now, length)
        self.bytes_uploaded += length
        conn.send(msg.Piece(request.index, request.block, length))

    # -- downloads ------------------------------------------------------------------
    def on_piece(self, conn: PeerConnection, piece: msg.Piece) -> None:
        self.bytes_downloaded += piece.length
        result = self.picker.on_block(piece.index, piece.block)
        if result == "dup":
            self.fill_requests(conn)
            return
        if result == "piece":
            self._on_piece_complete(piece.index)
        self.fill_requests(conn)

    def _on_piece_complete(self, index: int) -> None:
        size = self.torrent.piece_size(index)
        # Hash verification cost lands on the hosting physical node.
        self.vnode.pnode.cpu.charge(self.config.hash_cost_per_mb * size / MB)
        if self.config.corruption_rate > 0.0:
            rng = self.vnode.sim.rng.stream(f"bt.corrupt/{self.vnode.name}")
            if rng.random() < self.config.corruption_rate:
                # Hash check failed: discard and re-download the piece.
                self.corrupt_pieces += 1
                self._m_corrupt.inc()
                self.picker.discard_piece(index)
                self.vnode.log("bt.corrupt", piece=index)
                for peer in self.peers():
                    if peer.handshaked:
                        self.update_interest(peer)
                return
        self.payload_received += size
        self._m_pieces.inc()
        # Sim-time from this client's start to the piece's completion —
        # the per-piece shape of the Fig. 8 download-evolution curves.
        self._m_piece_time.observe(self.vnode.sim.now - (self.started_at or 0.0))
        self.vnode.log(
            "bt.progress",
            pct=100.0 * self.progress,
            payload=self.payload_received,
            piece=index,
        )
        for peer in self._peers.values():
            if peer.handshaked and not peer.closed:
                peer.send(msg.Have(index))
        self._cancel_endgame_duplicates(index)
        for peer in self.peers():
            if peer.handshaked:
                self.update_interest(peer)
        if self.complete and self.completed_at is None:
            self.completed_at = self.vnode.sim.now
            self._m_completions.inc()
            self._m_download_time.observe(
                self.completed_at - (self.started_at or 0.0)
            )
            self.vnode.log(
                "bt.complete",
                duration=self.completed_at - (self.started_at or 0.0),
                downloaded=self.bytes_downloaded,
                uploaded=self.bytes_uploaded,
            )
            # Mainline announces event=completed so the tracker counts
            # this peer among the seeders.
            if self.torrent.tracker_addr is not None and not self.stopped:
                announce = self._announce_fn()
                event = "completed" if self.config.seed_after_complete else "stopped"
                self.vnode.spawn(
                    lambda vn: announce(
                        vn,
                        self.torrent.tracker_addr,
                        self._announce_request(event),
                    ),
                    name=f"{self.vnode.name}/announce-{event}",
                )
            if not self.config.seed_after_complete:
                # Selfish departure: disconnect instead of seeding.
                self.vnode.sim.schedule(0.0, self.stop)

    def _cancel_endgame_duplicates(self, index: int) -> None:
        """CANCEL outstanding duplicate requests for a finished piece."""
        for peer in self._peers.values():
            if peer.closed:
                continue
            stale = [(i, b) for (i, b) in peer.inflight if i == index]
            for i, b in stale:
                peer.inflight.discard((i, b))
                peer.send(msg.Cancel(i, b))

    # -- tracker/candidates -----------------------------------------------------------
    def add_candidates(self, peers: List[Tuple[IPv4Address, int]]) -> None:
        known = {p for p in self._candidates}
        me = (self.vnode.address, self.config.listen_port)
        for peer in peers:
            if peer != me and peer not in known:
                self._candidates.append(peer)
                known.add(peer)

    def _announce_fn(self):
        """The announce generator matching the configured transport."""
        if self.config.tracker_transport == "udp":
            from repro.bittorrent.udp_tracker import udp_announce_once

            return udp_announce_once
        return announce_once

    def _announce_request(self, event: str) -> AnnounceRequest:
        left = self.torrent.total_size - int(self.progress * self.torrent.total_size)
        return AnnounceRequest(
            infohash=self.torrent.infohash,
            peer_ip=self.vnode.address,
            peer_port=self.config.listen_port,
            event=event,
            left=left,
            numwant=self.config.numwant,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitTorrentClient({self.vnode.name}, {100 * self.progress:.0f}%, "
            f"peers={len(self._peers)})"
        )


# ----------------------------------------------------------------------
# Application processes (generators run on the virtual node).
# ----------------------------------------------------------------------

def _listener_app(client: BitTorrentClient):
    def app(vnode: VirtualNode):
        libc = vnode.libc
        sock = yield from libc.socket(window=client.config.send_window)
        yield from libc.bind(sock, (ANY, client.config.listen_port))
        yield from libc.listen(sock)
        client._listen_sock = sock
        while not client.stopped:
            incoming = yield from libc.accept(sock)
            if incoming is None:
                break
            client.on_incoming(incoming)

    return app


def _connector_app(client: BitTorrentClient, addr: Tuple[IPv4Address, int]):
    def app(vnode: VirtualNode):
        libc = vnode.libc
        ip_value = addr[0].value
        client._connecting.add(ip_value)
        try:
            sock = yield from libc.socket(window=client.config.send_window)
            # The intercepted connect() binds the source to BINDIP —
            # without it the connection would carry the physical node's
            # admin address and escape both the per-node shaping and
            # the peer's identity bookkeeping.
            if libc.effective:
                yield from libc.restrict(sock)
            sock_sig = sock.connect((addr[0], addr[1]))
            result = yield (sock_sig, client.config.connect_timeout)
            if result is TIMEOUT or isinstance(result, SocketError) or client.stopped:
                client.failed_connects += 1
                sock.close()
                return
            conn = PeerConnection(client, sock, initiated=True)
            if not client._register(conn):
                sock.close()
                return
            conn.start()
        finally:
            client._connecting.discard(ip_value)

    return app


def _main_app(client: BitTorrentClient):
    """Announce loop + connection maintenance."""

    def app(vnode: VirtualNode):
        cfg = client.config
        announce = client._announce_fn()
        next_announce = 0.0
        while not client.stopped:
            now = vnode.sim.now
            if now >= next_announce and client.torrent.tracker_addr is not None:
                event = "started" if next_announce == 0.0 else ""
                peers = yield from announce(
                    vnode, client.torrent.tracker_addr, client._announce_request(event)
                )
                if peers is not None:
                    client.add_candidates(peers)
                    next_announce = vnode.sim.now + cfg.announce_interval
                else:
                    # Tracker unreachable: retry soon, not a full
                    # announce interval later (mainline behaviour).
                    next_announce = vnode.sim.now + 2 * cfg.maintain_interval
            # Open connections towards min_peers. Attempts get a small
            # random delay and the maintenance period is jittered, as
            # in real clients — without this, co-hosted peers act in
            # lockstep and simultaneous opens cancel each other out.
            want = cfg.min_peers - client.peer_count - len(client._connecting)
            rng = vnode.sim.rng.stream(f"bt.connect/{vnode.name}")
            attempts = 0
            while want > 0 and client._candidates and attempts < 2 * cfg.min_peers:
                attempts += 1
                addr = client._candidates.pop(
                    rng.randrange(len(client._candidates))
                )
                if addr[0].value in client._peers or addr[0].value in client._connecting:
                    continue
                vnode.spawn(
                    _connector_app(client, addr), start_delay=rng.random()
                )
                want -= 1
            yield cfg.maintain_interval * (0.75 + 0.5 * rng.random())

    return app
