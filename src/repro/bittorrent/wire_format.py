"""Binary peer-wire encoding (BEP 3 framing).

Every message is ``<4-byte big-endian length><1-byte id><payload>``;
the handshake is the fixed 68-byte prologue. The emulation ships
message *objects* (encoding every block of every swarm would waste
wall-clock for nothing), but this codec exists so that

* the ``wire_size`` each message class charges against the Dummynet
  pipes is provably the true on-wire size (asserted in tests for every
  message type), and
* applications that want byte-exact traces (e.g. feeding a real
  protocol analyzer) can encode captures.
"""

from __future__ import annotations

import struct

from repro.bittorrent import messages as msg
from repro.bittorrent.bitfield import Bitfield
from repro.errors import ProtocolError

PROTOCOL_STRING = b"BitTorrent protocol"

MSG_CHOKE = 0
MSG_UNCHOKE = 1
MSG_INTERESTED = 2
MSG_NOT_INTERESTED = 3
MSG_HAVE = 4
MSG_BITFIELD = 5
MSG_REQUEST = 6
MSG_PIECE = 7
MSG_CANCEL = 8


def encode_handshake(infohash: int, peer_id: str) -> bytes:
    """68 bytes: pstrlen, pstr, 8 reserved, 20 infohash, 20 peer id."""
    peer_raw = peer_id.encode("utf-8")[:20].ljust(20, b"\x00")
    return (
        bytes([len(PROTOCOL_STRING)])
        + PROTOCOL_STRING
        + b"\x00" * 8
        + infohash.to_bytes(20, "big")
        + peer_raw
    )


def decode_handshake(data: bytes) -> msg.Handshake:
    if len(data) != msg.HANDSHAKE_SIZE or data[0] != len(PROTOCOL_STRING):
        raise ProtocolError("malformed handshake")
    if data[1:20] != PROTOCOL_STRING:
        raise ProtocolError("unknown protocol string")
    infohash = int.from_bytes(data[28:48], "big")
    peer_id = data[48:68].rstrip(b"\x00").decode("utf-8", "replace")
    return msg.Handshake(infohash, peer_id)


def _frame(msg_id: int, payload: bytes = b"") -> bytes:
    return struct.pack(">IB", 1 + len(payload), msg_id) + payload


def encode(message: msg.Message) -> bytes:
    """Encode any wire message to its exact byte representation."""
    kind = type(message)
    if kind is msg.Handshake:
        return encode_handshake(message.infohash, message.peer_id)
    if kind is msg.KeepAlive:
        return struct.pack(">I", 0)
    if kind is msg.Choke:
        return _frame(MSG_CHOKE)
    if kind is msg.Unchoke:
        return _frame(MSG_UNCHOKE)
    if kind is msg.Interested:
        return _frame(MSG_INTERESTED)
    if kind is msg.NotInterested:
        return _frame(MSG_NOT_INTERESTED)
    if kind is msg.Have:
        return _frame(MSG_HAVE, struct.pack(">I", message.index))
    if kind is msg.BitfieldMsg:
        bf = message.bitfield
        raw = bytearray(bf.wire_size)
        for index in bf.present():
            raw[index // 8] |= 0x80 >> (index % 8)  # BEP 3 bit order
        return _frame(MSG_BITFIELD, bytes(raw))
    if kind is msg.Request:
        # begin/length expressed in the torrent's block units by the
        # caller; on the wire they are byte offsets (12 bytes total).
        return _frame(MSG_REQUEST, struct.pack(">III", message.index, message.block, 0))
    if kind is msg.Cancel:
        return _frame(MSG_CANCEL, struct.pack(">III", message.index, message.block, 0))
    if kind is msg.Piece:
        payload = struct.pack(">II", message.index, message.block) + b"\x00" * message.length
        return _frame(MSG_PIECE, payload)
    raise ProtocolError(f"cannot encode {kind.__name__}")


def decode(data: bytes) -> msg.Message:
    """Decode one framed message (not the handshake)."""
    if len(data) < 4:
        raise ProtocolError("short frame")
    (length,) = struct.unpack(">I", data[:4])
    if length == 0:
        return msg.KeepAlive()
    if len(data) != 4 + length:
        raise ProtocolError(f"frame length mismatch: header {length}, body {len(data) - 4}")
    msg_id = data[4]
    payload = data[5:]
    if msg_id == MSG_CHOKE:
        return msg.Choke()
    if msg_id == MSG_UNCHOKE:
        return msg.Unchoke()
    if msg_id == MSG_INTERESTED:
        return msg.Interested()
    if msg_id == MSG_NOT_INTERESTED:
        return msg.NotInterested()
    if msg_id == MSG_HAVE:
        return msg.Have(struct.unpack(">I", payload)[0])
    if msg_id == MSG_BITFIELD:
        bf = Bitfield(len(payload) * 8)
        for index in range(bf.size):
            if payload[index // 8] & (0x80 >> (index % 8)):
                bf.set(index)
        return msg.BitfieldMsg(bf)
    if msg_id == MSG_REQUEST:
        index, block, _offset = struct.unpack(">III", payload)
        return msg.Request(index, block)
    if msg_id == MSG_CANCEL:
        index, block, _offset = struct.unpack(">III", payload)
        return msg.Cancel(index, block)
    if msg_id == MSG_PIECE:
        index, block = struct.unpack(">II", payload[:8])
        return msg.Piece(index, block, len(payload) - 8)
    raise ProtocolError(f"unknown message id {msg_id}")
