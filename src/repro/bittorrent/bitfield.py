"""Piece bitfields, backed by a single Python int for O(1) popcount."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import ProtocolError


class Bitfield:
    """Fixed-size bitfield over piece indices."""

    __slots__ = ("size", "_bits")

    def __init__(self, size: int, full: bool = False) -> None:
        if size <= 0:
            raise ProtocolError(f"bitfield size must be positive, got {size}")
        self.size = size
        self._bits = (1 << size) - 1 if full else 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise ProtocolError(f"bit {index} out of range (size {self.size})")

    def set(self, index: int) -> None:
        self._check(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        self._check(index)
        self._bits &= ~(1 << index)

    def has(self, index: int) -> bool:
        self._check(index)
        return bool((self._bits >> index) & 1)

    def __contains__(self, index: int) -> bool:
        return self.has(index)

    def count(self) -> int:
        return self._bits.bit_count()

    @property
    def complete(self) -> bool:
        return self._bits == (1 << self.size) - 1

    @property
    def empty(self) -> bool:
        return self._bits == 0

    def missing(self) -> Iterator[int]:
        """Indices not yet set."""
        inv = ~self._bits & ((1 << self.size) - 1)
        while inv:
            low = inv & -inv
            yield low.bit_length() - 1
            inv ^= low

    def present(self) -> Iterator[int]:
        """Indices set."""
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def and_not(self, other: "Bitfield") -> Iterator[int]:
        """Indices set in ``self`` but not in ``other`` (what they have
        that I need when called on the peer's field)."""
        if other.size != self.size:
            raise ProtocolError("bitfield size mismatch")
        bits = self._bits & ~other._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def any_and_not(self, other: "Bitfield") -> bool:
        """Fast interest test: does self have anything other lacks?"""
        if other.size != self.size:
            raise ProtocolError("bitfield size mismatch")
        return bool(self._bits & ~other._bits)

    def copy(self) -> "Bitfield":
        bf = Bitfield(self.size)
        bf._bits = self._bits
        return bf

    def fraction(self) -> float:
        return self.count() / self.size

    def to_list(self) -> List[bool]:
        return [bool((self._bits >> i) & 1) for i in range(self.size)]

    @property
    def wire_size(self) -> int:
        """On-wire size of a bitfield message body (bytes)."""
        return (self.size + 7) // 8

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bitfield):
            return self.size == other.size and self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.size, self._bits))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitfield({self.count()}/{self.size})"
