"""Torrent metadata.

"The file size is not important in BitTorrent, since the file is always
divided in pieces of 256 KB" — the paper's experiments share one 16 MB
file in 256 KB pieces. Pieces are transferred in blocks (mainline: 16 KB
requests); the block size is configurable so large-scale runs can trade
request granularity for event count (see DESIGN.md).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ProtocolError
from repro.units import KB, MB

DEFAULT_PIECE_LENGTH = 256 * KB
DEFAULT_BLOCK_SIZE = 16 * KB


class Torrent:
    """Metadata of one shared file."""

    __slots__ = (
        "name",
        "infohash",
        "total_size",
        "piece_length",
        "block_size",
        "num_pieces",
        "tracker_addr",
    )

    def __init__(
        self,
        name: str,
        total_size: int = 16 * MB,
        piece_length: int = DEFAULT_PIECE_LENGTH,
        block_size: int = DEFAULT_BLOCK_SIZE,
        tracker_addr: Tuple[object, int] = None,
        infohash: int = 0,
    ) -> None:
        if total_size <= 0:
            raise ProtocolError(f"total_size must be positive, got {total_size}")
        if piece_length <= 0 or piece_length > total_size:
            raise ProtocolError(
                f"piece_length {piece_length} invalid for size {total_size}"
            )
        if block_size <= 0 or block_size > piece_length:
            raise ProtocolError(
                f"block_size {block_size} invalid for piece_length {piece_length}"
            )
        self.name = name
        self.infohash = infohash if infohash else hash(name) & 0xFFFFFFFF
        self.total_size = total_size
        self.piece_length = piece_length
        self.block_size = block_size
        self.num_pieces = -(-total_size // piece_length)  # ceil
        self.tracker_addr = tracker_addr

    # ------------------------------------------------------------------
    def piece_size(self, index: int) -> int:
        """Byte size of piece ``index`` (the last piece may be short)."""
        self._check_piece(index)
        if index == self.num_pieces - 1:
            rem = self.total_size - index * self.piece_length
            return rem
        return self.piece_length

    def blocks_in_piece(self, index: int) -> int:
        return -(-self.piece_size(index) // self.block_size)

    def block_size_of(self, index: int, block: int) -> int:
        """Byte size of block ``block`` of piece ``index``."""
        nblocks = self.blocks_in_piece(index)
        if not 0 <= block < nblocks:
            raise ProtocolError(f"block {block} out of range for piece {index}")
        if block == nblocks - 1:
            return self.piece_size(index) - block * self.block_size
        return self.block_size

    def total_blocks(self) -> int:
        return sum(self.blocks_in_piece(i) for i in range(self.num_pieces))

    def _check_piece(self, index: int) -> None:
        if not 0 <= index < self.num_pieces:
            raise ProtocolError(f"piece {index} out of range (0..{self.num_pieces - 1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Torrent({self.name!r}, {self.total_size}B, "
            f"{self.num_pieces} x {self.piece_length}B pieces)"
        )
