"""Tracker: the swarm rendezvous service.

One request/response exchange over TCP per announce (the real protocol
is HTTP GET over TCP; the emulation carries the same information in one
message each way with equivalent wire sizes). The tracker keeps the
swarm membership per infohash and answers with a random sample of other
peers, exactly what mainline clients get.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SocketError
from repro.net.addr import IPv4Address
from repro.net.socket_api import ANY, Socket
from repro.sim.process import TIMEOUT
from repro.virt.vnode import VirtualNode

DEFAULT_TRACKER_PORT = 6969

#: Wire size of an announce GET (URL + headers, roughly).
ANNOUNCE_REQUEST_SIZE = 220
#: Base wire size of the bencoded response, plus 6 bytes per peer.
ANNOUNCE_RESPONSE_BASE = 60
PEER_ENTRY_SIZE = 6


@dataclass(frozen=True)
class AnnounceRequest:
    """What a client tells the tracker."""

    infohash: int
    peer_ip: IPv4Address
    peer_port: int
    event: str = ""  # "started", "completed", "stopped" or ""
    left: int = 0
    numwant: int = 50

    @property
    def wire_size(self) -> int:
        return ANNOUNCE_REQUEST_SIZE


@dataclass(frozen=True)
class AnnounceResponse:
    """What the tracker answers."""

    peers: Tuple[Tuple[IPv4Address, int], ...]
    interval: float
    complete: int  # seeders in swarm
    incomplete: int  # leechers in swarm

    @property
    def wire_size(self) -> int:
        return ANNOUNCE_RESPONSE_BASE + PEER_ENTRY_SIZE * len(self.peers)


class TrackerServer:
    """The tracker application; runs on its own virtual node."""

    def __init__(
        self,
        vnode: VirtualNode,
        port: int = DEFAULT_TRACKER_PORT,
        interval: float = 300.0,
    ) -> None:
        self.vnode = vnode
        self.port = port
        self.interval = interval
        # infohash -> (ip value, port) -> (addr, port, left)
        self._swarms: Dict[int, Dict[Tuple[int, int], Tuple[IPv4Address, int, int]]] = {}
        self.announces = 0
        self.stopped = False
        self._rng = vnode.sim.rng.stream(f"tracker/{vnode.name}")

    @property
    def address(self) -> Tuple[IPv4Address, int]:
        return (self.vnode.address, self.port)

    def start(self) -> None:
        self.vnode.spawn(self._app, name=f"{self.vnode.name}/tracker")

    def stop(self) -> None:
        self.stopped = True

    def swarm_size(self, infohash: int) -> int:
        return len(self._swarms.get(infohash, {}))

    # ------------------------------------------------------------------
    def _app(self, vnode: VirtualNode):
        libc = vnode.libc
        sock = yield from libc.socket()
        yield from libc.bind(sock, (ANY, self.port))
        yield from libc.listen(sock, backlog=1024)
        while not self.stopped:
            conn = yield from libc.accept(sock)
            if conn is None:
                break
            vnode.spawn(lambda vn, c=conn: self._serve(vn, c))

    def _serve(self, vnode: VirtualNode, conn: Socket):
        """Handle one announce connection."""
        libc = vnode.libc
        item = yield from libc.recv(conn)
        if item is not None:
            request, _size = item
            response = self.handle_announce(request)
            try:
                yield from libc.send(conn, response, response.wire_size)
            except SocketError:
                pass
        yield from libc.close(conn)

    # ------------------------------------------------------------------
    def handle_announce(self, request: AnnounceRequest) -> AnnounceResponse:
        """Update swarm state and build the peer sample."""
        self.announces += 1
        swarm = self._swarms.setdefault(request.infohash, {})
        key = (request.peer_ip.value, request.peer_port)
        if request.event == "stopped":
            swarm.pop(key, None)
        else:
            swarm[key] = (request.peer_ip, request.peer_port, request.left)
        others = [
            (addr, port)
            for k, (addr, port, _left) in swarm.items()
            if k != key
        ]
        count = min(request.numwant, len(others))
        sample = self._rng.sample(others, count) if count else []
        complete = sum(1 for (_a, _p, left) in swarm.values() if left == 0)
        return AnnounceResponse(
            peers=tuple(sample),
            interval=self.interval,
            complete=complete,
            incomplete=len(swarm) - complete,
        )


def announce_once(
    vnode: VirtualNode,
    tracker_addr: Tuple[IPv4Address, int],
    request: AnnounceRequest,
    timeout: float = 30.0,
):
    """Generator helper: one announce exchange.

    Returns the peer list, or ``None`` on any failure (the caller
    retries on its next maintenance round).
    """
    libc = vnode.libc
    sock = yield from libc.socket()
    if libc.effective:
        yield from libc.restrict(sock)  # intercepted connect(): bind to BINDIP
    sig = sock.connect(tracker_addr)
    result = yield (sig, timeout)
    if result is TIMEOUT or isinstance(result, SocketError):
        sock.close()
        return None
    try:
        yield from libc.send(sock, request, request.wire_size)
    except SocketError:
        sock.close()
        return None
    item = yield (sock.recv(), timeout)
    yield from libc.close(sock)
    if item is TIMEOUT or item is None:
        return None
    response, _size = item
    return list(response.peers)
