"""Swarm construction: the paper's BitTorrent experiment in one object.

Builds the full stack — testbed, topology (DSL access links), tracker,
initial seeders, staggered leechers — and runs it to completion. This
is what the Figure 8-11 experiments and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.bittorrent.client import BitTorrentClient, ClientConfig
from repro.bittorrent.metainfo import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_PIECE_LENGTH,
    Torrent,
)
from repro.bittorrent.tracker import DEFAULT_TRACKER_PORT, TrackerServer
from repro.core.scenario import ScenarioSpec
from repro.errors import ExperimentError
from repro.obs import RunManifest, Snapshot, topology_fingerprint
from repro.obs import telemetry
from repro.sim import SimConfig, Simulator
from repro.topology.compiler import compile_topology
from repro.topology.presets import LinkProfile, bittorrent_profile
from repro.topology.spec import TopologySpec
from repro.units import MB, ms
from repro.virt.deployment import Testbed


@dataclass
class SwarmConfig:
    """Parameters of one swarm experiment (paper defaults)."""

    leechers: int = 160
    seeders: int = 4
    file_size: int = 16 * MB
    piece_length: int = DEFAULT_PIECE_LENGTH
    block_size: int = DEFAULT_BLOCK_SIZE
    profile: LinkProfile = field(default_factory=bittorrent_profile)
    #: Interval between successive leecher starts (paper: 10 s for the
    #: 160-client runs, 0.25 s for the 5754-client run).
    stagger: float = 10.0
    #: Start-slot offset: this swarm's leechers occupy global stagger
    #: slots ``offset .. offset+leechers-1``. Partitioned fig10 cells
    #: use it so the union of all cells reproduces the single global
    #: arrival process (cell j's first leecher starts where cell j-1's
    #: last one left off).
    stagger_offset: int = 0
    num_pnodes: int = 16
    seed: int = 0
    prefix: str = "10.0.0.0/16"
    client: ClientConfig = field(default_factory=ClientConfig)
    #: Carry explicit 40-byte TCP ACKs on the reverse path (doubles the
    #: packet count; measures what the default window-credit shortcut
    #: hides — see the abl-acks benchmark).
    tcp_explicit_acks: bool = False
    #: ``False`` runs the whole platform on NULL instruments.
    observe: bool = True
    #: Record per-packet hop-by-hop flights (requires ``observe``).
    #: Off by default: memory grows with traffic volume.
    flight: bool = False
    #: Model long bulk transfers as fluid flows (rate epochs instead of
    #: per-packet events) — see :mod:`repro.net.fluid`. Off by default;
    #: short/control traffic always stays on the packet path.
    fluid: bool = False

    @property
    def total_peers(self) -> int:
        return self.leechers + self.seeders

    # -- shared scenario knobs (see repro.core.scenario) ---------------
    @property
    def scenario(self) -> ScenarioSpec:
        """The emulated-cluster knobs this config shares with
        :class:`repro.core.Experiment`."""
        return ScenarioSpec(
            seed=self.seed,
            num_pnodes=self.num_pnodes,
            tcp_explicit_acks=self.tcp_explicit_acks,
        )

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec, **overrides) -> "SwarmConfig":
        """Build a config inheriting ``seed``/``num_pnodes``/ACK model
        from a shared scenario; swarm-specific fields via ``overrides``."""
        params = {
            "seed": scenario.seed,
            "num_pnodes": scenario.num_pnodes,
            "tcp_explicit_acks": scenario.tcp_explicit_acks,
        }
        params.update(overrides)
        return cls(**params)


class Swarm:
    """A built, runnable swarm."""

    __test__ = False  # defensive: not a test helper despite usage in tests

    def __init__(
        self,
        config: Optional[SwarmConfig] = None,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.config = config if config is not None else SwarmConfig()
        cfg = self.config
        if cfg.leechers < 1 or cfg.seeders < 1:
            raise ExperimentError("swarm needs at least one leecher and one seeder")

        self.testbed = Testbed(
            sim=sim,
            num_pnodes=cfg.num_pnodes,
            seed=cfg.seed,
            tcp_explicit_acks=cfg.tcp_explicit_acks,
            observe=cfg.observe,
            flight=cfg.flight,
            sim_config=(
                SimConfig(flight=cfg.flight, fluid=cfg.fluid)
                if sim is None
                else None
            ),
        )
        self.sim = self.testbed.sim
        self.sim.trace.enable("bt.progress", "bt.complete", "bt.start")

        # Topology: one unshaped infrastructure node for the tracker,
        # then every peer (seeders included) on the DSL profile.
        spec = TopologySpec(name="swarm")
        spec.add_group("infra", "10.254.0.0/24", 1, latency=ms(1))
        spec.add_group(
            "peers",
            cfg.prefix,
            cfg.total_peers,
            down_bw=cfg.profile.down_bw,
            up_bw=cfg.profile.up_bw,
            latency=cfg.profile.latency,
            plr=cfg.profile.plr,
        )
        self.spec = spec
        self.compiler = compile_topology(spec, self.testbed)
        telemetry.register_topology(self.compiler, f"topo/{spec.name}")

        tracker_vnode = self.compiler.vnodes("infra")[0]
        if cfg.client.tracker_transport == "udp":
            from repro.bittorrent.udp_tracker import UdpTrackerServer

            self.tracker = UdpTrackerServer(tracker_vnode, port=DEFAULT_TRACKER_PORT)
        else:
            self.tracker = TrackerServer(tracker_vnode, port=DEFAULT_TRACKER_PORT)

        self.torrent = Torrent(
            name="experiment.dat",
            total_size=cfg.file_size,
            piece_length=cfg.piece_length,
            block_size=cfg.block_size,
            tracker_addr=self.tracker.address,
        )

        peer_vnodes = self.compiler.vnodes("peers")
        self.seeders: List[BitTorrentClient] = [
            BitTorrentClient(v, self.torrent, seeder=True, config=replace(cfg.client))
            for v in peer_vnodes[: cfg.seeders]
        ]
        self.leechers: List[BitTorrentClient] = [
            BitTorrentClient(v, self.torrent, seeder=False, config=replace(cfg.client))
            for v in peer_vnodes[cfg.seeders :]
        ]
        self._completed = 0
        self._launched = False

    # ------------------------------------------------------------------
    @classmethod
    def from_experiment(cls, experiment, **overrides) -> "Swarm":
        """Build a swarm sharing an experiment's :class:`ScenarioSpec`
        (seed, pnode count, ACK model) — so examples stop re-specifying
        the same knobs twice. ``overrides`` are swarm-specific
        :class:`SwarmConfig` fields (``leechers``, ``file_size``, ...).
        """
        return cls(SwarmConfig.from_scenario(experiment.scenario, **overrides))

    # ------------------------------------------------------------------
    @property
    def clients(self) -> List[BitTorrentClient]:
        return self.seeders + self.leechers

    def launch(self) -> None:
        """Start tracker and seeders now; schedule staggered leechers."""
        if self._launched:
            raise ExperimentError("swarm already launched")
        self._launched = True
        cfg = self.config
        self.tracker.start()
        for seeder in self.seeders:
            self.sim.schedule(0.05, seeder.start)
        for i, leecher in enumerate(self.leechers):
            self.sim.schedule(
                0.1 + (cfg.stagger_offset + i) * cfg.stagger, leecher.start
            )

    def run(self, max_time: float = 20000.0, grace: float = 0.0) -> float:
        """Run until every leecher completed (or ``max_time``).

        Returns the time the last leecher completed. ``grace`` keeps
        the swarm running that much longer afterwards (seeding phase).
        """
        if not self._launched:
            self.launch()
        target = len(self.leechers)
        done_at: Dict[str, float] = {}

        def on_complete(rec) -> None:
            done_at[rec.get("node")] = rec.time
            if len(done_at) >= target and grace <= 0.0:
                self.sim.stop()

        self.sim.trace.subscribe("bt.complete", on_complete)
        with self.sim.tracer.span(
            "bt.swarm.run", leechers=target, seeders=len(self.seeders)
        ) as span:
            self.sim.run(until=max_time)
            span.annotate(completions=len(done_at))
        if len(done_at) < target:
            raise ExperimentError(
                f"swarm did not complete: {len(done_at)}/{target} leechers "
                f"done by t={self.sim.now:.0f}s"
            )
        last = max(done_at.values())
        if grace > 0.0:
            with self.sim.tracer.span("bt.swarm.seeding_grace"):
                self.sim.run(until=last + grace)
        return last

    def stop(self) -> None:
        for client in self.clients:
            client.stop()
        self.tracker.stop()

    def set_access_link(
        self,
        client: BitTorrentClient,
        up_bw: Optional[float] = None,
        down_bw: Optional[float] = None,
    ) -> None:
        """Reconfigure one peer's access-link pipes at runtime
        (``ipfw pipe N config``) — used for heterogeneous-swarm studies
        such as the free-rider ablation."""
        up, down = self.compiler.access_pipes(client.vnode)
        if up_bw is not None:
            up.reconfigure(bandwidth=up_bw)
        if down_bw is not None:
            down.reconfigure(bandwidth=down_bw)

    # -- observability -----------------------------------------------------
    def manifest(
        self, wall_time_seconds: Optional[float] = None, **extra
    ) -> RunManifest:
        """Provenance record of this swarm run (seed, topology hash,
        clocks, event counts) — attach it to every metrics export."""
        cfg = self.config
        return RunManifest.from_sim(
            self.sim,
            seed=cfg.seed,
            topology_hash=topology_fingerprint(self.spec),
            wall_time_seconds=wall_time_seconds,
            leechers=cfg.leechers,
            seeders=cfg.seeders,
            file_size=cfg.file_size,
            num_pnodes=cfg.num_pnodes,
            **extra,
        )

    def metrics_snapshot(self, include_wall: bool = False) -> Snapshot:
        """Deterministic snapshot of the platform-wide metrics registry."""
        return self.sim.metrics.snapshot(include_wall=include_wall)

    def chrome_trace(
        self,
        timeseries=None,
        include_profile: bool = False,
        **metadata,
    ) -> dict:
        """Chrome Trace Event document of this run (Perfetto-loadable).

        Merges whatever was recorded: packet flights (``flight=True``),
        tracer spans, trace-recorder client logs, and an optional
        :class:`~repro.obs.timeseries.TimeSeriesSampler`. Deterministic
        unless ``include_profile`` pulls in wall-clock profiler data.
        """
        from repro.obs.chrometrace import TraceLayout, chrome_trace_document

        sim = self.sim
        cfg = self.config
        layout = TraceLayout.for_testbed(self.testbed)
        meta = {
            "seed": cfg.seed,
            "leechers": cfg.leechers,
            "seeders": cfg.seeders,
            "num_pnodes": cfg.num_pnodes,
            "file_size": cfg.file_size,
        }
        meta.update(metadata)
        return chrome_trace_document(
            layout,
            flight_recorder=sim.flight if sim.flight.enabled else None,
            tracer=sim.tracer if getattr(sim.tracer, "finished", None) else None,
            recorder=sim.trace,
            timeseries=timeseries,
            profiler=sim.profiler,
            include_profile=include_profile,
            metadata=meta,
        )

    # -- summary statistics ------------------------------------------------
    def completion_times(self) -> List[float]:
        """Per-leecher completion times (absolute, seconds)."""
        return sorted(
            c.completed_at for c in self.leechers if c.completed_at is not None
        )

    def total_payload_received(self) -> int:
        return sum(c.payload_received for c in self.leechers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Swarm(leechers={len(self.leechers)}, seeders={len(self.seeders)}, "
            f"pnodes={len(self.testbed.pnodes)})"
        )
