"""Figure 3 bench: fairness CDFs for 100 concurrent instances.

Paper shape: 4BSD and Linux 2.6 nearly vertical near 250 s; ULE spread
over tens of seconds (the paper plots 210-290 s).
"""

import pytest

from repro.analysis.tables import render_ascii_series
from repro.experiments.fig3_fairness import print_report, run_fig3


def test_fig3_fairness(benchmark, save_report, bench_json, full_scale):
    result = benchmark.pedantic(
        run_fig3, kwargs={"instances": 100}, rounds=1, iterations=1
    )
    report = [print_report(result)]
    for label in result.finish_times:
        report.append(render_ascii_series(result.cdf(label), title=f"CDF {label}"))
    save_report("fig03_fairness", "\n\n".join(report))
    bench_json(
        "fig03_fairness",
        {f"spread_{label}": result.spread(label) for label in result.finish_times},
        instances=100,
    )

    from pathlib import Path

    from repro.analysis.export import export_figure

    export_figure(
        Path(__file__).parent / "out",
        "fig03",
        {label: result.cdf(label) for label in result.finish_times},
        title="Figure 3: completion-time CDFs",
        xlabel="process execution time (s)",
        ylabel="F(x)",
    )

    assert result.spread("ULE scheduler") > 0.1
    assert result.spread("4BSD scheduler") < 0.02
    assert result.spread("Linux 2.6") < 0.02
    # All schedulers fair on average: mean completion ~ N*work/ncpus.
    for label, times in result.finish_times.items():
        mean = sum(times) / len(times)
        assert mean == pytest.approx(250.0, rel=0.08), label
