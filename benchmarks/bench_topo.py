"""Topology compilation benchmark: streaming/lazy build vs eager seed.

The workload is the million-vnode direction of the paper's Section 5
("how many virtual nodes can be multiplexed"): one ``TopologySpec``
group of ``N`` peers with a shaped access link plus one inter-group
latency entry, compiled onto a 128-pnode testbed. The lazy path
streams the spec (no intermediate address/vnode lists), registers
contiguous address runs as O(1) blocks, keeps shaping state as
flyweight profiles with deferred ``DummynetPipe`` construction, and
pauses the cyclic GC for the duration of the acyclic bulk build. The
eager path (``REPRO_SLOW_PATH`` semantics, forced via ``lazy=False``)
is the seed behaviour: every pipe, name string and libc object built
up front.

Two gated metrics (``compare.py --gate``, asserted here at full scale):

* ``speedup`` — eager build wall over lazy build wall, best of
  ``TIMING_ROUNDS`` each (>= 5x);
* ``mem_ratio`` — eager retained bytes per vnode over lazy retained
  bytes per vnode, measured by ``tracemalloc`` on dedicated untimed
  builds (>= 4x).

Scale: ``REPRO_BENCH_SCALE`` multiplies the vnode count — CI smoke
runs (0.1) still build 10 000 vnodes, where both floors hold with
margin; full scale builds 100 000.
"""

import os
import time
import tracemalloc

from repro.topology.compiler import TopologyCompiler
from repro.topology.spec import TopologySpec
from repro.units import kbps, ms
from repro.virt.deployment import Testbed

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0") or "1.0")

#: Vnode count, floored so even CI smoke runs build enough state for
#: the per-vnode costs (and the gated ratios) to dominate constants.
N_VNODES = max(10_000, int(100_000 * SCALE))
#: Fixed pnode count — the admin subnet (192.168.38.0/24) caps the
#: testbed at ~250 physical nodes, so the folding ratio grows with N
#: (the paper's interesting regime) instead of the pnode count.
N_PNODES = 128

#: Gates (full scale): the lazy build must beat the eager seed by 5x
#: wall-clock and 4x retained bytes per vnode.
MIN_SPEEDUP = 5.0
MIN_MEM_RATIO = 4.0

#: Each wall-clock number is the best of this many builds (see
#: bench_kernel.py on single-shot drift).
TIMING_ROUNDS = 3


def make_spec(n: int = N_VNODES) -> TopologySpec:
    """One shaped peer group plus one inter-group latency entry."""
    spec = TopologySpec("bench-topo")
    spec.add_group(
        "peers", "10.0.0.0/8", n,
        down_bw=kbps(1024), up_bw=kbps(512), latency=ms(20),
    )
    spec.add_latency("peers", "172.16.0.0/12", ms(100))
    return spec


def build(lazy: bool, n: int = N_VNODES):
    """Deploy an n-vnode spec; returns (compile_wall, compiler)."""
    spec = make_spec(n)
    testbed = Testbed(num_pnodes=N_PNODES, observe=False)
    t0 = time.perf_counter()
    compiler = TopologyCompiler(spec, testbed, lazy=lazy)
    compiler.deploy()
    return time.perf_counter() - t0, compiler


def retained_bytes_per_vnode(lazy: bool, n: int = N_VNODES) -> float:
    """Live heap bytes retained per vnode by one build (tracemalloc)."""
    spec = make_spec(n)
    testbed = Testbed(num_pnodes=N_PNODES, observe=False)
    tracemalloc.start()
    try:
        before = tracemalloc.get_traced_memory()[0]
        compiler = TopologyCompiler(spec, testbed, lazy=lazy)
        compiler.deploy()
        after = tracemalloc.get_traced_memory()[0]
    finally:
        tracemalloc.stop()
    del compiler
    return (after - before) / n


def test_topo_build_speedup(benchmark, bench_json):
    # Warm-up both paths (interpreter/alloc caches, interned strings).
    build(True, n=256)
    build(False, n=256)

    benchmark.pedantic(
        build, kwargs={"lazy": True}, rounds=TIMING_ROUNDS, iterations=1
    )
    lazy_wall = min(build(True)[0] for _ in range(TIMING_ROUNDS))
    eager_wall = min(build(False)[0] for _ in range(TIMING_ROUNDS))
    speedup = eager_wall / lazy_wall

    lazy_bytes = retained_bytes_per_vnode(True)
    eager_bytes = retained_bytes_per_vnode(False)
    mem_ratio = eager_bytes / lazy_bytes

    # Footprint sanity on a fresh lazy build: every access pipe is
    # still pending (nothing ran), and the bookkeeping matches 2 rules
    # + 2 (deferred) pipes per vnode plus the group delay rules.
    _, compiler = build(True)
    stats = compiler.stats()
    assert stats["vnodes"] == N_VNODES, stats
    assert stats["rules"] == stats["pipes"] >= 2 * N_VNODES, stats
    assert stats["pipes_materialized"] == 0, stats
    assert stats["lazy_pipes_pending"] == stats["pipes"], stats

    bench_json(
        "topo",
        vnodes=N_VNODES,
        pnodes=N_PNODES,
        eager_wall_seconds=round(eager_wall, 6),
        lazy_wall_seconds=round(lazy_wall, 6),
        speedup=round(speedup, 3),
        eager_bytes_per_vnode=round(eager_bytes, 1),
        lazy_bytes_per_vnode=round(lazy_bytes, 1),
        mem_ratio=round(mem_ratio, 3),
        lazy_pipes_pending=stats["lazy_pipes_pending"],
    )
    print(
        f"\ntopo build ({N_VNODES} vnodes / {N_PNODES} pnodes): "
        f"eager={eager_wall:.3f}s lazy={lazy_wall:.3f}s -> {speedup:.2f}x wall; "
        f"{eager_bytes:.0f} vs {lazy_bytes:.0f} B/vnode -> {mem_ratio:.2f}x memory\n"
    )

    if SCALE >= 1.0:
        assert speedup >= MIN_SPEEDUP, (
            f"lazy topology build only {speedup:.2f}x over the eager seed "
            f"(need >= {MIN_SPEEDUP}x)"
        )
        assert mem_ratio >= MIN_MEM_RATIO, (
            f"lazy topology build only saves {mem_ratio:.2f}x bytes/vnode "
            f"(need >= {MIN_MEM_RATIO}x)"
        )
