"""Figure 9 bench: the folding ratio.

Paper run: the Figure 8 swarm deployed on 160/16/8/4/2 physical nodes;
total-data-received curves are "nearly identical" — the emulation is
oblivious to folding until the physical network saturates.
Default bench scale: 24 clients / 4 MB over foldings 24..1
(1..26 clients per physical node, beyond the paper's 80x on its
per-node traffic share).
"""

import pytest

from repro.experiments.fig9_folding import print_report, run_fig9
from repro.units import MB


def test_fig9_folding(benchmark, save_report, bench_json, full_scale):
    if full_scale:
        kwargs = {}  # 160 clients on 160/16/8/4/2 pnodes
    else:
        kwargs = dict(
            pnode_counts=(24, 8, 4, 2, 1),
            leechers=24,
            seeders=2,
            file_size=4 * MB,
            stagger=2.0,
        )
    result = benchmark.pedantic(run_fig9, kwargs=kwargs, rounds=1, iterations=1)
    save_report("fig09_folding", print_report(result))
    bench_json(
        "fig09_folding",
        {f"last_completion_p{p}": t for p, t in result.last_completions.items()},
        max_relative_gap=result.max_relative_gap,
    )

    # Every folding downloads the same total payload.
    finals = {curve[-1][1] for curve in result.curves.values()}
    assert len(finals) == 1

    # Curves stay within the chaotic-seed envelope of each other; the
    # paper calls them "nearly identical".
    assert result.max_relative_gap < 0.15

    # Last-completion times agree across foldings within 15%.
    times = list(result.last_completions.values())
    assert max(times) / min(times) < 1.15
