"""Figure 2 bench: memory-intensive processes and the swap knee.

Paper series: FreeBSD (ULE and 4BSD) explodes once aggregate demand
passes 2 GB (to ~8x by 50 processes); Linux 2.6 stays flat.
"""

import pytest

from repro.experiments.fig2_memory_pressure import print_report, run_fig2


def test_fig2_memory_pressure(benchmark, save_report, bench_json, full_scale):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_report("fig02_memory_pressure", print_report(result))
    bench_json(
        "fig02_memory_pressure",
        {f"final_{label}": series[-1] for label, series in result.curves.items()},
    )

    for label in ("ULE scheduler", "4BSD scheduler"):
        series = result.curves[label]
        assert series[0] < 1.4, f"{label} inflated below the knee"
        assert series[-1] > 4 * series[0], f"{label} missing the swap blowup"
    linux = result.curves["Linux 2.6"]
    assert max(linux) < 1.3 * min(linux), "Linux must stay flat"
    # Crossover position: FreeBSD leaves the flat region at ~RAM/size
    # processes (2048 MB / 100 MB ~ 20).
    ule = result.curves["ULE scheduler"]
    knee_index = next(i for i, v in enumerate(ule) if v > 1.5)
    assert result.counts[knee_index] in (20, 25, 30)
