"""Figure 11 bench: completions over time for the scalability run.

Same run as Figure 10; the figure shows the number of clients having
completed the download over time — a steep ramp.
"""

import pytest

from repro.experiments.fig11_completion import print_report, run_fig11


def test_fig11_completion(benchmark, save_report, bench_json, full_scale):
    scale = 1.0 if full_scale else 0.02
    result = benchmark.pedantic(
        run_fig11, kwargs={"scale": scale, "seed": 1}, rounds=1, iterations=1
    )
    save_report("fig11_completion", print_report(result))
    bench_json(
        "fig11_completion",
        clients=result.clients,
        ramp_steepness=result.ramp_steepness,
        scale=scale,
    )

    # Also emit gnuplot artifacts (benchmarks/out/fig11.gp + .dat):
    # `gnuplot fig11.gp` regenerates the figure as a PNG.
    from pathlib import Path

    from repro.analysis.export import export_figure

    export_figure(
        Path(__file__).parent / "out",
        "fig11",
        {"clients completed": result.completion},
        title="Figure 11: clients having completed the download",
        xlabel="time (s)",
        ylabel="clients",
    )

    counts = [c for _t, c in result.completion]
    assert counts == sorted(counts)  # monotone ramp
    assert counts[-1] == result.clients
    # "Most clients finish nearly at the same time": at least half the
    # swarm completes within the middle half of the window.
    assert result.ramp_steepness > 0.5
