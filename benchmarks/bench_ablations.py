"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from repro.experiments.ablations import (
    print_ack_report,
    print_choker_report,
    print_rule_lookup_report,
    print_stagger_report,
    print_superseed_report,
    print_ule_generation_report,
    print_uplink_report,
    run_ack_ablation,
    run_choker_ablation,
    run_rule_lookup_ablation,
    run_stagger_ablation,
    run_superseed_ablation,
    run_ule_generation_ablation,
    run_uplink_saturation_ablation,
)
from repro.units import MB, gbps, mbps


def test_abl_rule_lookup(benchmark, save_report, bench_json, full_scale):
    """Linear IPFW scan vs the hash table IPFW cannot use."""
    counts = (10, 100, 1000, 5000, 25000) if full_scale else (10, 100, 1000, 5000)
    result = benchmark.pedantic(
        run_rule_lookup_ablation, kwargs={"vnode_counts": counts}, rounds=1, iterations=1
    )
    save_report("abl_rule_lookup", print_rule_lookup_report(result))
    bench_json(
        "abl_rule_lookup",
        linear_scanned_max=result.linear_scanned[-1],
        indexed_scanned_max=max(result.indexed_scanned),
    )

    # Linear cost: 2 rules scanned per hosted vnode.
    assert result.linear_scanned == tuple(2 * c for c in counts)
    # Indexed cost: bounded regardless of vnode count.
    assert max(result.indexed_scanned) <= 10
    # Who wins and by what factor: at 5000 vnodes the linear scan is
    # three orders of magnitude more work.
    idx = counts.index(5000)
    assert result.linear_scanned[idx] / result.indexed_scanned[idx] > 1000


def test_abl_uplink_saturation(benchmark, save_report, bench_json, full_scale):
    """Folding overhead appears exactly when the physical port saturates.

    The swarm's aggregate traffic is bounded by the emulated *upload*
    links (26 peers x 128 kbps ~ 3.3 Mbps swarm-wide, of which well
    under 1 Mbps crosses each physical port — tit-for-tat reciprocation
    partially localizes traffic onto the faster co-hosted paths, so the
    swarm adapts around a mildly constrained port). Only a deeply
    undersized port visibly distorts the experiment — the overhead
    mechanism the paper monitored for.
    """
    result = benchmark.pedantic(
        run_uplink_saturation_ablation,
        kwargs={"port_bandwidths": (gbps(1), mbps(0.5), mbps(0.25), mbps(0.15))},
        rounds=1,
        iterations=1,
    )
    save_report("abl_uplink_saturation", print_uplink_report(result))
    bench_json(
        "abl_uplink_saturation",
        {
            f"last_completion_{bw / 1e6:g}mbps": result.last_completions[bw]
            for bw in result.port_bandwidths
        },
    )

    times = [result.last_completions[bw] for bw in result.port_bandwidths]
    # A 0.5 Mbps port still carries the folded swarm almost faithfully
    # (BitTorrent adapts)...
    assert times[1] / times[0] < 1.15
    # ...but at 0.25/0.15 Mbps the port is the bottleneck and the
    # emulated results are visibly wrong: fidelity is lost.
    assert times[2] / times[0] > 1.3
    assert times[3] / times[2] > 1.2


def test_abl_choker(benchmark, save_report, bench_json, full_scale):
    """Tit-for-tat vs random (rate-blind) unchoking, in a swarm with
    crippled-uplink free-riders — "incentives build robustness"."""
    result = benchmark.pedantic(run_choker_ablation, rounds=1, iterations=1)
    save_report("abl_choker", print_choker_report(result))
    bench_json(
        "abl_choker",
        with_tft_median=result.with_tft_median,
        without_tft_median=result.without_tft_median,
    )

    # Who wins: reciprocation concentrates upload on peers that
    # multiply it, so the contributor swarm finishes markedly faster.
    assert result.with_tft_median < result.without_tft_median * 0.9
    # Free-riders pay more under tit-for-tat than under random slots.
    assert result.tft_freerider_penalty >= result.blind_freerider_penalty


def test_abl_stagger(benchmark, save_report, bench_json, full_scale):
    """Start stagger: a flash crowd (stagger 0) stresses the initial
    seeders; long stagger lets early finishers seed the late arrivals,
    shortening the median individual download."""
    result = benchmark.pedantic(
        run_stagger_ablation, kwargs={"staggers": (0.0, 2.0, 10.0)}, rounds=1, iterations=1
    )
    save_report("abl_stagger", print_stagger_report(result))
    bench_json(
        "abl_stagger",
        {f"median_s{s:g}": result.median_durations[s] for s in result.staggers},
    )

    assert set(result.staggers) == {0.0, 2.0, 10.0}
    # With larger stagger, the median *individual* download is no worse:
    # late clients find a seeder-rich swarm.
    assert result.median_durations[10.0] <= result.median_durations[0.0] * 1.1


def test_abl_explicit_acks(benchmark, save_report, bench_json, full_scale):
    """Bound the error of the no-ACK transport shortcut (DESIGN.md
    deviation 3): with real 40-byte ACKs competing for the DSL uplink,
    the swarm drain time moves by well under 5%."""
    result = benchmark.pedantic(run_ack_ablation, rounds=1, iterations=1)
    save_report("abl_explicit_acks", print_ack_report(result))
    bench_json("abl_explicit_acks", relative_difference=result.relative_difference)

    assert result.relative_difference < 0.05


def test_abl_departure(benchmark, save_report, bench_json, full_scale):
    """'They stay online and become seeders' vs selfish disconnection:
    departure stretches the completion tail for late arrivals."""
    from repro.experiments.ablations import (
        print_departure_report,
        run_departure_ablation,
    )

    result = benchmark.pedantic(run_departure_ablation, rounds=1, iterations=1)
    save_report("abl_departure", print_departure_report(result))
    bench_json(
        "abl_departure",
        tail_penalty=result.tail_penalty,
        leave_median=result.leave_median,
        stay_median=result.stay_median,
    )

    assert result.tail_penalty > 1.1
    assert result.leave_median >= result.stay_median * 0.95


def test_abl_superseed(benchmark, save_report, bench_json, full_scale):
    """Super-seeding vs normal initial seeding: the seeder should ship
    markedly fewer bytes before the swarm is self-sustaining."""
    result = benchmark.pedantic(run_superseed_ablation, rounds=1, iterations=1)
    save_report("abl_superseed", print_superseed_report(result))
    bench_json(
        "abl_superseed",
        superseed_seeder_uploaded=result.superseed_seeder_uploaded,
        normal_seeder_uploaded=result.normal_seeder_uploaded,
        upload_saving=result.upload_saving,
    )

    assert result.superseed_seeder_uploaded < result.normal_seeder_uploaded
    assert result.upload_saving > 0.1
    assert result.pieces_redistributed > 0


def test_abl_ule_generation(benchmark, save_report, bench_json, full_scale):
    """ULE's FreeBSD 5 -> 6 fairness fix (the paper's reference [12]):
    the FreeBSD 5 model lets some processes race far ahead (finishing
    in a quarter of the fair time); FreeBSD 6 narrows the spread to the
    Figure 3 behaviour."""
    result = benchmark.pedantic(run_ule_generation_ablation, rounds=1, iterations=1)
    save_report("abl_ule_generation", print_ule_generation_report(result))
    bench_json(
        "abl_ule_generation",
        freebsd5_spread=result.freebsd5_spread,
        freebsd6_spread=result.freebsd6_spread,
    )

    assert result.freebsd5_spread > 2 * result.freebsd6_spread
    # FreeBSD 5's privileged processes finish far earlier than fair share.
    assert result.freebsd5_range[0] < 0.6 * result.freebsd6_range[0]
