"""Figure 10 bench: the large-swarm scalability run (selected clients).

Paper run: 5754 clients + 4 seeders + 1 tracker on 180 physical nodes
(32 vnodes each), 16 MB file, 0.25 s stagger; Figure 10 plots the
progress of every 50th client and "most clients finish their downloads
nearly at the same time". Default bench scale: 2% (115 clients), same
folding ratio; REPRO_FULL_SCALE=1 runs the 5754-client set (minutes).
"""

import pytest

from repro.experiments.fig10_scalability import print_report, run_fig10


def test_fig10_scalability(benchmark, save_report, bench_json, full_scale):
    scale = 1.0 if full_scale else 0.02
    result = benchmark.pedantic(
        run_fig10, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_report("fig10_scalability", print_report(result))
    bench_json(
        "fig10_scalability",
        clients=result.clients,
        vnodes_per_pnode=result.vnodes_per_pnode,
        last_completion=result.last_completion,
        scale=scale,
    )

    assert result.vnodes_per_pnode <= 33  # the paper's folding ratio
    assert result.completion[-1][1] == result.clients  # everyone finished
    # Selected-client curves all reach 100%.
    for series in result.selected_progress.values():
        assert series[-1][1] == pytest.approx(100.0)
    # Clients started over ~24 minutes at full scale finish in a window
    # comparable to the download time itself (steep collective finish).
    window = result.last_completion - result.first_completion
    assert window < result.last_completion
