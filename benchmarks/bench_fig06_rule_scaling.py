"""Figure 6 bench: RTT vs number of firewall rules.

Paper series: RTT grows nearly linearly from ~0 ms to ~5 ms as the
rule list grows to 50 000 entries.
"""

import pytest

from repro.analysis.tables import render_ascii_series
from repro.experiments.fig6_rule_scaling import print_report, run_fig6
from repro.units import ms


def test_fig6_rule_scaling(benchmark, save_report, bench_json, full_scale):
    rule_counts = (0, 5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000, 50000)
    result = benchmark.pedantic(
        run_fig6,
        kwargs={"rule_counts": rule_counts, "pings_per_point": 3},
        rounds=1,
        iterations=1,
    )
    series = [(c, r[0] * 1e3) for c, r in zip(result.rule_counts, result.rtts)]
    report = print_report(result) + "\n" + render_ascii_series(
        series, title="RTT (ms) vs rules"
    )
    save_report("fig06_rule_scaling", report)
    bench_json(
        "fig06_rule_scaling",
        rtt_at_max_rules_ms=result.rtts[-1][0] * 1e3,
        slope_us_per_rule=result.slope_us_per_rule(),
        max_rules=rule_counts[-1],
    )

    avgs = [r[0] for r in result.rtts]
    assert avgs == sorted(avgs), "RTT must grow with the rule count"
    # Paper: ~5 ms at 50 000 rules, ~0.1 us/rule slope.
    assert avgs[-1] == pytest.approx(ms(5), rel=0.1)
    assert result.slope_us_per_rule() == pytest.approx(0.1, rel=0.15)
    # Linearity: residual from the straight line stays small.
    slope_s = result.slope_us_per_rule() * 1e-6
    intercept = avgs[0]
    for count, avg in zip(result.rule_counts, avgs):
        assert avg == pytest.approx(intercept + slope_s * count, abs=ms(0.3))
