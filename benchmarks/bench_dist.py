"""Distributed-kernel bench: partitioned fig10, 4 workers vs 1.

Runs the partitioned Figure-10 swarm (4 independent sub-swarm cells,
see ``repro.experiments.fig10_scalability.run_fig10_partitioned``)
inline (``partitions=1``) and sharded over 4 worker processes
(``partitions=4``), asserts the two merged documents are byte-identical
(the partition determinism contract), and gates on the **critical-path
speedup**:

    speedup = (total cell CPU seconds, single process)
              / (max per-worker cell CPU seconds, 4 workers)

CPU seconds (``time.process_time`` around every build/window slice,
reported per cell in ``PartitionResult.busy_seconds``) rather than
coordinator wall-clock, because wall-clock parallel speedup is a
property of the *machine*: on a single free core 4 workers time-share
and the coordinator wall can only get worse, while the critical path —
what the run costs once one core per worker is actually available — is
measurable anywhere and immune to descheduling. With 4 balanced cells
the ideal is 4x; the 1.4x floor (``compare.py`` ``dist`` gate) leaves
room for cell imbalance and per-worker fixed costs. The raw
coordinator walls are recorded alongside for transparency.

Every timing is the best of ``TIMING_ROUNDS`` runs, the convention the
other hotpath benches use (see ``bench_kernel.py`` on single-shot
drift); for the CPU-seconds documents the kept round is the one with
the lowest total busy time.

Scale: ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies the
swarm scale, floored so even CI smoke runs keep enough per-cell work
for the ratio to mean something.
"""

import json
import os
import time

from repro.experiments.fig10_scalability import run_fig10_partitioned
from repro.sim.partition import PartitionLayout

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0") or "1.0")

#: fig10 swarm scale (fraction of the paper's 5754 leechers).
SWARM_SCALE = max(0.008, 0.02 * SCALE)
SEED = 7
PARTITIONS = 4

#: Gate: critical-path speedup at 4 workers must be at least this.
MIN_SPEEDUP = 1.4


#: Each timing (wall and busy-seconds document) is the best of this
#: many runs — the single-shot convention drifted with machine load
#: (see bench_kernel.py).
TIMING_ROUNDS = 3


def _run(partitions: int):
    t0 = time.perf_counter()
    result, merged = run_fig10_partitioned(
        scale=SWARM_SCALE, stagger=0.25, seed=SEED, partitions=partitions
    )
    wall = time.perf_counter() - t0
    return result, merged, wall


def _best_run(partitions: int, rounds: int = TIMING_ROUNDS):
    """Run ``rounds`` times; keep the round with the lowest total CPU
    seconds (its busy-seconds document is the least load-polluted) and
    the minimum coordinator wall."""
    runs = [_run(partitions) for _ in range(rounds)]
    best = min(runs, key=lambda r: sum(r[1].busy_seconds.values()))
    wall = min(r[2] for r in runs)
    return best[0], best[1], wall


def _critical_path(merged, partitions: int) -> float:
    """Max per-worker CPU seconds under the block layout ``partitions``
    would use — the run's wall-clock once each worker has its own core."""
    layout = PartitionLayout.block(len(merged.cells), partitions)
    return max(
        sum(merged.busy_seconds[merged.cells[i]] for i in group)
        for group in layout.assignments
    )


def test_dist_partition_speedup(benchmark, bench_json):
    result_1, merged_1, wall_1 = _best_run(partitions=1)

    # wall_seconds tracked by compare.py: the sharded run.
    benchmark.pedantic(
        _run, args=(PARTITIONS,), rounds=TIMING_ROUNDS, iterations=1
    )
    result_4, merged_4, wall_4 = _best_run(partitions=PARTITIONS)

    # Determinism contract: the merged document must not depend on the
    # worker count. (The full cross-hash-seed proof lives in
    # tests/test_partition.py; this is the cheap always-on check.)
    doc_1 = json.dumps(merged_1.as_dict(), sort_keys=True)
    doc_4 = json.dumps(merged_4.as_dict(), sort_keys=True)
    assert doc_1 == doc_4

    serial_cpu = sum(merged_1.busy_seconds.values())
    critical_4 = _critical_path(merged_4, PARTITIONS)
    speedup = serial_cpu / critical_4
    assert merged_4.workers == PARTITIONS

    bench_json(
        "dist",
        clients=result_4.clients,
        cells=len(merged_4.cells),
        windows=merged_4.windows,
        partitions=PARTITIONS,
        swarm_scale=SWARM_SCALE,
        serial_cpu_seconds=round(serial_cpu, 6),
        critical_path_seconds=round(critical_4, 6),
        speedup=round(speedup, 3),
        coordinator_wall_p1=round(wall_1, 6),
        coordinator_wall_p4=round(wall_4, 6),
        wall_speedup=round(wall_1 / wall_4, 3),
    )

    assert speedup >= MIN_SPEEDUP
