"""Connect-overhead bench (paper text table).

Paper numbers: 10.22 us per connect/disconnect cycle with the stock
libc, 10.79 us with the BINDIP interception (one extra bind syscall).
"""

import pytest

from repro.experiments.tbl_connect_overhead import (
    print_report,
    run_connect_overhead,
)


def test_tbl_connect_overhead(benchmark, save_report, bench_json, full_scale):
    cycles = 2000 if full_scale else 500
    result = benchmark.pedantic(
        run_connect_overhead, kwargs={"cycles": cycles}, rounds=1, iterations=1
    )
    save_report("tblA_connect_overhead", print_report(result))
    bench_json(
        "tblA_connect_overhead",
        plain_us=result.plain_us,
        intercepted_us=result.intercepted_us,
        overhead_us=result.overhead_us,
        cycles=cycles,
    )

    assert result.plain_us == pytest.approx(10.22, abs=0.05)
    assert result.intercepted_us == pytest.approx(10.79, abs=0.05)
    assert result.overhead_us == pytest.approx(0.57, abs=0.02)


def test_tbl_alias_overhead(benchmark, save_report, bench_json, full_scale):
    """Paper: "interface aliases produced no overhead compared to the
    normal assignment of an IP address"."""
    from repro.experiments.tbl_alias_overhead import (
        print_report as alias_report,
        run_alias_overhead,
    )

    aliases = 1000 if full_scale else 100
    result = benchmark.pedantic(
        run_alias_overhead, kwargs={"aliases": aliases}, rounds=1, iterations=1
    )
    save_report("tblB_alias_overhead", alias_report(result))
    bench_json(
        "tblB_alias_overhead", max_overhead=result.max_overhead, aliases=aliases
    )

    assert abs(result.max_overhead) < 1e-9
