"""Figure 8 bench: download evolution of the BitTorrent swarm.

Paper run: 160 clients, 16 MB file, 4 seeders, 2 Mbps/128 kbps/30 ms,
10 s stagger; every client's progress curve shows the three phases and
the swarm drains by ~2000 s. Default bench scale: 40 clients / 8 MB
(same shape, ~8x fewer events); REPRO_FULL_SCALE=1 runs the paper set.
"""

import pytest

from repro.analysis.tables import render_ascii_series
from repro.core.collector import completion_curve
from repro.experiments.fig8_download_evolution import print_report, run_fig8
from repro.units import MB, kbps


def test_fig8_download_evolution(benchmark, save_report, bench_json, full_scale):
    if full_scale:
        kwargs = {}  # the paper's exact parameters
    else:
        kwargs = dict(
            leechers=40, seeders=4, file_size=8 * MB, stagger=5.0, num_pnodes=16
        )
    result = benchmark.pedantic(run_fig8, kwargs=kwargs, rounds=1, iterations=1)

    first = next(iter(result.progress.values()))
    report = (
        print_report(result)
        + "\n"
        + render_ascii_series(first, title="one client's progress (% vs time)")
    )
    save_report("fig08_download_evolution", report)
    bench_json(
        "fig08_download_evolution",
        last_completion=result.last_completion,
        median_completion=result.summary.median_completion,
        clients=result.summary.clients,
    )

    leechers = kwargs.get("leechers", 160)
    file_size = kwargs.get("file_size", 16 * MB)
    seeders = kwargs.get("seeders", 4)
    assert result.summary.clients == leechers

    # Capacity sanity: the swarm cannot beat the aggregate upload links.
    aggregate_up = (leechers + seeders) * kbps(128)
    assert result.last_completion > leechers * file_size / aggregate_up * 0.8

    # Three-phase structure on the first-started client.
    ph = result.phases_first_client
    assert ph["first_piece"] > 0 and ph["to_half"] > 0 and ph["to_done"] > 0

    # Completion is a ramp, not a cliff at the end of the run.
    curve = [t for t, _ in result.summary.as_rows()]
    assert result.summary.first_completion < result.summary.median_completion
    assert result.summary.median_completion < result.summary.last_completion
